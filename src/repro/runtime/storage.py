"""The content store: entities, records, and their DQ metadata sidecars.

This plays the role of the paper's ``Content`` elements at runtime: each
entity (table) stores plain-dict records; every record carries a
:class:`~repro.dq.metadata.DQMetadataRecord` sidecar where the generated
``Add_DQ_Metadata`` activities put traceability and confidentiality
metadata.

Concurrency contract (used by :mod:`repro.cluster`): every public
operation is guarded by a per-entity re-entrant lock, and the **read path**
(:meth:`EntityStore.get`, :meth:`EntityStore.all`,
:meth:`EntityStore.query`, :meth:`ContentStore.readable_by`) hands out
defensive *snapshots* — mutating a snapshot (or updating the store after
taking one) never changes the other side.  The **write path**
(:meth:`EntityStore.insert`, :meth:`EntityStore.update`,
:meth:`ContentStore.store`, :meth:`ContentStore.modify`) keeps returning
the live record so metadata stamping works as before.

Hot-path design (copy-on-write snapshots): the *store* side of the read
path is copy-on-write — :meth:`EntityStore.update` never mutates a
published data dict in place, it publishes a fresh merged dict — so a
snapshot whose values are all immutable (the common case: form records
are flat dicts of scalars) can be a **shallow** dict copy that shares
every value structurally with the store.  Records holding nested mutable
values fall back to the original ``deepcopy`` path, and
``snapshot(deep=True)`` forces it, so the isolation contract above is
identical in every case — only the allocation cost changes.  The
equivalence is pinned by property tests
(``tests/runtime/test_storage_hotpath.py``).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field, replace
from operator import itemgetter
from typing import Callable, Iterable, Optional, Sequence

from repro import colkernels
from repro.colkernels import (
    TypedColumn,
    equal_slots,
    extend_typed,
    promote_column,
    set_typed,
)
from repro.dq.metadata import Clock, DQMetadataRecord
from repro.dq.streaming import EntityAccumulator

#: Value types a snapshot may share with the live record: immutable
#: scalars, plus immutable containers of the same.
_FROZEN_SCALARS = (str, int, float, bool, bytes, complex, type(None))


def _value_shareable(value) -> bool:
    if isinstance(value, _FROZEN_SCALARS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_value_shareable(item) for item in value)
    return False


def _values_shareable(data: dict) -> bool:
    """May a shallow copy of ``data`` share every value with the store?"""
    return all(_value_shareable(value) for value in data.values())


class IdAllocator:
    """A thread-safe record-id counter.

    Replaces the bare ``itertools.count`` the store used to rely on: two
    threads calling ``next(count)`` concurrently could observe torn
    increments on some interpreters, and a bare counter cannot be kept
    ahead of externally assigned ids (the sharded gateway allocates global
    ids itself and pushes them down via ``insert(..., record_id=...)``).

    Reserved ids are tracked as a contiguous **watermark** plus a sparse
    tail, not an ever-growing set: every id at or below the watermark
    counts as reserved, and whenever the tail exceeds
    ``compact_threshold`` its oldest half is folded into the watermark.
    A soak run that reserves millions of ids therefore holds O(threshold)
    memory while the duplicate-reservation guard still fires.  Folding is
    safe for the intended callers — a sharded store only ever sees the
    ids routed to it, in roughly increasing order, so an id that falls
    into a folded gap is one that can never legitimately arrive late.
    """

    def __init__(self, start: int = 1, compact_threshold: int = 1024):
        if compact_threshold < 2:
            raise ValueError("compact_threshold must be >= 2")
        self._next = start
        self._watermark = 0          # every id <= this counts as reserved
        self._tail: set[int] = set()  # reserved ids above the watermark
        self._compact_threshold = compact_threshold
        self._lock = threading.Lock()

    def allocate(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def reserve(self, record_id: int) -> None:
        """Keep the counter ahead of an externally assigned id.

        Each id may be reserved exactly once: a second reservation means
        the same externally routed write is being applied twice (a
        replayed worker task that slipped past the idempotency layer) and
        must fail loudly rather than silently double-apply.
        """
        with self._lock:
            if record_id <= self._watermark or record_id in self._tail:
                raise ValueError(
                    f"record id {record_id} already reserved "
                    "(duplicate task replay?)"
                )
            self._tail.add(record_id)
            # absorb any contiguous run into the watermark
            while self._watermark + 1 in self._tail:
                self._watermark += 1
                self._tail.discard(self._watermark)
            if len(self._tail) > self._compact_threshold:
                self._fold_tail()
            if record_id >= self._next:
                self._next = record_id + 1

    def bump_to(self, record_id: int) -> None:
        """Keep the counter ahead of a **replayed** ``allocate``-style id.

        Crash recovery re-inserts records whose ids originally came from
        :meth:`allocate`; those must not enter the sparse reservation
        tail (they were never externally reserved), but the counter must
        still end up past them so post-recovery allocations never
        collide.
        """
        with self._lock:
            if record_id >= self._next:
                self._next = record_id + 1

    def _fold_tail(self) -> None:
        """Fold the oldest half of the sparse tail into the watermark."""
        ordered = sorted(self._tail)
        cut = ordered[len(ordered) // 2]
        self._watermark = cut
        tail = {rid for rid in ordered if rid > cut}
        # Re-establish the class invariant that the tail never touches
        # the watermark: a fold can leave a contiguous run starting at
        # ``cut + 1``, and a snapshot taken in that state used to
        # round-trip those ids into the *gap* side of the watermark,
        # where the duplicate-reservation guard no longer distinguishes
        # them.  Absorbing the run keeps (watermark, tail) canonical for
        # any given reserved-id set, so ``from_state(to_state())`` is an
        # exact restore.
        while self._watermark + 1 in tail:
            self._watermark += 1
            tail.discard(self._watermark)
        self._tail = tail

    def reserved_footprint(self) -> int:
        """How many sparse entries the reservation guard is holding."""
        with self._lock:
            return len(self._tail)

    def peek(self) -> int:
        with self._lock:
            return self._next

    def high_water(self) -> int:
        """The highest id this allocator knows about — allocated, folded
        into the watermark, or reserved above the counter.  An external
        allocator (the gateway router) must hand out ids strictly beyond
        this or a recovered store will refuse them as duplicates."""
        with self._lock:
            tail_top = max(self._tail) if self._tail else 0
            return max(self._next - 1, self._watermark, tail_top)

    # -- durable state -----------------------------------------------------

    def to_state(self) -> dict:
        """The full allocator state, snapshot-ready.

        Captures the watermark *and* the sparse tail explicitly:
        rebuilding an allocator from surviving records alone would lose
        reserved-but-unused ids (reserved for a record that was later
        retired, or folded into the watermark), silently disarming the
        duplicate-replay guard after a restore.
        """
        with self._lock:
            return {
                "next": self._next,
                "watermark": self._watermark,
                "tail": sorted(self._tail),
                "compact_threshold": self._compact_threshold,
            }

    @classmethod
    def from_state(cls, state: dict) -> "IdAllocator":
        allocator = cls(
            start=state["next"],
            compact_threshold=state.get("compact_threshold", 1024),
        )
        allocator._watermark = state.get("watermark", 0)
        allocator._tail = set(state.get("tail", ()))
        return allocator


@dataclass
class StoredRecord:
    """One record plus its DQ metadata sidecar.

    ``version`` starts at 1 and increments on every update — the handle
    for optimistic-concurrency checks on modification.  ``shareable``
    (internal) records whether every data value is immutable, i.e.
    whether a snapshot may structurally share them.
    """

    record_id: int
    data: dict
    metadata: DQMetadataRecord = field(default_factory=DQMetadataRecord)
    version: int = 1
    shareable: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.shareable:
            self.shareable = _values_shareable(self.data)

    def snapshot(self, deep: bool = False) -> "StoredRecord":
        """A defensive copy: mutating it never leaks into the store.

        The default is the copy-on-write fast path — a shallow dict copy
        sharing the (immutable) values — whenever the record qualifies;
        ``deep=True`` is the escape hatch that forces the original
        ``deepcopy`` behaviour, and records holding nested mutable values
        always take it.
        """
        meta = self.metadata
        if deep or not self.shareable:
            return StoredRecord(
                self.record_id,
                copy.deepcopy(self.data),
                replace(
                    meta,
                    available_to=set(meta.available_to),
                    extra=copy.deepcopy(meta.extra),
                ),
                self.version,
            )
        extra = meta.extra
        if extra:
            extra = (
                dict(extra) if _values_shareable(extra)
                else copy.deepcopy(extra)
            )
        else:
            extra = {}
        # ``__new__``-based clone: every field is assigned below, so
        # this is the ``StoredRecord(...)`` constructor minus the
        # ``__init__``/``__post_init__`` machinery — the dominant cost
        # when a scan materializes hundreds of matches.
        clone = object.__new__(StoredRecord)
        clone.record_id = self.record_id
        clone.data = dict(self.data)
        clone.metadata = meta.replica(extra)
        clone.version = self.version
        clone.shareable = True
        return clone


_NUMERIC_ZONE_KINDS = frozenset((int, float))

#: Probe types whose ``==`` against an all-numeric column is decided
#: purely numerically — the only ones a zone map may prune (any other
#: type may carry an arbitrary ``__eq__``, e.g. ``Fraction``).
_NUMERIC_PROBE_KINDS = (int, float, bool)


class ColumnStats:
    """**Zone map** of one column (the classic columnar trick: summary
    statistics that let a whole-column predicate be answered without
    scanning a single cell).

    Maintained *incrementally*: the store folds every admitted value
    into the map — chunk admissions via one vectorizable
    :meth:`observe_chunk`, in-place cell writes via :meth:`observe` —
    so a sweep never rescans a column to refresh its map (the cost that
    used to sink cold sweeps).  The map is a **sticky superset
    envelope**: deletes and overwrites never shrink it, so it bounds
    every *live* cell (plus possibly values that are gone).  That keeps
    every claim exact-or-conservative: a zone map may fail to prove a
    column clean (demoting the check to the real column pass) but can
    never claim clean wrongly.  ``kinds`` is the admitted type census,
    ``missing`` whether a missing value (None / blank string / exotic
    type) was ever admitted, ``zmin``/``zmax`` bound the numeric
    values, ``nan`` whether a NaN was admitted.
    """

    __slots__ = ("kinds", "missing", "nan", "zmin", "zmax")

    def __init__(self):
        self.kinds: set = set()
        self.missing = False
        self.nan = False
        self.zmin = None
        self.zmax = None

    def observe(self, value) -> None:
        """Fold one value into the envelope (idempotent)."""
        kind = type(value)
        self.kinds.add(kind)
        if kind is int or kind is float:
            if value != value:
                self.nan = True
            else:
                if self.zmin is None or value < self.zmin:
                    self.zmin = value
                if self.zmax is None or value > self.zmax:
                    self.zmax = value
        elif kind is str:
            if value == "" or value.isspace():
                self.missing = True
        else:
            # None / bool / exotic: claim nothing (missing=True keeps
            # completeness checks on the real column pass — sound)
            self.missing = True

    def observe_chunk(self, values, census: set) -> None:
        """Fold a chunk into the envelope with C-level passes.

        ``census`` is the chunk's exact type census (the caller already
        has it for buffer promotion).  Bit-identical to folding the
        chunk value by value through :meth:`observe`, for any chunking
        of the same value sequence — the admission tests pin this.
        """
        self.kinds |= census
        if census <= _NUMERIC_ZONE_KINDS:
            total = sum(values)
            if total != total:
                # ``sum`` met a NaN — or an inf/-inf cancellation, which
                # has no NaN at all; census the cells to tell them apart
                finite = [value for value in values if value == value]
                if len(finite) != len(values):
                    self.nan = True
                values = finite
            if values:
                lowest = min(values)
                highest = max(values)
                if self.zmin is None or lowest < self.zmin:
                    self.zmin = lowest
                if self.zmax is None or highest > self.zmax:
                    self.zmax = highest
        elif census == {str}:
            if not self.missing:
                self.missing = "" in values or any(
                    map(str.isspace, values)
                )
        else:
            for value in values:
                self.observe(value)

    @classmethod
    def of_column(cls, column) -> "ColumnStats":
        """A fresh envelope of exactly ``column`` (compaction rebuilds
        and the equivalence tests)."""
        stats = cls()
        if column:
            stats.observe_chunk(column, set(map(type, column)))
        return stats

    def as_dict(self) -> dict:
        return {
            "kinds": sorted(kind.__name__ for kind in self.kinds),
            "missing": self.missing,
            "nan": self.nan,
            "zmin": self.zmin,
            "zmax": self.zmax,
        }


class _ConfidentialityIndex:
    """Who may read what, as hash lookups instead of per-record predicates.

    Mirrors :meth:`DQMetadataRecord.accessible_by` exactly: a record is
    readable by ``(user, level)`` when ``level >= security_level`` *or*
    the user holds an explicit grant.  Maintained under the entity lock by
    the write path; ``readable_ids`` unions a handful of sets instead of
    calling a Python predicate per record.
    """

    #: readable-id cache entries kept before a wholesale clear — reads
    #: come from a handful of distinct principals, so this is generous.
    _CACHE_LIMIT = 128

    def __init__(self):
        self._by_level: dict[int, set[int]] = {}
        self._by_grant: dict[str, set[int]] = {}
        self._state: dict[int, tuple[int, frozenset]] = {}
        # Readable-id sets are memoized per ``(user, level)`` and
        # invalidated wholesale by bumping the generation on any index
        # change: stores mutate in bursts and are then read repeatedly
        # by the same principals, so the union rebuild amortizes to
        # zero on the read-heavy mixes.
        self._generation = 0
        self._readable_cache: dict[tuple[str, int], tuple[int, frozenset]] = {}

    def index(self, record_id: int, metadata: DQMetadataRecord) -> None:
        self.unindex(record_id)
        level = metadata.security_level
        grants = frozenset(metadata.available_to)
        self._by_level.setdefault(level, set()).add(record_id)
        for user in grants:
            self._by_grant.setdefault(user, set()).add(record_id)
        self._state[record_id] = (level, grants)
        self._generation += 1

    def index_chunk(self, stored_list) -> None:
        """Batched :meth:`index` for freshly admitted records: the
        caller's duplicate-id guard already proved every id is new, so
        the unindex probe is skipped and the readable-cache generation
        bumps once for the whole chunk instead of per record."""
        by_level = self._by_level
        by_grant = self._by_grant
        state = self._state
        for stored in stored_list:
            metadata = stored.metadata
            record_id = stored.record_id
            grants = frozenset(metadata.available_to)
            bucket = by_level.get(metadata.security_level)
            if bucket is None:
                bucket = by_level[metadata.security_level] = set()
            bucket.add(record_id)
            for user in grants:
                by_grant.setdefault(user, set()).add(record_id)
            state[record_id] = (metadata.security_level, grants)
        self._generation += 1

    def unindex(self, record_id: int) -> None:
        state = self._state.pop(record_id, None)
        if state is None:
            return
        self._generation += 1
        level, grants = state
        bucket = self._by_level.get(level)
        if bucket is not None:
            bucket.discard(record_id)
            if not bucket:
                del self._by_level[level]
        for user in grants:
            granted = self._by_grant.get(user)
            if granted is not None:
                granted.discard(record_id)
                if not granted:
                    del self._by_grant[user]

    def readable_ids(self, user: str, user_level: int) -> frozenset:
        """The ids ``(user, user_level)`` may read, as a **shared**
        frozenset — callers must treat it as immutable (it is reused
        across calls until the next index change)."""
        key = (user, user_level)
        generation = self._generation
        cached = self._readable_cache.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        readable: set[int] = set()
        for level, ids in self._by_level.items():
            if level <= user_level:
                readable |= ids
        granted = self._by_grant.get(user)
        if granted:
            readable |= granted
        result = frozenset(readable)
        cache = self._readable_cache
        if len(cache) >= self._CACHE_LIMIT:
            cache.clear()
        cache[key] = (generation, result)
        return result


class EntityStore:
    """All records of one entity (one ``Content`` element).

    ``deep_snapshots`` forces every snapshot through the ``deepcopy``
    escape hatch — the pre-COW behaviour, kept so benchmarks can measure
    both paths in one run and tests can diff them.
    """

    def __init__(self, name: str, fields: Sequence[str] = (), backend=None):
        self.name = name
        self.fields = tuple(fields)
        self.deep_snapshots = False
        self._records: dict[int, StoredRecord] = {}
        self._ids = IdAllocator()
        self._lock = threading.RLock()
        # Durable write-ahead logging: ``None`` (the default, and any
        # non-durable backend) keeps the write path exactly as it was;
        # a durable backend gets one op appended per mutation, under the
        # entity lock so WAL order == apply order.  Syncing is the
        # application's job (group commit via ``WebApp.commit``).
        self._backend = (
            backend if backend is not None and backend.durable else None
        )
        self._field_indexes: dict[str, dict[object, set[int]]] = {}
        self._confidentiality = _ConfidentialityIndex()
        # Columnar spine: one append-only value array per layout field,
        # a parallel row-id array (``None`` marks a tombstone) and a
        # record-id → slot map, all maintained under the entity lock.
        # The layout is the declared field tuple (or adopted from the
        # first insert when none was declared); a record whose key tuple
        # deviates from it is tracked in ``_irregular`` and every
        # column-answered read falls back to the dict scan while any
        # such record exists.  Row dicts stay authoritative — the spine
        # only mirrors them so the hot paths (vectorized validation,
        # telemetry absorption, equality scans) can run down columns.
        self._layout: Optional[tuple[str, ...]] = self.fields or None
        self._cols: dict[str, list] = {name: [] for name in self.fields}
        self._col_list: list[list] = list(self._cols.values())
        # Admission compares ``data.keys()`` against this frozenset — a
        # single C set comparison, no tuple allocation per insert.  The
        # spine extracts values by name, so key *order* never matters
        # (``None`` — e.g. a duplicated declared field — admits nothing).
        self._layout_keys: Optional[frozenset] = (
            frozenset(self._layout)
            if self._layout is not None
            and len(self._layout) == len(self._cols)
            else None
        )
        self._col_pairs: list[tuple[str, list]] = list(self._cols.items())
        self._col_ids: list[Optional[int]] = []
        self._slots: dict[int, int] = {}
        self._irregular: set[int] = set()
        self._tombstones = 0
        self._col_epoch = 0
        # Column kernels: the zone maps (sticky per-column ColumnStats
        # envelopes) and the typed buffers (machine-scalar mirrors of
        # homogeneous numeric columns, ``repro.colkernels``).  Both are
        # maintained *incrementally*: ``_kernel_upto`` counts the
        # leading spine slots already folded in; chunk admission folds
        # its tail eagerly, single inserts defer to the next columnar
        # read (``_sync_kernels``), and in-place cell writes below the
        # watermark are folded at write time.  ``_demoted`` columns
        # stay plain lists until compaction rebuilds the kernel state.
        self._col_stats: dict[str, ColumnStats] = {
            name: ColumnStats() for name in self._cols
        }
        self._typed: dict[str, TypedColumn] = {}
        self._demoted: set[str] = set()
        self._kernel_upto = 0
        self._kernel_promotions = 0
        self._kernel_demotions = 0
        # Streaming DQ telemetry: maintained under the entity lock next
        # to the field indexes, default-on.  ``None`` while disabled (or
        # pending a rebuild after re-enabling).  Writes only enqueue
        # compact op tuples on ``_telemetry_pending``; the accumulator
        # absorbs the queue on the next telemetry read, so the write
        # path never pays the per-value accounting.
        self._telemetry_enabled = True
        self._telemetry: Optional[EntityAccumulator] = EntityAccumulator(name)
        self._telemetry_pending: list[tuple] = []
        self.telemetry_rebuilds = 0
        # encode-once cache for `telemetry_frame`: (key, frame bytes),
        # keyed on the accumulator identity + its mutation counters so
        # any absorbed op invalidates it
        self._telemetry_frame_cache: Optional[tuple] = None

    def attach_backend(self, backend) -> None:
        """Swap the durable backend in place (replication failover).

        Same durability gate as construction: a non-durable backend
        detaches logging entirely, keeping the hot path untouched.
        """
        with self._lock:
            self._backend = (
                backend if backend is not None and backend.durable else None
            )

    # -- streaming DQ telemetry -------------------------------------------

    def set_telemetry(self, enabled: bool) -> None:
        """Enable or disable streaming DQ telemetry for this entity.

        Disabling drops the accumulator (writes stop paying for it);
        re-enabling rebuilds it lazily from the stored records on the
        next telemetry read.
        """
        with self._lock:
            self._telemetry_enabled = enabled
            if not enabled:
                self._telemetry = None
                self._telemetry_pending.clear()

    @property
    def telemetry(self) -> Optional[EntityAccumulator]:
        """The **live**, fully-drained accumulator (entity-lock
        discipline applies) — ``None`` while telemetry is disabled.
        Prefer :meth:`telemetry_snapshot` / :meth:`measure_telemetry`
        outside the store."""
        with self._lock:
            accumulator = self._telemetry
            if accumulator is None:
                if not self._telemetry_enabled:
                    return None
                # Rebuild from the stored records; nothing can be
                # pending (hooks only enqueue while an accumulator
                # exists, and disabling cleared the queue).
                accumulator = EntityAccumulator(self.name)
                for stored in self._records.values():
                    accumulator.observe_insert(stored)
                self._telemetry = accumulator
                self.telemetry_rebuilds += 1
                return accumulator
            pending = self._telemetry_pending
            if pending:
                self._telemetry_pending = []
                accumulator.absorb(pending)
            return accumulator

    def telemetry_snapshot(self) -> Optional[EntityAccumulator]:
        """A mergeable point-in-time copy of the accumulator (``None``
        while telemetry is disabled)."""
        with self._lock:
            accumulator = self.telemetry
            return accumulator.snapshot() if accumulator is not None else None

    def measure_telemetry(self, fn):
        """Run a read ``fn(accumulator)`` under the entity lock, without
        paying for a snapshot copy; ``None`` while disabled."""
        with self._lock:
            accumulator = self.telemetry
            if accumulator is None:
                return None
            return fn(accumulator)

    def telemetry_frame(self) -> Optional[tuple]:
        """The accumulator snapshot as an encoded interchange frame —
        ``(cache_key, frame_bytes)``, or ``None`` while disabled.

        Serialized **once** per state change: the frame is cached
        against the accumulator's ``(updates, records)`` counters
        (every absorbed mutation ticks ``updates``), so a burst of
        scorecard reads between writes pays one encode.  The key is
        also the consumer's decode-cache handle: equal keys guarantee
        an identical frame.
        """
        from repro import interchange

        with self._lock:
            accumulator = self.telemetry
            if accumulator is None:
                return None
            key = (id(accumulator), accumulator.updates, accumulator.records)
            cached = self._telemetry_frame_cache
            if cached is not None and cached[0] == key:
                return cached
            frame = interchange.encode_accumulator(accumulator)
            self._telemetry_frame_cache = (key, frame)
            return self._telemetry_frame_cache

    def ship_telemetry_ops(self) -> Optional[bytes]:
        """Drain the deferred telemetry queue into one encoded
        interchange frame while absorbing it locally — the op-stream
        lane of telemetry shipping.

        ``cols`` ops captured off promoted kernel buffers carry typed
        ``array('q'/'d')`` slices; the codec ships them as raw
        little-endian buffers and the remote absorb hands the decoded
        columns straight to ``observe_columns`` — the census and
        str-lane kernels run on the shipped slices without
        re-transposing rows.  Metadata sidecars are snapshotted at ship
        time (the local queue holds live references read at absorb
        time; a frame cannot).  ``None`` when telemetry is disabled or
        nothing is pending.
        """
        from repro import interchange

        with self._lock:
            accumulator = self._telemetry
            if accumulator is None or not self._telemetry_pending:
                return None
            pending = self._telemetry_pending
            self._telemetry_pending = []
            frame = interchange.encode_telemetry_ops(pending)
            accumulator.absorb(pending)
            return frame

    def absorb_telemetry_frame(self, frame: bytes) -> int:
        """Absorb one :meth:`ship_telemetry_ops` frame into this
        store's accumulator (the mirror side of telemetry shipping);
        returns the op count, 0 while telemetry is disabled."""
        from repro import interchange

        ops = interchange.decode_telemetry_ops(frame)
        with self._lock:
            accumulator = self.telemetry
            if accumulator is None:
                return 0
            accumulator.absorb(ops)
            return len(ops)

    # -- secondary indexes -------------------------------------------------

    def create_index(self, field_name: str) -> "EntityStore":
        """Declare a hash index on one data field.

        Maintained transactionally under the entity lock by every write;
        existing records are indexed immediately.  Unhashable field
        values simply stay out of the index (``find_by`` then falls back
        to the scan for them).
        """
        with self._lock:
            if field_name in self._field_indexes:
                return self
            index: dict[object, set[int]] = {}
            self._field_indexes[field_name] = index
            for record_id, stored in self._records.items():
                self._index_field_value(field_name, stored, record_id)
            return self

    @property
    def indexed_fields(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._field_indexes)

    def _index_field_value(
        self, field_name: str, stored: StoredRecord, record_id: int
    ) -> None:
        try:
            value = stored.data.get(field_name)
            self._field_indexes[field_name].setdefault(
                value, set()
            ).add(record_id)
        except TypeError:  # unhashable value: stays scannable only
            pass

    def _index_record(self, stored: StoredRecord) -> None:
        for field_name in self._field_indexes:
            self._index_field_value(field_name, stored, stored.record_id)
        self._confidentiality.index(stored.record_id, stored.metadata)

    def _unindex_field_values(
        self, record_id: int, stored: StoredRecord
    ) -> None:
        for field_name, index in self._field_indexes.items():
            value = stored.data.get(field_name)
            try:
                bucket = index.get(value)
            except TypeError:  # was never indexed
                continue
            if bucket is not None:
                bucket.discard(record_id)
                if not bucket:
                    del index[value]

    def reindex_metadata(self, record_id: int, log: bool = True) -> None:
        """Refresh the confidentiality index after metadata changed.

        Confidentiality metadata is stamped *after* the insert (the write
        path hands the live record to ``restrict``), so
        :meth:`ContentStore.store` calls this once the sidecar is final.
        ``log=False`` skips the per-record WAL op — for batch callers
        whose combined :meth:`log_rows` op already carries the final
        metadata.
        """
        with self._lock:
            stored = self._live(record_id)
            self._confidentiality.index(record_id, stored.metadata)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("meta", record_id, stored.metadata)
                )
            if log and self._backend is not None:
                self._backend.append({
                    "op": "meta",
                    "entity": self.name,
                    "id": record_id,
                    "meta": stored.metadata.to_state(),
                })

    # -- columnar spine (entity lock held by every caller) -----------------

    def _col_add(self, stored: StoredRecord) -> None:
        """Mirror a just-inserted record into the column arrays."""
        data = stored.data
        if self._layout is None:
            if not data:
                self._irregular.add(stored.record_id)
                return
            layout = tuple(data)
            self._layout = layout
            self._cols = {name: [] for name in layout}
            self._col_list = list(self._cols.values())
            self._col_pairs = list(self._cols.items())
            self._layout_keys = frozenset(layout)
            self._col_stats = {name: ColumnStats() for name in layout}
        if tuple(data) == self._layout:
            self._slots[stored.record_id] = len(self._col_ids)
            self._col_ids.append(stored.record_id)
            self._col_epoch += 1
            # ``any`` drains the C-level map (append returns None)
            any(map(list.append, self._col_list, data.values()))
        elif data.keys() == self._layout_keys:
            # same fields, different key order: still regular — the
            # spine extracts by name, so only the probes cost more
            self._slots[stored.record_id] = len(self._col_ids)
            self._col_ids.append(stored.record_id)
            self._col_epoch += 1
            for name, column in self._col_pairs:
                column.append(data[name])
        else:
            self._irregular.add(stored.record_id)

    def _col_add_chunk(self, stored_list: Sequence[StoredRecord]) -> None:
        """Mirror a whole ``insert_many`` chunk into the columns.

        The uniform case (every row carries exactly the layout keys —
        the batched form path always does) admits the chunk with one
        slot/epoch update and a single per-field extend, so the spine
        tax per record is a set comparison and F dict probes instead of
        the per-record bookkeeping of :meth:`_col_add`."""
        if self._layout is None:
            # adopt the layout from the first row, then retry the rest
            self._col_add(stored_list[0])
            stored_list = stored_list[1:]
            if not stored_list:
                return
            if self._layout is None:
                for stored in stored_list:
                    self._col_add(stored)
                return
        keys = self._layout_keys
        datas = [stored.data for stored in stored_list]
        if all(d.keys() == keys for d in datas):
            col_ids = self._col_ids
            base = len(col_ids)
            self._col_epoch += 1
            rids = [stored.record_id for stored in stored_list]
            col_ids.extend(rids)
            self._slots.update(zip(rids, range(base, base + len(rids))))
            for name, column in self._col_pairs:
                column.extend(map(itemgetter(name), datas))
            # Chunk admissions fold into the kernels eagerly: the chunk
            # is in hand and homogeneous, so the zone-map/buffer update
            # is one vectorizable pass — and sweeps right after a bulk
            # load (the cold-sweep case) find the kernels already warm.
            self._sync_kernels()
        else:
            for stored in stored_list:
                self._col_add(stored)

    def _col_update(self, record_id: int, stored: StoredRecord, delta: dict) -> None:
        """Mirror an update.  A merge can only add keys, so an unchanged
        dict length means the key tuple still equals the layout and the
        changed cells are written in place; a widened record is demoted
        to the irregular set (its slot becomes a tombstone)."""
        slot = self._slots.get(record_id)
        if slot is None:
            return  # irregular records stay dict-served
        if len(stored.data) == len(self._layout):
            cols = self._cols
            stats = self._col_stats
            self._col_epoch += 1
            synced = slot < self._kernel_upto
            for name, value in delta.items():
                column = cols[name]
                if synced:
                    # the cell is inside the kernels: widen the sticky
                    # envelope with the new value and patch the buffer
                    # (or demote it if the value changed type)
                    stats[name].observe(value)
                    typed = self._typed.get(name)
                    if typed is not None and not set_typed(
                        typed, slot, value
                    ):
                        del self._typed[name]
                        self._demoted.add(name)
                        self._kernel_demotions += 1
                else:
                    # the old cell would be lost before the next sync —
                    # fold it into the envelope now, exactly as if the
                    # sync had run before this write (idempotent, so
                    # eager and lazy admission styles stay identical)
                    stats[name].observe(column[slot])
                column[slot] = value
            return
        del self._slots[record_id]
        self._irregular.add(record_id)
        self._col_tombstone(slot)

    def _col_remove(self, record_id: int) -> None:
        """Mirror a delete: tombstone the slot (or drop the irregular)."""
        slot = self._slots.pop(record_id, None)
        if slot is None:
            self._irregular.discard(record_id)
            return
        self._col_tombstone(slot)

    def _col_tombstone(self, slot: int) -> None:
        self._col_epoch += 1
        self._col_ids[slot] = None
        if slot >= self._kernel_upto:
            # the dying cells never reached the kernels — fold them into
            # the envelopes first (as the sync would have), so eager and
            # lazy admission styles keep bit-identical zone maps
            for name, column in self._col_pairs:
                self._col_stats[name].observe(column[slot])
        for column in self._col_list:
            column[slot] = None
        self._tombstones += 1
        if self._tombstones > 64 and self._tombstones * 2 > len(self._col_ids):
            self._compact_columns()

    def _compact_columns(self) -> None:
        """Drop tombstoned slots, preserving live-slot (insertion) order."""
        keep = [
            slot for slot, rid in enumerate(self._col_ids) if rid is not None
        ]
        self._col_ids = [self._col_ids[slot] for slot in keep]
        for name, column in self._cols.items():
            self._cols[name] = [column[slot] for slot in keep]
        self._col_list = list(self._cols.values())
        self._col_pairs = list(self._cols.items())
        self._slots = {rid: slot for slot, rid in enumerate(self._col_ids)}
        self._tombstones = 0
        # Compaction is the one event that sheds dead weight from the
        # kernels: reset them so the next sync rebuilds zone maps and
        # buffers from exactly the surviving cells (this is also what
        # clears a sticky demotion once the offending cells are gone).
        self._col_stats = {name: ColumnStats() for name in self._cols}
        self._typed = {}
        self._demoted = set()
        self._kernel_upto = 0

    def _sync_kernels(self) -> None:
        """Fold the unsynced spine tail into the zone maps and typed
        buffers (entity lock held).

        ``_kernel_upto`` counts the leading slots already folded in;
        everything past it is absorbed here in one pass per column —
        census, chunked zone-map fold, buffer extend (or first
        promotion, or demotion when the tail breaks the column's type).
        Tombstoned tail slots are skipped for the envelope (their cells
        are dead ``None``s) and padded with fillers in the buffers so
        buffer index == spine slot always holds.
        """
        ids = self._col_ids
        upto = self._kernel_upto
        total = len(ids)
        if upto == total:
            return
        live = None
        if self._tombstones:
            live = [
                slot for slot in range(upto, total)
                if ids[slot] is not None
            ]
            if len(live) == total - upto:
                live = None
        typed_map = self._typed
        demoted = self._demoted
        for name, column in self._col_pairs:
            if live is None:
                tail = column[upto:]
            else:
                tail = [column[slot] for slot in live]
            census = set(map(type, tail))
            stats = self._col_stats[name]
            if tail:
                stats.observe_chunk(tail, census)
            typed = typed_map.get(name)
            if typed is not None:
                if not tail:
                    typed.pad(total - upto)
                else:
                    if live is not None:
                        filler = typed.filler
                        tail = [
                            column[slot] if ids[slot] is not None
                            else filler
                            for slot in range(upto, total)
                        ]
                    if not extend_typed(typed, census, tail):
                        del typed_map[name]
                        demoted.add(name)
                        self._kernel_demotions += 1
            elif tail and name not in demoted:
                promoted = promote_column(column, ids)
                if promoted is not None:
                    typed_map[name] = promoted
                    self._kernel_promotions += 1
                else:
                    demoted.add(name)
        self._kernel_upto = total

    def columnar_stats(self) -> dict:
        """Introspection for tests and the columnar bench."""
        with self._lock:
            self._sync_kernels()
            typed = self._typed
            return {
                "layout": list(self._layout) if self._layout else None,
                "slots": len(self._slots),
                "tombstones": self._tombstones,
                "irregular": len(self._irregular),
                "epoch": self._col_epoch,
                "zone_maps": {
                    name: stats.as_dict()
                    for name, stats in self._col_stats.items()
                },
                "kernels": {
                    "mode": colkernels.kernel_mode(),
                    "columns": {
                        name: (
                            typed[name].mode if name in typed else "list"
                        )
                        for name in self._cols
                    },
                    "promotions": self._kernel_promotions,
                    "demotions": self._kernel_demotions,
                },
            }

    def revalidate(self, plan) -> dict[int, list]:
        """Re-run a compiled plan over every live record, answering from
        the columnar spine: findings keyed by record id.

        This is the full-entity DQ sweep (scorecard-style re-audit of
        already-admitted data).  When the plan carries a column-sliced
        body and every record sits in the spine, each scan term runs
        down whole columns — and the zone maps (refreshed lazily per
        mutation epoch) usually answer a column in O(1) without
        touching a single cell.  Any irregular record, plan without a
        columnar body, or field mismatch falls back to the fused row
        scan over the authoritative dicts, so the result is identical
        either way (the row path is the oracle).
        """
        with self._lock:
            check_columns = getattr(plan, "check_columns", None)
            layout = self._layout
            if (
                check_columns is not None
                and layout is not None
                and not self._irregular
                and set(plan.bound_fields) <= set(self._cols)
            ):
                self._sync_kernels()
                bound = plan.bound_fields
                columns = [self._cols[name] for name in bound]
                stats = [self._col_stats[name] for name in bound]
                typed = self._typed
                buffers = [typed.get(name) for name in bound]
                results = check_columns(
                    columns, len(self._col_ids), stats, buffers
                )
                ids = self._col_ids
                if self._tombstones:
                    # dead slots ride along in the column pass (their
                    # cells are ``None``) and are dropped here — only
                    # live records answer the sweep
                    return {
                        rid: findings
                        for rid, findings in zip(ids, results)
                        if rid is not None
                    }
                return dict(zip(ids, results))
            rows = [stored.data for stored in self._records.values()]
            ids = list(self._records.keys())
            return dict(zip(ids, plan.check_batch(rows, False)))

    # -- writes ------------------------------------------------------------

    def insert(self, data: dict, record_id: Optional[int] = None) -> StoredRecord:
        """Insert a record; returns the **live** stored record.

        ``record_id`` lets a caller that allocates ids globally (the
        sharded gateway) pin the id; the local allocator is kept ahead so
        unpinned inserts never collide with pinned ones.
        """
        with self._lock:
            pinned = record_id is not None
            if record_id is None:
                record_id = self._ids.allocate()
            else:
                if record_id in self._records:
                    raise ValueError(
                        f"{self.name}: record id {record_id} already in use"
                    )
                self._ids.reserve(record_id)
            stored = StoredRecord(record_id, dict(data))
            self._records[record_id] = stored
            self._index_record(stored)
            self._col_add(stored)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("row", record_id, stored.data, stored.metadata)
                )
            if self._backend is not None:
                # ``pinned`` tells replay which allocation style to
                # reproduce: reserve() for externally assigned ids,
                # bump_to() for locally allocated ones — so the
                # recovered allocator matches the original exactly.
                # ``shareable`` re-exports the walk insert already ran,
                # so ship-time coalescing can certify a folded run
                # without re-walking every value.
                self._backend.append({
                    "op": "insert",
                    "entity": self.name,
                    "id": record_id,
                    "data": dict(stored.data),
                    "pinned": pinned,
                    "shareable": stored.shareable,
                })
            return stored

    def insert_many(
        self,
        rows: Sequence[dict],
        record_ids: Optional[Sequence[Optional[int]]] = None,
        log: bool = True,
    ) -> list[StoredRecord]:
        """Insert a whole chunk under one lock trip, **telemetry
        deferred**: the caller stamps metadata on the returned records
        and then hands the chunk to :meth:`observe_inserted` so the
        accumulators absorb it in a single batched update (the ≤10%
        write-overhead contract of ``submit_many``).  ``log=False``
        defers WAL logging to the caller's :meth:`log_rows`, which
        folds the stamped metadata into the same combined op.
        """
        with self._lock:
            if record_ids is None:
                record_ids = (None,) * len(rows)
            stored_list: list[StoredRecord] = []
            pins: list[bool] = []
            for data, record_id in zip(rows, record_ids):
                pinned = record_id is not None
                if record_id is None:
                    record_id = self._ids.allocate()
                else:
                    if record_id in self._records:
                        raise ValueError(
                            f"{self.name}: record id {record_id} "
                            "already in use"
                        )
                    self._ids.reserve(record_id)
                stored = StoredRecord(record_id, dict(data))
                self._records[record_id] = stored
                self._index_record(stored)
                stored_list.append(stored)
                pins.append(pinned)
            if stored_list:
                self._col_add_chunk(stored_list)
            if log and self._backend is not None and stored_list:
                # the shareability walk already ran per record — certify
                # the chunk so a batched replay can skip repeating it
                self._backend.append({
                    "op": "rows",
                    "entity": self.name,
                    "shareable": all(
                        stored.shareable for stored in stored_list
                    ),
                    "rows": [
                        [stored.record_id, dict(stored.data), pinned]
                        for stored, pinned in zip(stored_list, pins)
                    ],
                })
            return stored_list

    def log_rows(
        self,
        stored_list: Sequence[StoredRecord],
        record_ids: Optional[Sequence[Optional[int]]] = None,
        user: Optional[str] = None,
        security_level: int = 0,
        available_to: Iterable[str] = (),
    ) -> None:
        """One combined WAL op for a stamped ``insert_many`` chunk.

        Data and metadata land in a single record, so replay never needs
        the per-row ``meta`` ops.  The chunk's provenance is regular —
        every row was just stamped ``record_store(user)`` +
        ``restrict(security_level, available_to)`` under this entity's
        lock (that is the caller's contract) — so the op carries the
        shared fields once and only each row's tick, which is what keeps
        the durable batch write path within its overhead floor.  Row
        data is stored *columnar*: the field names appear once in the op
        header and each row carries just its value list (a row whose
        keys deviate from the chunk's layout falls back to its full
        dict).  Ops are encoded by ``append`` before the lock is
        released, so row values are passed by reference, not copied.
        """
        if self._backend is None or not stored_list:
            return
        if record_ids is None:
            record_ids = (None,) * len(stored_list)
        fields = tuple(stored_list[0].data)
        entries = []
        for stored, record_id in zip(stored_list, record_ids):
            data = stored.data
            entries.append([
                stored.record_id,
                list(data.values()) if tuple(data) == fields else data,
                record_id is not None,
                stored.metadata.stored_date,
            ])
        self._backend.append({
            "op": "rows",
            "entity": self.name,
            "by": user,
            "level": security_level,
            "grants": sorted(available_to),
            "fields": list(fields),
            # certify the chunk's shareability once (the walk already
            # ran per record on insert) for batched replay
            "shareable": all(
                stored.shareable for stored in stored_list
            ),
            "rows": entries,
        })

    def observe_inserted(self, stored_list: Sequence[StoredRecord]) -> None:
        """Feed an :meth:`insert_many` chunk (metadata already stamped)
        to the telemetry accumulator as one batched update.

        The write path only captures references — the published dicts
        are copy-on-write, so they are frozen the moment they are
        captured.  A chunk that landed contiguously in the columnar
        spine (the batched form path always does) is captured as a
        ``cols`` op — per-column slices of the spine arrays, value
        references only — so absorb never pays the row→column
        transpose; ragged or scattered chunks keep the ``rows`` op and
        absorb-side detection (:meth:`EntityAccumulator.absorb`).
        """
        with self._lock:
            if self._telemetry is None:
                return
            layout = self._layout
            if layout is not None and len(stored_list) >= 8:
                slots = self._slots
                base = slots.get(stored_list[0].record_id)
                if base is not None:
                    expected = base
                    for stored in stored_list:
                        if slots.get(stored.record_id) != expected:
                            expected = None
                            break
                        expected += 1
                    if expected is not None:
                        count = len(stored_list)
                        # Promoted columns hand over *typed* slices —
                        # ``array('q'/'d')`` copies straight off the
                        # kernel buffer, so the absorb-side numeric
                        # census reads machine scalars via the buffer
                        # protocol instead of re-boxing a list.  Exact:
                        # the contiguity walk above proved every slot in
                        # [base, base+count) belongs to a live record
                        # (deleted ids leave ``_slots``), and the synced
                        # watermark proves the buffer mirrors the cells.
                        typed = self._typed
                        stats = self._col_stats
                        upto = self._kernel_upto
                        end = base + count
                        synced = upto >= end
                        self._telemetry_pending.append((
                            "cols",
                            layout,
                            [
                                buffer.buf[base:end]
                                if synced
                                and (buffer := typed.get(name)) is not None
                                else column[base:end]
                                for name, column in zip(
                                    layout, self._col_list
                                )
                            ],
                            [
                                (stored.record_id, stored.metadata)
                                for stored in stored_list
                            ],
                            # Census hints: the zone map's admitted-type
                            # census covers a superset of these cells
                            # (every value ever written, None included),
                            # so ``kinds == {str}`` proves the slice
                            # all-``str`` and absorb skips its type walk.
                            tuple(
                                "str"
                                if synced and stats[name].kinds == {str}
                                else None
                                for name in layout
                            ) if synced else None,
                        ))
                        return
            self._telemetry_pending.append(("rows", [
                (stored.record_id, stored.data, stored.metadata)
                for stored in stored_list
            ]))

    def pending_telemetry_ops(self) -> list[tuple]:
        """Snapshot-and-clear the deferred telemetry queue — bench and
        test introspection for the op shapes the write path captured
        (the accumulator normally drains this via :attr:`telemetry`)."""
        with self._lock:
            ops = self._telemetry_pending
            self._telemetry_pending = []
            return ops

    def update(self, record_id: int, data: dict) -> StoredRecord:
        """Merge ``data`` into a record — by *publishing a fresh dict*.

        The previously published dict is never mutated, so snapshots that
        structurally share its values stay frozen in time (the store-side
        half of the copy-on-write contract).
        """
        with self._lock:
            stored = self._live(record_id)
            if self._field_indexes:
                self._unindex_field_values(record_id, stored)
            old_data = stored.data
            stored.data = {**old_data, **data}
            stored.shareable = stored.shareable and _values_shareable(data)
            stored.version += 1
            for field_name in self._field_indexes:
                self._index_field_value(field_name, stored, record_id)
            self._col_update(record_id, stored, data)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("update", old_data, stored.data)
                )
            if self._backend is not None:
                self._backend.append({
                    "op": "update",
                    "entity": self.name,
                    "id": record_id,
                    "data": dict(data),
                    "version": stored.version,
                })
            return stored

    def delete(self, record_id: int) -> None:
        with self._lock:
            stored = self._live(record_id)
            del self._records[record_id]
            self._unindex_field_values(record_id, stored)
            self._confidentiality.unindex(record_id)
            self._col_remove(record_id)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("delete", record_id, stored.data)
                )
            if self._backend is not None:
                self._backend.append({
                    "op": "retire",
                    "entity": self.name,
                    "id": record_id,
                })

    def _live(self, record_id: int) -> StoredRecord:
        """The live record (write path / internal use only)."""
        try:
            return self._records[record_id]
        except KeyError:
            raise KeyError(
                f"{self.name}: no record with id {record_id}"
            ) from None

    # -- crash recovery (no backend logging, full index rebuild) -----------

    def restore_record(
        self,
        record_id: int,
        data: dict,
        metadata_state: Optional[dict] = None,
        version: int = 1,
        reserve: Optional[bool] = None,
    ) -> StoredRecord:
        """Re-materialize a record from durable state.

        Field indexes, the confidentiality index, and the telemetry
        queue are all fed exactly as a live insert would — only the
        backend logging is skipped (the op is already durable).

        ``reserve`` selects the allocator effect: ``True`` replays a
        pinned (externally assigned) id via :meth:`IdAllocator.reserve`,
        ``False`` replays a locally allocated id via
        :meth:`IdAllocator.bump_to`, and ``None`` (the snapshot path)
        leaves the allocator alone — its full state is restored
        separately via :meth:`restore_allocator`.
        """
        with self._lock:
            if record_id in self._records:
                raise ValueError(
                    f"{self.name}: record id {record_id} already in use"
                )
            if reserve is True:
                self._ids.reserve(record_id)
            elif reserve is False:
                self._ids.bump_to(record_id)
            stored = StoredRecord(record_id, dict(data), version=version)
            if metadata_state is not None:
                stored.metadata = DQMetadataRecord.from_state(metadata_state)
            self._records[record_id] = stored
            self._index_record(stored)
            self._col_add(stored)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("row", record_id, stored.data, stored.metadata)
                )
            return stored

    def restore_records(
        self,
        entries: Sequence[tuple],
        adopt: bool = False,
        shareable: bool = False,
    ) -> list[StoredRecord]:
        """Batched :meth:`restore_record`: admit a whole run of
        ``(record_id, data, metadata_state, version, reserve)`` entries
        under **one** lock trip, mirrored into the columnar spine via
        :meth:`_col_add_chunk` (one epoch bump and one per-field extend
        for a layout-uniform run) with a single batched telemetry op.
        Field indexing is hoisted column-wise: one pass down the run per
        indexed field instead of a per-record method fan-out.

        ``adopt=True`` is the zero-copy handover for decoded batches:
        the caller certifies it owns every ``data`` dict (freshly built
        by a codec, aliased nowhere else) and the store takes them
        without the defensive copy.  ``shareable=True`` certifies every
        data value would pass the store's shareability walk (the
        producer already knew — the primary's ``stored.shareable``, or
        the coalescer's scalar check), so the per-record walk is
        skipped with the same conclusion.

        The replicated catch-up path uses this to absorb a shipped op
        batch; final store state is identical to replaying the entries
        one at a time through :meth:`restore_record` (the accumulator
        reaches the same state from one ``rows`` op as from N ``row``
        ops — only its ``updates`` tick count differs, which no durable
        or scored state observes).
        """
        with self._lock:
            records = self._records
            ids = self._ids
            make_metadata = DQMetadataRecord.from_state
            stored_list: list[StoredRecord] = []
            append = stored_list.append
            for record_id, data, metadata_state, version, reserve in entries:
                if record_id in records:
                    raise ValueError(
                        f"{self.name}: record id {record_id} already in use"
                    )
                if reserve is True:
                    ids.reserve(record_id)
                elif reserve is False:
                    ids.bump_to(record_id)
                stored = StoredRecord(
                    record_id,
                    data if adopt else dict(data),
                    version=version,
                    shareable=shareable,
                )
                if metadata_state is not None:
                    stored.metadata = make_metadata(metadata_state)
                records[record_id] = stored
                append(stored)
            if self._field_indexes:
                pairs = [
                    (stored.data, stored.record_id)
                    for stored in stored_list
                ]
                for field_name, index in self._field_indexes.items():
                    setdefault = index.setdefault
                    for data, record_id in pairs:
                        try:
                            setdefault(
                                data.get(field_name), set()
                            ).add(record_id)
                        except TypeError:  # unhashable: scannable only
                            pass
            self._confidentiality.index_chunk(stored_list)
            if stored_list:
                self._col_add_chunk(stored_list)
                if self._telemetry is not None:
                    self._telemetry_pending.append(("rows", [
                        (stored.record_id, stored.data, stored.metadata)
                        for stored in stored_list
                    ]))
            return stored_list

    def restore_update(
        self, record_id: int, data: dict, version: Optional[int] = None
    ) -> StoredRecord:
        """Replay a durable update op (same publish-fresh-dict path)."""
        with self._lock:
            stored = self._live(record_id)
            if self._field_indexes:
                self._unindex_field_values(record_id, stored)
            old_data = stored.data
            stored.data = {**old_data, **data}
            stored.shareable = (
                stored.shareable and _values_shareable(data)
            )
            stored.version = (
                version if version is not None else stored.version + 1
            )
            for field_name in self._field_indexes:
                self._index_field_value(field_name, stored, record_id)
            self._col_update(record_id, stored, data)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("update", old_data, stored.data)
                )
            return stored

    def restore_metadata(
        self, record_id: int, metadata_state: dict
    ) -> StoredRecord:
        """Replay a durable metadata re-stamp, index included."""
        with self._lock:
            stored = self._live(record_id)
            stored.metadata = DQMetadataRecord.from_state(metadata_state)
            self._confidentiality.index(record_id, stored.metadata)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("meta", record_id, stored.metadata)
                )
            return stored

    def restore_delete(self, record_id: int) -> None:
        """Replay a durable retire op."""
        with self._lock:
            stored = self._live(record_id)
            del self._records[record_id]
            self._unindex_field_values(record_id, stored)
            self._confidentiality.unindex(record_id)
            self._col_remove(record_id)
            if self._telemetry is not None:
                self._telemetry_pending.append(
                    ("delete", record_id, stored.data)
                )

    def restore_allocator(self, state: dict) -> None:
        with self._lock:
            self._ids = IdAllocator.from_state(state)

    def allocator_state(self) -> dict:
        with self._lock:
            return self._ids.to_state()

    def high_water_id(self) -> int:
        """The highest record id this store would refuse as a duplicate."""
        with self._lock:
            return self._ids.high_water()

    def dump_state(self) -> dict:
        """This entity's full durable state (records + allocator)."""
        with self._lock:
            return {
                "records": [
                    [
                        stored.record_id,
                        dict(stored.data),
                        stored.metadata.to_state(),
                        stored.version,
                    ]
                    for stored in self._records.values()
                ],
                "allocator": self._ids.to_state(),
            }

    # -- reads -------------------------------------------------------------

    def get(self, record_id: int, deep: bool = False) -> StoredRecord:
        """A defensive snapshot of one record."""
        with self._lock:
            return self._live(record_id).snapshot(
                deep or self.deep_snapshots
            )

    def all(self, deep: bool = False) -> list[StoredRecord]:
        deep = deep or self.deep_snapshots
        with self._lock:
            return [s.snapshot(deep) for s in self._records.values()]

    def query(
        self, predicate: Callable[[dict], bool], deep: bool = False
    ) -> list[StoredRecord]:
        deep = deep or self.deep_snapshots
        with self._lock:
            return [
                s.snapshot(deep)
                for s in self._records.values()
                if predicate(s.data)
            ]

    def find_by(
        self, field_name: str, value, deep: bool = False
    ) -> list[StoredRecord]:
        """Records whose ``field_name`` equals ``value`` — O(1) when the
        field is indexed (``create_index``), a column scan otherwise.
        Results come back in insertion order either way, exactly like
        :meth:`query` with an equality predicate."""
        deep = deep or self.deep_snapshots
        with self._lock:
            index = self._field_indexes.get(field_name)
            if index is None:
                return self._scan_by(field_name, value, deep)
            try:
                matches = index.get(value)
            except TypeError:
                # unhashable lookup value: such values never enter the
                # index, so only the scan can answer equality for them
                return self._scan_by(field_name, value, deep)
            if not matches:
                return []
            records = self._records
            if len(matches) == len(records):
                return [s.snapshot(deep) for s in records.values()]
            if not self._irregular and len(matches) * 4 <= len(records):
                # Slot order is insertion order, so sorting the matched
                # ids by slot skips the full-store walk entirely.
                ordered = sorted(matches, key=self._slots.__getitem__)
                return [records[rid].snapshot(deep) for rid in ordered]
            return [
                s.snapshot(deep)
                for record_id, s in records.items()
                if record_id in matches
            ]

    def _scan_by(self, field_name: str, value, deep: bool) -> list[StoredRecord]:
        """Equality scan, answered down the field's column when every
        record is on-layout (entity lock held).

        ``list.index`` compares identity before equality (so NaN finds
        itself), making the candidate set a superset of the dict scan's
        ``==`` matches — each hit is re-checked with a real ``==`` so
        both paths stay exactly equivalent.  Only the matching rows are
        materialized as snapshots.
        """
        records = self._records
        column = self._cols.get(field_name)
        if column is not None and not self._irregular:
            self._sync_kernels()
            ids = self._col_ids
            stat = self._col_stats.get(field_name)
            if (
                stat is not None
                and type(value) in _NUMERIC_PROBE_KINDS
                and stat.kinds <= _NUMERIC_ZONE_KINDS
                and not (
                    stat.zmin is not None
                    and stat.zmin <= value <= stat.zmax
                )
            ):
                # Zone-map prune: every value ever admitted was numeric
                # and the probe falls outside the envelope (or is NaN),
                # so no live cell can ``==`` it — answer without
                # touching a single cell.
                return []
            typed = self._typed.get(field_name)
            if typed is not None:
                slots = equal_slots(typed, value)
                if slots is not None:
                    return [
                        records[rid].snapshot(deep)
                        for slot in slots
                        if (rid := ids[slot]) is not None
                    ]
            matched: list[int] = []
            search = column.index
            position = 0
            try:
                while True:
                    position = search(value, position)
                    rid = ids[position]
                    if rid is not None and column[position] == value:
                        matched.append(rid)
                    position += 1
            except ValueError:
                pass
            return [records[rid].snapshot(deep) for rid in matched]
        return [
            s.snapshot(deep)
            for s in records.values()
            if s.data.get(field_name) == value
        ]

    def select_snapshots(
        self, predicate: Callable[[StoredRecord], bool], deep: bool = False
    ) -> list[StoredRecord]:
        """Snapshots of the records matching a whole-record predicate.

        Unlike :meth:`query` the predicate sees the full record (metadata
        included), and only the matching records pay the copy cost — this
        is the index-free *oracle* for the confidentiality-filtered read
        path (:meth:`readable_snapshots` is the indexed equivalent).
        """
        deep = deep or self.deep_snapshots
        with self._lock:
            return [
                s.snapshot(deep) for s in self._records.values()
                if predicate(s)
            ]

    def readable_snapshots(
        self, user: str, user_level: int, deep: bool = False
    ) -> tuple[StoredRecord, ...]:
        """Confidentiality-filtered snapshots via the hash index.

        Semantically identical to ``select_snapshots(lambda s:
        s.metadata.accessible_by(user, user_level))`` — the property
        tests hold the two paths equal — but the per-record Python
        predicate is replaced by set unions and C-speed membership
        checks.  Insertion order is preserved.  Returns a **tuple**
        (read results are never mutated in place), built straight from
        the cached readable-id set: repeated reads by the same principal
        between writes rebuild neither the id set nor any intermediate
        list, and only matching rows are materialized.
        """
        deep = deep or self.deep_snapshots
        with self._lock:
            readable = self._confidentiality.readable_ids(user, user_level)
            if not readable:
                return ()
            records = self._records
            if len(readable) == len(records):
                return tuple(s.snapshot(deep) for s in records.values())
            if not self._irregular and len(readable) * 4 <= len(records):
                ordered = sorted(readable, key=self._slots.__getitem__)
                return tuple(records[rid].snapshot(deep) for rid in ordered)
            return tuple(
                s.snapshot(deep)
                for record_id, s in records.items()
                if record_id in readable
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        with self._lock:
            return record_id in self._records

    def __repr__(self) -> str:
        return f"<EntityStore {self.name!r} ({len(self)} records)>"


class ContentStore:
    """All entities of one application."""

    def __init__(self, clock: Optional[Clock] = None, backend=None):
        self.clock = clock or Clock()
        self._entities: dict[str, EntityStore] = {}
        self._lock = threading.RLock()
        self._backend = backend

    def define(self, name: str, fields: Sequence[str] = ()) -> EntityStore:
        with self._lock:
            if name in self._entities:
                raise ValueError(f"entity {name!r} already defined")
            store = EntityStore(name, fields, backend=self._backend)
            self._entities[name] = store
            return store

    def entity(self, name: str) -> EntityStore:
        with self._lock:
            try:
                return self._entities[name]
            except KeyError:
                raise KeyError(f"no entity named {name!r}") from None

    def attach_backend(self, backend) -> None:
        """Swap the durable backend on every entity (failover re-wire)."""
        with self._lock:
            self._backend = backend
            for store in self._entities.values():
                store.attach_backend(backend)

    def has_entity(self, name: str) -> bool:
        with self._lock:
            return name in self._entities

    @property
    def entity_names(self) -> list[str]:
        with self._lock:
            return list(self._entities)

    def set_deep_snapshots(self, enabled: bool) -> None:
        """Force (or release) the deepcopy snapshot path on every entity —
        the benchmark baseline switch."""
        with self._lock:
            for store in self._entities.values():
                store.deep_snapshots = enabled

    def set_telemetry(self, enabled: bool) -> None:
        """Enable or disable streaming DQ telemetry on every entity —
        the write-overhead benchmark baseline switch."""
        with self._lock:
            for store in self._entities.values():
                store.set_telemetry(enabled)

    # -- DQ-aware operations ----------------------------------------------

    def store(
        self,
        entity_name: str,
        data: dict,
        user: str,
        security_level: int = 0,
        available_to: Iterable[str] = (),
        record_id: Optional[int] = None,
    ) -> StoredRecord:
        """Insert with traceability + confidentiality metadata captured."""
        entity = self.entity(entity_name)
        with entity._lock:
            stored = entity.insert(data, record_id=record_id)
            stored.metadata.record_store(user, self.clock)
            stored.metadata.restrict(security_level, available_to)
            entity.reindex_metadata(stored.record_id)
            return stored

    def store_many(
        self,
        entity_name: str,
        rows: Sequence[dict],
        user: str,
        security_level: int = 0,
        available_to: Iterable[str] = (),
        record_ids: Optional[Sequence[Optional[int]]] = None,
    ) -> list[StoredRecord]:
        """Insert a validated chunk with metadata captured — the batched
        equivalent of calling :meth:`store` per row (same per-row clock
        ticks and stamps) with one lock trip and **one** telemetry update
        for the whole chunk.
        """
        entity = self.entity(entity_name)
        with entity._lock:
            stored_list = entity.insert_many(
                rows, record_ids=record_ids, log=False
            )
            for stored in stored_list:
                stored.metadata.record_store(user, self.clock)
                stored.metadata.restrict(security_level, available_to)
                entity.reindex_metadata(stored.record_id, log=False)
            # one WAL op carries the whole stamped chunk (data + metadata)
            entity.log_rows(
                stored_list, record_ids,
                user=user,
                security_level=security_level,
                available_to=available_to,
            )
            entity.observe_inserted(stored_list)
            return stored_list

    def modify(
        self, entity_name: str, record_id: int, data: dict, user: str
    ) -> StoredRecord:
        """Update with traceability metadata captured."""
        entity = self.entity(entity_name)
        with entity._lock:
            stored = entity.update(record_id, data)
            stored.metadata.record_modification(user, self.clock)
            entity.reindex_metadata(record_id)
            return stored

    def restrict(
        self,
        entity_name: str,
        record_id: int,
        security_level: int = 0,
        available_to: Iterable[str] = (),
    ) -> StoredRecord:
        """Re-stamp a record's confidentiality metadata, index included.

        Confidentiality metadata must change through here (or
        :meth:`store`) so the clearance index never drifts from the
        sidecar.
        """
        entity = self.entity(entity_name)
        with entity._lock:
            stored = entity._live(record_id)
            stored.metadata.restrict(security_level, available_to)
            entity.reindex_metadata(record_id)
            return stored

    def readable_by(
        self, entity_name: str, user: str, user_level: int
    ) -> tuple[StoredRecord, ...]:
        """Confidentiality-filtered read (the paper's Confidentiality DQR).

        Served from the per-entity clearance index; the full-scan
        predicate path (:meth:`EntityStore.select_snapshots`) remains as
        the oracle the property tests compare against.
        """
        return self.entity(entity_name).readable_snapshots(user, user_level)

    def total_records(self) -> int:
        with self._lock:
            return sum(len(store) for store in self._entities.values())

"""The content store: entities, records, and their DQ metadata sidecars.

This plays the role of the paper's ``Content`` elements at runtime: each
entity (table) stores plain-dict records; every record carries a
:class:`~repro.dq.metadata.DQMetadataRecord` sidecar where the generated
``Add_DQ_Metadata`` activities put traceability and confidentiality
metadata.

Concurrency contract (used by :mod:`repro.cluster`): every public
operation is guarded by a per-entity re-entrant lock, and the **read path**
(:meth:`EntityStore.get`, :meth:`EntityStore.all`,
:meth:`EntityStore.query`, :meth:`ContentStore.readable_by`) hands out
defensive *snapshots* — mutating a snapshot (or updating the store after
taking one) never changes the other side.  The **write path**
(:meth:`EntityStore.insert`, :meth:`EntityStore.update`,
:meth:`ContentStore.store`, :meth:`ContentStore.modify`) keeps returning
the live record so metadata stamping works as before.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence

from repro.dq.metadata import Clock, DQMetadataRecord


class IdAllocator:
    """A thread-safe record-id counter.

    Replaces the bare ``itertools.count`` the store used to rely on: two
    threads calling ``next(count)`` concurrently could observe torn
    increments on some interpreters, and a bare counter cannot be kept
    ahead of externally assigned ids (the sharded gateway allocates global
    ids itself and pushes them down via ``insert(..., record_id=...)``).
    """

    def __init__(self, start: int = 1):
        self._next = start
        self._reserved: set[int] = set()
        self._lock = threading.Lock()

    def allocate(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def reserve(self, record_id: int) -> None:
        """Keep the counter ahead of an externally assigned id.

        Each id may be reserved exactly once: a second reservation means
        the same externally routed write is being applied twice (a
        replayed worker task that slipped past the idempotency layer) and
        must fail loudly rather than silently double-apply.
        """
        with self._lock:
            if record_id in self._reserved:
                raise ValueError(
                    f"record id {record_id} already reserved "
                    "(duplicate task replay?)"
                )
            self._reserved.add(record_id)
            if record_id >= self._next:
                self._next = record_id + 1

    def peek(self) -> int:
        with self._lock:
            return self._next


@dataclass
class StoredRecord:
    """One record plus its DQ metadata sidecar.

    ``version`` starts at 1 and increments on every update — the handle
    for optimistic-concurrency checks on modification.
    """

    record_id: int
    data: dict
    metadata: DQMetadataRecord = field(default_factory=DQMetadataRecord)
    version: int = 1

    def snapshot(self) -> "StoredRecord":
        """A defensive copy sharing nothing mutable with the live record."""
        return StoredRecord(
            self.record_id,
            copy.deepcopy(self.data),
            replace(
                self.metadata,
                available_to=set(self.metadata.available_to),
                extra=copy.deepcopy(self.metadata.extra),
            ),
            self.version,
        )


class EntityStore:
    """All records of one entity (one ``Content`` element)."""

    def __init__(self, name: str, fields: Sequence[str] = ()):
        self.name = name
        self.fields = tuple(fields)
        self._records: dict[int, StoredRecord] = {}
        self._ids = IdAllocator()
        self._lock = threading.RLock()

    def insert(self, data: dict, record_id: Optional[int] = None) -> StoredRecord:
        """Insert a record; returns the **live** stored record.

        ``record_id`` lets a caller that allocates ids globally (the
        sharded gateway) pin the id; the local allocator is kept ahead so
        unpinned inserts never collide with pinned ones.
        """
        with self._lock:
            if record_id is None:
                record_id = self._ids.allocate()
            else:
                if record_id in self._records:
                    raise ValueError(
                        f"{self.name}: record id {record_id} already in use"
                    )
                self._ids.reserve(record_id)
            stored = StoredRecord(record_id, dict(data))
            self._records[record_id] = stored
            return stored

    def update(self, record_id: int, data: dict) -> StoredRecord:
        with self._lock:
            stored = self._live(record_id)
            stored.data.update(data)
            stored.version += 1
            return stored

    def _live(self, record_id: int) -> StoredRecord:
        """The live record (write path / internal use only)."""
        try:
            return self._records[record_id]
        except KeyError:
            raise KeyError(
                f"{self.name}: no record with id {record_id}"
            ) from None

    def get(self, record_id: int) -> StoredRecord:
        """A defensive snapshot of one record."""
        with self._lock:
            return self._live(record_id).snapshot()

    def delete(self, record_id: int) -> None:
        with self._lock:
            self._live(record_id)
            del self._records[record_id]

    def all(self) -> list[StoredRecord]:
        with self._lock:
            return [s.snapshot() for s in self._records.values()]

    def query(self, predicate: Callable[[dict], bool]) -> list[StoredRecord]:
        with self._lock:
            return [
                s.snapshot()
                for s in self._records.values()
                if predicate(s.data)
            ]

    def select_snapshots(
        self, predicate: Callable[[StoredRecord], bool]
    ) -> list[StoredRecord]:
        """Snapshots of the records matching a whole-record predicate.

        Unlike :meth:`query` the predicate sees the full record (metadata
        included), and only the matching records pay the copy cost — the
        confidentiality-filtered read path goes through here.
        """
        with self._lock:
            return [
                s.snapshot() for s in self._records.values() if predicate(s)
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        with self._lock:
            return record_id in self._records

    def __repr__(self) -> str:
        return f"<EntityStore {self.name!r} ({len(self)} records)>"


class ContentStore:
    """All entities of one application."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or Clock()
        self._entities: dict[str, EntityStore] = {}
        self._lock = threading.RLock()

    def define(self, name: str, fields: Sequence[str] = ()) -> EntityStore:
        with self._lock:
            if name in self._entities:
                raise ValueError(f"entity {name!r} already defined")
            store = EntityStore(name, fields)
            self._entities[name] = store
            return store

    def entity(self, name: str) -> EntityStore:
        with self._lock:
            try:
                return self._entities[name]
            except KeyError:
                raise KeyError(f"no entity named {name!r}") from None

    def has_entity(self, name: str) -> bool:
        with self._lock:
            return name in self._entities

    @property
    def entity_names(self) -> list[str]:
        with self._lock:
            return list(self._entities)

    # -- DQ-aware operations ----------------------------------------------

    def store(
        self,
        entity_name: str,
        data: dict,
        user: str,
        security_level: int = 0,
        available_to: Iterable[str] = (),
        record_id: Optional[int] = None,
    ) -> StoredRecord:
        """Insert with traceability + confidentiality metadata captured."""
        entity = self.entity(entity_name)
        with entity._lock:
            stored = entity.insert(data, record_id=record_id)
            stored.metadata.record_store(user, self.clock)
            stored.metadata.restrict(security_level, available_to)
            return stored

    def modify(
        self, entity_name: str, record_id: int, data: dict, user: str
    ) -> StoredRecord:
        """Update with traceability metadata captured."""
        entity = self.entity(entity_name)
        with entity._lock:
            stored = entity.update(record_id, data)
            stored.metadata.record_modification(user, self.clock)
            return stored

    def readable_by(
        self, entity_name: str, user: str, user_level: int
    ) -> list[StoredRecord]:
        """Confidentiality-filtered read (the paper's Confidentiality DQR)."""
        return self.entity(entity_name).select_snapshots(
            lambda stored: stored.metadata.accessible_by(user, user_level)
        )

    def total_records(self) -> int:
        with self._lock:
            return sum(len(store) for store in self._entities.values())

"""The content store: entities, records, and their DQ metadata sidecars.

This plays the role of the paper's ``Content`` elements at runtime: each
entity (table) stores plain-dict records; every record carries a
:class:`~repro.dq.metadata.DQMetadataRecord` sidecar where the generated
``Add_DQ_Metadata`` activities put traceability and confidentiality
metadata.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.dq.metadata import Clock, DQMetadataRecord


@dataclass
class StoredRecord:
    """One record plus its DQ metadata sidecar.

    ``version`` starts at 1 and increments on every update — the handle
    for optimistic-concurrency checks on modification.
    """

    record_id: int
    data: dict
    metadata: DQMetadataRecord = field(default_factory=DQMetadataRecord)
    version: int = 1


class EntityStore:
    """All records of one entity (one ``Content`` element)."""

    def __init__(self, name: str, fields: Sequence[str] = ()):
        self.name = name
        self.fields = tuple(fields)
        self._records: dict[int, StoredRecord] = {}
        self._ids = itertools.count(1)

    def insert(self, data: dict) -> StoredRecord:
        record_id = next(self._ids)
        stored = StoredRecord(record_id, dict(data))
        self._records[record_id] = stored
        return stored

    def update(self, record_id: int, data: dict) -> StoredRecord:
        stored = self.get(record_id)
        stored.data.update(data)
        stored.version += 1
        return stored

    def get(self, record_id: int) -> StoredRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise KeyError(
                f"{self.name}: no record with id {record_id}"
            ) from None

    def delete(self, record_id: int) -> None:
        self.get(record_id)
        del self._records[record_id]

    def all(self) -> list[StoredRecord]:
        return list(self._records.values())

    def query(self, predicate: Callable[[dict], bool]) -> list[StoredRecord]:
        return [s for s in self._records.values() if predicate(s.data)]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def __repr__(self) -> str:
        return f"<EntityStore {self.name!r} ({len(self)} records)>"


class ContentStore:
    """All entities of one application."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or Clock()
        self._entities: dict[str, EntityStore] = {}

    def define(self, name: str, fields: Sequence[str] = ()) -> EntityStore:
        if name in self._entities:
            raise ValueError(f"entity {name!r} already defined")
        store = EntityStore(name, fields)
        self._entities[name] = store
        return store

    def entity(self, name: str) -> EntityStore:
        try:
            return self._entities[name]
        except KeyError:
            raise KeyError(f"no entity named {name!r}") from None

    def has_entity(self, name: str) -> bool:
        return name in self._entities

    @property
    def entity_names(self) -> list[str]:
        return list(self._entities)

    # -- DQ-aware operations ----------------------------------------------

    def store(
        self,
        entity_name: str,
        data: dict,
        user: str,
        security_level: int = 0,
        available_to: Iterable[str] = (),
    ) -> StoredRecord:
        """Insert with traceability + confidentiality metadata captured."""
        stored = self.entity(entity_name).insert(data)
        stored.metadata.record_store(user, self.clock)
        stored.metadata.restrict(security_level, available_to)
        return stored

    def modify(
        self, entity_name: str, record_id: int, data: dict, user: str
    ) -> StoredRecord:
        """Update with traceability metadata captured."""
        stored = self.entity(entity_name).update(record_id, data)
        stored.metadata.record_modification(user, self.clock)
        return stored

    def readable_by(
        self, entity_name: str, user: str, user_level: int
    ) -> list[StoredRecord]:
        """Confidentiality-filtered read (the paper's Confidentiality DQR)."""
        return [
            stored
            for stored in self.entity(entity_name).all()
            if stored.metadata.accessible_by(user, user_level)
        ]

    def total_records(self) -> int:
        return sum(len(store) for store in self._entities.values())

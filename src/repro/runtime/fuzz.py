"""Model-driven workload generation: fuzz an app from its design model.

Where :mod:`repro.casestudy.workloads` hand-crafts EasyChair submissions,
this module reads the *design model itself* — fields, required fields,
precision bounds, format patterns, trusted sources — and synthesizes both
valid submissions and targeted defect injections for **any** generated
application.  Downstream users get a free conformance harness: if the
design says the app must reject X, the fuzzer produces X and checks that
it does.

Determinism: everything derives from ``random.Random(seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core import MObject
from repro.core.errors import (
    AuthorizationError,
    DataQualityViolation,
)
from repro.dq.validators import (
    CredibilityValidator,
    CurrentnessValidator,
    FormatValidator,
    PrecisionValidator,
)

from .app import WebApp
from .forms import Form

#: Defect kinds the fuzzer can inject, keyed to the validator they target.
DEFECTS = ("missing_field", "out_of_range", "bad_format", "bad_source",
           "stale")


@dataclass
class FuzzOutcome:
    """Aggregate result of one fuzzing run."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    escaped_defects: list = field(default_factory=list)
    false_rejects: list = field(default_factory=list)

    @property
    def sound(self) -> bool:
        """True when every defect was caught and every clean input passed."""
        return not self.escaped_defects and not self.false_rejects

    def render(self) -> str:
        return (
            f"{self.submitted} submitted: {self.accepted} accepted, "
            f"{self.rejected} rejected; "
            f"{len(self.escaped_defects)} defect(s) escaped, "
            f"{len(self.false_rejects)} clean input(s) refused"
        )


class DesignFuzzer:
    """Generates and runs submissions for one form of a generated app."""

    def __init__(
        self,
        app: WebApp,
        form: Optional[Form] = None,
        seed: int = 23,
        user: str = "fuzzer",
        user_level: int = 9,
    ):
        self.app = app
        self.form = form or app.forms[0]
        self._rng = random.Random(seed)
        self.user = user
        if not app.users.known(user):
            app.add_user(user, user_level)
        self._bounds: dict[str, tuple] = {}
        self._patterns: dict[str, str] = {}
        self._age_fields: dict[str, int] = {}
        self._source_fields: dict[str, tuple] = {}
        self._inspect_validators()

    def _inspect_validators(self) -> None:
        for validator in self.form.validators:
            if isinstance(validator, PrecisionValidator):
                self._bounds.update(validator.bounds)
            elif isinstance(validator, FormatValidator):
                for field_name, pattern in validator.patterns.items():
                    self._patterns[field_name] = pattern.pattern
            elif isinstance(validator, CurrentnessValidator):
                self._age_fields[validator.age_field] = validator.max_age
            elif isinstance(validator, CredibilityValidator):
                self._source_fields[validator.source_field] = tuple(
                    validator.trusted_sources
                )

    # -- generation ---------------------------------------------------------

    def valid_record(self) -> dict:
        """A record satisfying every declared validator."""
        record: dict = {}
        for field_name in self.form.fields:
            record[field_name] = self._valid_value(field_name)
        return record

    def _valid_value(self, field_name: str):
        if field_name in self._bounds:
            lower, upper = self._bounds[field_name]
            return self._rng.randint(int(lower), int(upper))
        if field_name in self._age_fields:
            return self._rng.randint(0, self._age_fields[field_name])
        if field_name in self._source_fields:
            return self._rng.choice(self._source_fields[field_name])
        if field_name in self._patterns:
            return self._sample_for_pattern(self._patterns[field_name])
        return f"{field_name}-{self._rng.randint(1, 999)}"

    def _sample_for_pattern(self, pattern: str) -> str:
        """A value matching the known pattern families used by the library."""
        if "@" in pattern:
            return f"user{self._rng.randint(1, 99)}@example.org"
        if pattern.startswith(r"\d{5}"):
            return f"{self._rng.randint(0, 99999):05d}"
        if r"\d{4}-\d{2}-\d{2}" in pattern:
            return "2026-07-06"
        # identifier-ish fallback
        return f"ID-{self._rng.randint(100, 999)}"

    def defective_record(self, defect: str) -> Optional[dict]:
        """A record violating exactly one declared rule, or ``None`` when
        the design declares no rule of that kind (nothing to violate)."""
        record = self.valid_record()
        rng = self._rng
        if defect == "missing_field":
            required = self._required_fields()
            if not required:
                return None
            record[rng.choice(required)] = None
            return record
        if defect == "out_of_range":
            if not self._bounds:
                return None
            field_name = rng.choice(sorted(self._bounds))
            __, upper = self._bounds[field_name]
            record[field_name] = int(upper) + rng.randint(1, 100)
            return record
        if defect == "bad_format":
            if not self._patterns:
                return None
            field_name = rng.choice(sorted(self._patterns))
            record[field_name] = "!!definitely-not-valid!!"
            return record
        if defect == "bad_source":
            if not self._source_fields:
                return None
            field_name = rng.choice(sorted(self._source_fields))
            record[field_name] = "untrusted-origin"
            return record
        if defect == "stale":
            if not self._age_fields:
                return None
            field_name = rng.choice(sorted(self._age_fields))
            record[field_name] = self._age_fields[field_name] + rng.randint(
                1, 1000
            )
            return record
        raise ValueError(f"unknown defect kind {defect!r}")

    def _required_fields(self) -> list[str]:
        from repro.dq.validators import CompletenessValidator

        required: list[str] = []
        for validator in self.form.validators:
            if isinstance(validator, CompletenessValidator):
                required.extend(validator.required_fields)
        return sorted(set(required))

    def applicable_defects(self) -> list[str]:
        """The defect kinds this form's validators actually rule out."""
        return [d for d in DEFECTS if self.defective_record(d) is not None]

    # -- execution -----------------------------------------------------------

    def run(self, count: int = 100, defect_rate: float = 0.4) -> FuzzOutcome:
        """Submit ``count`` records; ~``defect_rate`` carry one defect."""
        if not 0.0 <= defect_rate <= 1.0:
            raise ValueError("defect_rate must lie in [0, 1]")
        applicable = self.applicable_defects()
        outcome = FuzzOutcome()
        for index in range(count):
            inject = applicable and self._rng.random() < defect_rate
            if inject:
                defect = self._rng.choice(applicable)
                record = self.defective_record(defect)
            else:
                defect = None
                record = self.valid_record()
            outcome.submitted += 1
            try:
                self.app.submit(self.form.name, record, self.user)
            except (DataQualityViolation, AuthorizationError):
                outcome.rejected += 1
                if defect is None:
                    outcome.false_rejects.append((index, record))
            else:
                outcome.accepted += 1
                if defect is not None:
                    outcome.escaped_defects.append((index, defect, record))
        return outcome

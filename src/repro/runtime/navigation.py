"""Navigation runtime: execute WebRE ``Navigation`` use cases.

WebRE's Behavior package is not only data entry — it models *navigation*:
a ``WebUser`` browses from node to node until a target is reached
(Table 2).  This module interprets those models: it builds a navigation
graph from a requirements model's nodes and browse activities, lets a
simulated session walk it, and can check that every modelled navigation is
actually realizable (its target reachable through its browses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import MObject
from repro.core.errors import ModelError


@dataclass(frozen=True)
class Hop:
    """One traversal step: which browse moved the session where."""

    browse_name: str
    source: Optional[str]
    target: str


class NavigationGraph:
    """The node graph induced by a model's Browse activities."""

    def __init__(self, model: MObject):
        self._nodes: dict[str, MObject] = {}
        self._edges: dict[str, list[tuple[str, str]]] = {}
        for node in model.nodes:
            self._nodes[node.name] = node
            self._edges.setdefault(node.name, [])
        for navigation in model.navigations:
            for browse in navigation.browses:
                self._add_browse(browse)
        for process in model.processes:
            for activity in process.activities:
                if activity.has_feature("target") and activity.has_feature(
                    "source"
                ):
                    self._add_browse(activity)

    def _add_browse(self, browse: MObject) -> None:
        target = browse.target
        if target is None:
            return
        source = browse.source
        source_name = source.name if source is not None else None
        self._nodes.setdefault(target.name, target)
        self._edges.setdefault(target.name, [])
        if source_name is None:
            return
        self._nodes.setdefault(source_name, source)
        edges = self._edges.setdefault(source_name, [])
        edges.append((browse.name, target.name))

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    def node(self, name: str) -> MObject:
        try:
            return self._nodes[name]
        except KeyError:
            raise ModelError(f"no navigation node named {name!r}") from None

    def browses_from(self, name: str) -> list[tuple[str, str]]:
        """``(browse_name, target_node)`` pairs leaving a node."""
        return list(self._edges.get(name, []))

    def reachable_from(self, name: str) -> set[str]:
        seen = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for __, target in self._edges.get(current, []):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def path(self, start: str, goal: str) -> Optional[list[Hop]]:
        """A shortest browse path, or ``None`` when unreachable (BFS)."""
        if start == goal:
            return []
        self.node(start)
        self.node(goal)
        parents: dict[str, Hop] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            current = frontier.pop(0)
            for browse_name, target in self._edges.get(current, []):
                if target in seen:
                    continue
                parents[target] = Hop(browse_name, current, target)
                if target == goal:
                    return self._unwind(parents, start, goal)
                seen.add(target)
                frontier.append(target)
        return None

    @staticmethod
    def _unwind(parents: dict[str, Hop], start: str, goal: str) -> list[Hop]:
        hops: list[Hop] = []
        cursor = goal
        while cursor != start:
            hop = parents[cursor]
            hops.append(hop)
            cursor = hop.source
        hops.reverse()
        return hops


@dataclass
class NavigationSession:
    """A simulated user walking the navigation graph."""

    graph: NavigationGraph
    user: str
    current: str
    history: list[Hop] = field(default_factory=list)

    def available_browses(self) -> list[tuple[str, str]]:
        return self.graph.browses_from(self.current)

    def browse(self, browse_name: str) -> str:
        """Follow the named browse from the current node."""
        for name, target in self.graph.browses_from(self.current):
            if name == browse_name:
                self.history.append(Hop(name, self.current, target))
                self.current = target
                return target
        raise ModelError(
            f"no browse {browse_name!r} leaves node {self.current!r}"
        )

    def navigate_to(self, goal: str) -> list[Hop]:
        """Walk a shortest path to ``goal``; raises when unreachable."""
        hops = self.graph.path(self.current, goal)
        if hops is None:
            raise ModelError(
                f"node {goal!r} is not reachable from {self.current!r}"
            )
        for hop in hops:
            self.history.append(hop)
        self.current = goal
        return hops

    def contents_here(self) -> list[str]:
        """Names of the Content elements available at the current node."""
        node = self.graph.node(self.current)
        return [content.name for content in node.contents]


def check_navigations(model: MObject) -> list[str]:
    """Which modelled Navigations are not realizable; empty = all fine.

    A Navigation is realizable when its target node is reachable from the
    source of its first browse (or is directly the target of one of its
    browses when no sources are modelled).
    """
    graph = NavigationGraph(model)
    problems: list[str] = []
    for navigation in model.navigations:
        target = navigation.target
        if target is None:
            problems.append(f"navigation {navigation.name!r} has no target")
            continue
        browses = list(navigation.browses)
        if not browses:
            problems.append(
                f"navigation {navigation.name!r} has no browse activities"
            )
            continue
        direct_targets = {
            b.target.name for b in browses if b.target is not None
        }
        starts = [b.source.name for b in browses if b.source is not None]
        if target.name in direct_targets:
            continue
        if starts and target.name in graph.reachable_from(starts[0]):
            continue
        problems.append(
            f"navigation {navigation.name!r}: target {target.name!r} is "
            "not reachable through its browses"
        )
    return problems

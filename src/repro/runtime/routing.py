"""A small router: exact and parameterized paths to handlers."""

from __future__ import annotations

from typing import Callable, Optional

from .http import Request, Response, method_not_allowed, not_found

Handler = Callable[[Request], Response]


class Route:
    """One registered route; ``<name>`` segments capture path parameters."""

    def __init__(self, path: str, method: str, handler: Handler):
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/': {path!r}")
        self.path = path
        self.method = method.upper()
        self.handler = handler
        self._segments = [s for s in path.split("/") if s]

    def match(self, path: str) -> Optional[dict]:
        """Path params when ``path`` matches, else ``None``."""
        segments = [s for s in path.split("/") if s]
        if len(segments) != len(self._segments):
            return None
        params: dict = {}
        for pattern, actual in zip(self._segments, segments):
            if pattern.startswith("<") and pattern.endswith(">"):
                params[pattern[1:-1]] = actual
            elif pattern != actual:
                return None
        return params

    def __repr__(self) -> str:
        return f"<Route {self.method} {self.path}>"


class Router:
    """Dispatches requests to handlers; 404/405 when nothing fits."""

    def __init__(self):
        self._routes: list[Route] = []

    def add(self, path: str, method: str, handler: Handler) -> Route:
        route = Route(path, method, handler)
        self._routes.append(route)
        return route

    @property
    def routes(self) -> list[Route]:
        return list(self._routes)

    def dispatch(self, request: Request) -> Response:
        path_matched = False
        for route in self._routes:
            params = route.match(request.path)
            if params is None:
                continue
            path_matched = True
            if route.method != request.method:
                continue
            request.params.update(params)
            return route.handler(request)
        if path_matched:
            return method_not_allowed(
                f"{request.method} not allowed on {request.path}"
            )
        return not_found(f"no route for {request.path}")

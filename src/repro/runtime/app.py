"""The DQ-aware web application: routes + forms + storage + enforcement.

A :class:`WebApp` assembles the whole runtime: the router, the content store
with DQ metadata sidecars, the user directory and confidentiality policies,
the audit trail, and the per-form validator pipelines.  Its request pipeline
implements every DQSR family of the paper's case study:

* **Completeness / Precision** — form validators run before any write; a
  failing write is rejected with 422 and the findings (never stored);
* **Confidentiality** — writes require clearance; reads are filtered to
  records the user may see (security level or explicit grant);
* **Traceability** — every accepted write stamps the metadata sidecar and
  the global audit trail records every store/modify/read/rejection.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable, Optional, Sequence

from repro.core.errors import (
    AuthorizationError,
    DataQualityViolation,
    VersionConflictError,
)
from repro.dq.metadata import Clock
from repro.persistence import MemoryBackend, PersistenceBackend, capture_state

from . import audit as audit_events
from .audit import AuditTrail
from .forms import Form
from .http import (
    Request,
    Response,
    bad_request,
    conflict,
    created,
    forbidden,
    not_found,
    ok,
    unprocessable,
)
from .routing import Handler, Router
from .security import PolicyBook, UserDirectory
from .storage import ContentStore, StoredRecord
from .vpipeline import PlanCache, ValidationStats


class BatchResult:
    """Outcome of a bulk load: which rows landed, which were refused."""

    def __init__(self):
        self.accepted: list[tuple[int, int]] = []       # (row, record_id)
        self.rejected: list[tuple[int, list]] = []      # (row, findings)
        self.unauthorized: list[tuple[int, str]] = []   # (row, reason)

    @property
    def total(self) -> int:
        return len(self.accepted) + len(self.rejected) + len(self.unauthorized)

    @property
    def all_accepted(self) -> bool:
        return not self.rejected and not self.unauthorized

    def render(self) -> str:
        return (
            f"batch of {self.total}: {len(self.accepted)} accepted, "
            f"{len(self.rejected)} DQ-rejected, "
            f"{len(self.unauthorized)} unauthorized"
        )


class WebApp:
    """One simulated, DQ-aware web application."""

    def __init__(
        self,
        name: str,
        clock: Optional[Clock] = None,
        compiled: bool = True,
        plan_cache: Optional[PlanCache] = None,
        persistence: Optional[PersistenceBackend] = None,
    ):
        self.name = name
        self.clock = clock or Clock()
        # Pluggable durability: the default MemoryBackend is non-durable
        # and the stores skip it entirely, so the in-memory write path
        # is byte-for-byte what it was before persistence existed.
        self.persistence = (
            persistence if persistence is not None else MemoryBackend()
        )
        backend = self.persistence if self.persistence.durable else None
        self.store = ContentStore(self.clock, backend=backend)
        self.audit = AuditTrail(self.clock, backend=backend)
        self.users = UserDirectory()
        self.policies = PolicyBook()
        self.router = Router()
        self._forms: dict[str, Form] = {}
        self._required_fields: dict[str, tuple] = {}
        self._metadata_captures: dict[str, tuple] = {}
        # compiled=False is the escape hatch: every form validates via
        # the legacy interpreted walk instead of fused plans.  A shared
        # plan_cache (e.g. one cache across all shards of a gateway)
        # lets identical chains compile once fleet-wide.
        self.compiled = compiled
        self.plan_cache = (
            plan_cache if plan_cache is not None
            else (PlanCache() if compiled else None)
        )
        self.validation = ValidationStats()

    # -- configuration (what codegen emits) ----------------------------------

    def define_entity(
        self,
        name: str,
        fields: Sequence[str],
        required_fields: Sequence[str] = (),
        indexed_fields: Sequence[str] = (),
    ) -> "WebApp":
        store = self.store.define(name, fields)
        for field_name in indexed_fields:
            store.create_index(field_name)
        self._required_fields[name] = tuple(required_fields)
        return self

    def set_policy(
        self, entity: str, security_level: int, grant_writer_access: bool = True
    ) -> "WebApp":
        self.policies.set(entity, security_level, grant_writer_access)
        return self

    def capture_metadata(self, entity: str, attributes: Sequence[str]) -> "WebApp":
        """Declare which DQ metadata the app captures for an entity."""
        existing = set(self._metadata_captures.get(entity, ()))
        existing.update(attributes)
        self._metadata_captures[entity] = tuple(sorted(existing))
        for form in self._forms.values():
            if form.entity == entity:
                form.set_metadata_attributes(self._metadata_captures[entity])
        return self

    def register_form(self, form: Form) -> Form:
        if form.name in self._forms:
            raise ValueError(f"form {form.name!r} already registered")
        if not self.store.has_entity(form.entity):
            raise ValueError(
                f"form {form.name!r} targets unknown entity {form.entity!r}"
            )
        form.compiled = self.compiled
        if self.compiled:
            form.use_plan_cache(self.plan_cache)
        form.set_metadata_attributes(
            self._metadata_captures.get(form.entity, ())
        )
        self._forms[form.name] = form
        return form

    def form(self, name: str) -> Form:
        try:
            return self._forms[name]
        except KeyError:
            raise KeyError(f"no form named {name!r}") from None

    @property
    def forms(self) -> list[Form]:
        return list(self._forms.values())

    def add_user(self, name: str, level: int = 0, roles=()) -> "WebApp":
        self.users.register(name, level, roles)
        return self

    def route(self, path: str, method: str, handler: Handler) -> "WebApp":
        self.router.add(path, method, handler)
        return self

    # -- durability ------------------------------------------------------------

    def attach_persistence(self, backend) -> None:
        """Re-point the running app at a (new) persistence backend.

        The replication failover path promotes a caught-up follower —
        an app built without durable storage — to primary; the promoted
        app must then log every further mutation, so the stores and the
        audit trail are re-wired onto ``backend`` in place.  The backend
        is expected to already hold (or wrap) the durable history this
        app's state came from; nothing is replayed here.
        """
        from repro.persistence import MemoryBackend

        self.persistence = backend if backend is not None else MemoryBackend()
        self.store.attach_backend(
            self.persistence if self.persistence.durable else None
        )
        self.audit.attach_backend(self.persistence)

    def commit(self) -> None:
        """Group commit: make every logged op durable, compact when due.

        The write pipelines call this once per acknowledged operation
        (once per batch for bulk loads), so an acknowledged write always
        survives a kill while a batch pays a single sync barrier.  When
        the WAL tail has outgrown the last snapshot the whole
        application state is checkpointed and the log truncated.  No-op
        on non-durable backends.
        """
        backend = self.persistence
        if not backend.durable:
            return
        backend.sync()
        if backend.should_compact():
            backend.checkpoint(capture_state(self))

    # -- core operations -------------------------------------------------------

    def submit(
        self,
        form_name: str,
        data: dict,
        user: str,
        record_id: Optional[int] = None,
    ) -> StoredRecord:
        """The write pipeline: bind → validate → authorize → store → stamp.

        Raises :class:`DataQualityViolation` on validator findings and
        :class:`AuthorizationError` on clearance failures; both are audited.
        ``record_id`` lets a fronting layer that allocates ids globally
        (:mod:`repro.cluster`) pin the stored id.
        """
        form = self.form(form_name)
        record = form.bind(data)
        t0 = perf_counter()
        findings = form.validate(record)
        self.validation.observe(1, perf_counter() - t0)
        if findings:
            self.audit.record(
                audit_events.REJECT_DQ,
                user,
                form.entity,
                detail="; ".join(f.render() for f in findings),
            )
            raise DataQualityViolation(
                f"form {form_name!r}: {len(findings)} DQ finding(s)",
                findings,
            )
        return self._store_validated(form, record, user, record_id)

    def _store_validated(
        self,
        form: Form,
        record: dict,
        user: str,
        record_id: Optional[int],
    ) -> StoredRecord:
        """Authorize + store + stamp one already-validated record."""
        account = self.users.get(user)
        policy = self.policies.for_entity(form.entity)
        try:
            self.policies.check_write(form.entity, account)
        except AuthorizationError as exc:
            self.audit.record(
                audit_events.REJECT_AUTH, user, form.entity, detail=str(exc)
            )
            raise
        grants = [user] if policy.grant_writer_access else []
        stored = self.store.store(
            form.entity,
            record,
            user,
            security_level=policy.security_level,
            available_to=grants,
            record_id=record_id,
        )
        self.audit.record(
            audit_events.STORE, user, form.entity, stored.record_id
        )
        self.commit()
        return stored

    def modify(
        self,
        form_name: str,
        record_id: int,
        data: dict,
        user: str,
        expected_version: Optional[int] = None,
    ) -> StoredRecord:
        """The update pipeline: version-check → merge → validate →
        authorize → stamp.

        ``expected_version`` enables optimistic concurrency: pass the
        version the client read; a mismatch raises
        :class:`VersionConflictError` before anything is touched.
        """
        form = self.form(form_name)
        current = self.store.entity(form.entity).get(record_id)
        if expected_version is not None and current.version != expected_version:
            raise VersionConflictError(
                f"{form.entity}#{record_id}: expected version "
                f"{expected_version}, stored version is {current.version}"
            )
        merged = dict(current.data)
        merged.update({k: v for k, v in data.items() if k in form.fields})
        t0 = perf_counter()
        findings = form.validate(merged)
        self.validation.observe(1, perf_counter() - t0)
        if findings:
            self.audit.record(
                audit_events.REJECT_DQ,
                user,
                form.entity,
                record_id,
                detail="; ".join(f.render() for f in findings),
            )
            raise DataQualityViolation(
                f"form {form_name!r}: {len(findings)} DQ finding(s)",
                findings,
            )
        account = self.users.get(user)
        try:
            self.policies.check_write(form.entity, account)
        except AuthorizationError as exc:
            self.audit.record(
                audit_events.REJECT_AUTH, user, form.entity, record_id,
                detail=str(exc),
            )
            raise
        stored = self.store.modify(form.entity, record_id, merged, user)
        self.audit.record(
            audit_events.MODIFY, user, form.entity, record_id
        )
        self.commit()
        return stored

    def submit_batch(
        self,
        form_name: str,
        records: list,
        user: str,
        record_ids: Optional[Sequence[int]] = None,
    ) -> "BatchResult":
        """Bulk load (the BI extract-import scenario): partial accept.

        Each record goes through the full write pipeline independently;
        valid rows are stored, invalid ones reported — the batch never
        fails as a whole, and every rejection is audited as usual.
        ``record_ids`` lets a fronting layer that allocates ids globally
        (the sharded gateway's write batcher) pin each row's id, exactly
        like the ``record_id`` argument of :meth:`submit`.
        """
        if record_ids is not None and len(record_ids) != len(records):
            raise ValueError(
                f"{len(record_ids)} record id(s) for {len(records)} record(s)"
            )
        result = BatchResult()
        if not self.compiled:
            for index, record in enumerate(records):
                pinned = record_ids[index] if record_ids is not None else None
                try:
                    stored = self.submit(
                        form_name, record, user, record_id=pinned
                    )
                except DataQualityViolation as exc:
                    result.rejected.append((index, exc.findings))
                except AuthorizationError as exc:
                    result.unauthorized.append((index, str(exc)))
                else:
                    result.accepted.append((index, stored.record_id))
            return result
        # compiled: one vectorized validate_batch over the whole chunk
        # (the records were just bound, so the plan may skip its layout
        # check), then ONE authorization check and ONE ``store_many``
        # trip for every valid row — same per-row stamps and audit
        # events as the per-record pipeline, but the entity lock and the
        # telemetry accumulators are touched once per chunk.
        form = self.form(form_name)
        bound = [form.bind(record) for record in records]
        t0 = perf_counter()
        per_record = form.validate_batch(bound, prebound=True)
        self.validation.observe(
            len(bound), perf_counter() - t0, batched=True
        )
        valid: list[tuple[int, dict, Optional[int]]] = []
        for index, (record, findings) in enumerate(zip(bound, per_record)):
            pinned = record_ids[index] if record_ids is not None else None
            if findings:
                self.audit.record(
                    audit_events.REJECT_DQ,
                    user,
                    form.entity,
                    detail="; ".join(f.render() for f in findings),
                )
                result.rejected.append((index, findings))
            else:
                valid.append((index, record, pinned))
        if not valid:
            return result
        account = self.users.get(user)
        policy = self.policies.for_entity(form.entity)
        try:
            self.policies.check_write(form.entity, account)
        except AuthorizationError as exc:
            detail = str(exc)
            for index, _record, _pinned in valid:
                self.audit.record(
                    audit_events.REJECT_AUTH, user, form.entity,
                    detail=detail,
                )
                result.unauthorized.append((index, detail))
            return result
        grants = [user] if policy.grant_writer_access else []
        stored_list = self.store.store_many(
            form.entity,
            [record for _index, record, _pinned in valid],
            user,
            security_level=policy.security_level,
            available_to=grants,
            record_ids=[pinned for _index, _record, pinned in valid],
        )
        self.audit.record_many(
            audit_events.STORE, user, form.entity,
            [stored.record_id for stored in stored_list],
        )
        for (index, _record, _pinned), stored in zip(valid, stored_list):
            result.accepted.append((index, stored.record_id))
        self.commit()
        return result

    def read(self, entity: str, user: str) -> Sequence[StoredRecord]:
        """Confidentiality-filtered read of an entity's records."""
        account = self.users.get(user)
        visible = self.store.readable_by(entity, user, account.level)
        self.audit.record(
            audit_events.READ, user, entity,
            detail=f"{len(visible)} record(s) visible",
        )
        return visible

    def read_record(
        self, entity: str, record_id: int, user: str
    ) -> StoredRecord:
        """Read one record; raises :class:`AuthorizationError` when hidden."""
        stored = self.store.entity(entity).get(record_id)
        account = self.users.get(user)
        if not stored.metadata.accessible_by(user, account.level):
            self.audit.record(
                audit_events.REJECT_AUTH, user, entity, record_id,
                detail="read denied by confidentiality policy",
            )
            raise AuthorizationError(
                f"user {user!r} may not read {entity}#{record_id}"
            )
        self.audit.record(audit_events.READ, user, entity, record_id)
        return stored

    # -- handler factories (what routes are made of) ------------------------------

    def create_handler(self, form_name: str) -> Handler:
        def handle(request: Request) -> Response:
            try:
                stored = self.submit(form_name, request.data, request.user)
            except DataQualityViolation as exc:
                return unprocessable(exc.findings)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            return created({"id": stored.record_id})

        return handle

    def update_handler(self, form_name: str) -> Handler:
        def handle(request: Request) -> Response:
            raw_id = request.params.get("id")
            if raw_id is None:
                return bad_request("missing record id")
            entity = self.form(form_name).entity
            try:
                record_id = int(raw_id)
                self.store.entity(entity).get(record_id)
            except (ValueError, KeyError):
                return not_found(f"no record {raw_id!r}")
            payload = dict(request.data)
            expected_version = payload.pop("expected_version", None)
            try:
                stored = self.modify(
                    form_name, record_id, payload, request.user,
                    expected_version=expected_version,
                )
            except DataQualityViolation as exc:
                return unprocessable(exc.findings)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            except VersionConflictError as exc:
                return conflict(str(exc))
            return ok({"id": stored.record_id, "version": stored.version})

        return handle

    def list_handler(self, entity: str) -> Handler:
        def handle(request: Request) -> Response:
            visible = self.read(entity, request.user)
            return ok(
                [
                    {"id": s.record_id, **s.data}
                    for s in visible
                ]
            )

        return handle

    def view_handler(self, entity: str) -> Handler:
        def handle(request: Request) -> Response:
            raw_id = request.params.get("id")
            if raw_id is None:
                return bad_request("missing record id")
            try:
                record_id = int(raw_id)
            except ValueError:
                return bad_request(f"bad record id {raw_id!r}")
            try:
                stored = self.read_record(entity, record_id, request.user)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            except KeyError:
                return not_found(f"no record {record_id}")
            return ok({"id": stored.record_id, **stored.data})

        return handle

    # -- request entry point ----------------------------------------------------

    def handle(self, request: Request) -> Response:
        return self.router.dispatch(request)

    def get(self, path: str, user: str = "anonymous") -> Response:
        return self.handle(Request("GET", path, user=user))

    def post(self, path: str, data: dict, user: str = "anonymous") -> Response:
        return self.handle(Request("POST", path, user=user, data=data))

    # -- introspection -----------------------------------------------------------

    def describe(self) -> str:
        lines = [f"WebApp {self.name!r}"]
        lines.append(f"  entities: {', '.join(self.store.entity_names) or '-'}")
        for form in self._forms.values():
            ops = ", ".join(v.name for v in form.validators) or "no validators"
            lines.append(f"  form {form.name!r} -> {form.entity} ({ops})")
        for route in self.router.routes:
            lines.append(f"  {route.method} {route.path}")
        restricted = [
            name for name in self.store.entity_names
            if self.policies.is_restricted(name)
        ]
        if restricted:
            lines.append(f"  restricted entities: {', '.join(restricted)}")
        return "\n".join(lines)

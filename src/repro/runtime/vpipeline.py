"""Compiled DQ validation pipelines: fused checkers + plan cache.

Every write in the reproduction pays the form's validator chain
(:mod:`repro.dq.validators`) before anything is stored — exactly the
paper's admission-time enforcement — which makes the interpreted
validator walk the hottest code in the system once storage is fast.
This module compiles a form's full chain (Completeness, Precision,
Format, Enum, Consistency/OclConsistency, Currentness, Credibility)
plus the entity's DQ-metadata stamping spec into one **fused checker**:

* field names are resolved once at compile time and each record is
  traversed a single time (one ``record.get`` per distinct field,
  shared by every validator that reads it);
* regexes, bound tuples, enum tuples and message suffixes are
  precomputed into plan constants;
* :meth:`CompiledPlan.findings` preserves the legacy chain's *exact*
  :class:`~repro.dq.validators.Finding` output — codes, fields,
  messages and ordering, including the fail-closed ``validator-error``
  finding a crashing validator produces under
  :meth:`repro.runtime.forms.Form.validate`;
* :meth:`CompiledPlan.admit` is the fail-fast boolean variant for the
  pure admission path;
* :meth:`CompiledPlan.check_batch` is the vectorized entry point: the
  per-record loop lives *inside* the generated code, so batched writes
  (``WebApp.submit_batch``, ``ShardedGateway.submit_many``) amortize
  the plan lookup and all per-call overhead across the chunk.

Plans are cached in a :class:`PlanCache` keyed by a stable structural
signature of the validator specs (and the metadata stamping spec), so
N identical shards compile each chain once; redefining a form changes
the signature and can never be served a stale plan.

Validators the compiler does not recognise — stateful ones like
``UniquenessValidator``, or user subclasses — are embedded opaquely:
the plan calls their ``check`` exactly as the legacy chain would, and
their identity (not their config) keys the cache.
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from typing import Optional, Sequence

from repro.colkernels import range_defect_slots
from repro.dq.validators import (
    CompletenessValidator,
    CredibilityValidator,
    CurrentnessValidator,
    EnumValidator,
    ConsistencyValidator,
    FormatValidator,
    Finding,
    OclConsistencyValidator,
    PrecisionValidator,
    Validator,
)

__all__ = [
    "CompiledPlan",
    "PlanCache",
    "ValidationStats",
    "chain_signature",
    "compile_plan",
]


# ---------------------------------------------------------------------------
# Signatures: a stable structural key for one validator chain
# ---------------------------------------------------------------------------


def _freeze(value):
    """A hashable stand-in for ``value`` (repr fallback for exotica)."""
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _validator_key(validator: Validator) -> tuple:
    """The structural identity of one validator.

    Declarative validators key on their full config, so equal chains on
    different shards share one compiled plan.  Validators carrying live
    Python objects (consistency predicates) or unknown/stateful types
    key on the objects themselves — function and instance hashing is by
    identity, and keeping the object in the key pins it alive for as
    long as the cached plan could serve it.
    """
    kind = type(validator)
    if kind is CompletenessValidator:
        return ("completeness", validator.name, validator.required_fields)
    if kind is PrecisionValidator:
        return (
            "precision",
            validator.name,
            tuple((f, _freeze(lo), _freeze(up))
                  for f, (lo, up) in validator.bounds.items()),
        )
    if kind is FormatValidator:
        return (
            "format",
            validator.name,
            tuple((f, p.pattern) for f, p in validator.patterns.items()),
            validator.allow_missing,
        )
    if kind is EnumValidator:
        return (
            "enum",
            validator.name,
            tuple((f, tuple(_freeze(v) for v in vals))
                  for f, vals in validator.allowed.items()),
            validator.allow_missing,
        )
    if kind is ConsistencyValidator:
        return (
            "consistency",
            validator.name,
            tuple((desc, pred) for desc, pred in validator.rules),
        )
    if kind is OclConsistencyValidator:
        return (
            "ocl-consistency",
            validator.name,
            tuple(text for text, _ in validator.rules),
        )
    if kind is CurrentnessValidator:
        return (
            "currentness", validator.name,
            validator.age_field, _freeze(validator.max_age),
        )
    if kind is CredibilityValidator:
        return (
            "credibility", validator.name,
            validator.source_field, validator.trusted_sources,
        )
    # stateful or user-defined: identity IS the spec
    return ("opaque", validator.name, validator)


def chain_signature(
    validators: Sequence[Validator],
    metadata_attributes: Sequence[str] = (),
    bound_fields: Optional[Sequence[str]] = None,
) -> tuple:
    """The cache key of one chain + stamping spec + bound-record layout.

    ``bound_fields`` is the form's field tuple: plans compiled with a
    layout carry a fast path specialised to records produced by
    ``Form.bind`` (exact keys, in order), so it is part of the key.
    """
    return (
        tuple(_validator_key(v) for v in validators),
        tuple(metadata_attributes),
        None if bound_fields is None else tuple(bound_fields),
    )


def signature_digest(signature: tuple) -> str:
    """A short stable hex digest of a signature (for display/metrics)."""
    return hashlib.sha1(repr(signature).encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# The compiler: validator chain -> generated source -> fused closures
# ---------------------------------------------------------------------------

_CRASH_MESSAGE = (
    '"validator crashed (" + type(_exc).__name__ + ": " + str(_exc) + '
    '"); rejecting the write fail-closed"'
)


class _Emitter:
    """Tiny indented-source builder for the generated module."""

    def __init__(self):
        self.lines: list[str] = []
        self._depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self._depth) + line if line else "")

    class _Block:
        def __init__(self, emitter):
            self.emitter = emitter

        def __enter__(self):
            self.emitter._depth += 1

        def __exit__(self, *exc):
            self.emitter._depth -= 1

    def block(self, header: str) -> "_Emitter._Block":
        self.emit(header)
        return _Emitter._Block(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _PlanBuilder:
    """Accumulates constants and per-validator code fragments."""

    def __init__(self, validators: Sequence[Validator]):
        self.validators = list(validators)
        self.constants: dict[str, object] = {}
        self.fields: dict[str, str] = {}  # field name -> local var
        self._fragments: Optional[list[tuple[list[str], bool]]] = None

    def fragments(self) -> list[tuple[list[str], bool]]:
        """One ``(lines, can_crash)`` fragment per validator, memoized so
        the findings/admit/batch bodies share one set of constants."""
        if self._fragments is None:
            self._fragments = [self.fragment(v) for v in self.validators]
        return self._fragments

    def const(self, value) -> str:
        name = f"_c{len(self.constants)}"
        self.constants[name] = value
        return name

    def var(self, field: str) -> str:
        var = self.fields.get(field)
        if var is None:
            var = f"_f{len(self.fields)}"
            self.fields[field] = var
        return var

    # -- per-validator fragments ----------------------------------------
    #
    # Each fragment is a list of source lines (unindented) that appends
    # findings to ``fs`` via ``app`` in EXACTLY the order and with
    # EXACTLY the messages the legacy ``check`` produces.  ``record`` is
    # in scope for whole-record validators.

    def _missing_test(self, var: str) -> str:
        # repro.dq.metrics._is_missing, inlined.  ``not v or v.isspace()``
        # is ``not v.strip()`` without allocating the stripped copy.
        return (
            f"{var} is None or (isinstance({var}, str) "
            f"and (not {var} or {var}.isspace()))"
        )

    def _missing_condexpr(self, var: str) -> str:
        """The missing test with an exact-``str`` fast lane (scan path)."""
        return (
            f"((not {var} or {var}.isspace()) if {var}.__class__ is str "
            f"else ({var} is None or (isinstance({var}, str) "
            f"and (not {var} or {var}.isspace()))))"
        )

    # -- scan terms -----------------------------------------------------
    #
    # The scan is a single or-expression over cheap per-field "defect"
    # tests.  A term may over-approximate (flag a record the validator
    # would pass — e.g. a float score takes the slow lane) but must
    # NEVER under-approximate: scan-clean has to imply the legacy chain
    # returns no findings.  Anything the scan flags (or any exception it
    # raises) falls back to the exact fused slow body.

    def scan_terms(self, validator: Validator) -> Optional[list[tuple]]:
        """``[(kind, field, expr), ...]`` or ``None`` if not scannable.

        Stateful validators (uniqueness, user subclasses) and opaque
        consistency predicates are not scannable: the scan may run a
        record that the slow path then re-runs, so every term must be
        side-effect free and pure.
        """
        kind = type(validator)
        if kind is CompletenessValidator:
            return [
                ("missing", f, self._missing_condexpr(self.var(f)))
                for f in validator.required_fields
            ]
        if kind is PrecisionValidator:
            terms = []
            for field, (lower, upper) in validator.bounds.items():
                var = self.var(field)
                lo, up = self.const(lower), self.const(upper)
                terms.append((
                    "bounds", field,
                    f"not (({var}.__class__ is int or "
                    f"{var}.__class__ is float) and {lo} <= {var} <= {up})",
                ))
            return terms
        if kind is FormatValidator:
            terms = []
            for field, pattern in validator.patterns.items():
                var = self.var(field)
                compiled = self.const(pattern)
                present = (
                    f"({var}.__class__ is str and {var} "
                    f"and not {var}.isspace())"
                )
                test = (
                    f"({compiled}.fullmatch({var}) is None "
                    f"if {present} else True)"
                )
                if validator.allow_missing:
                    test = f"({var} is not None and {test})"
                terms.append(("format", field, test))
            return terms
        if kind is EnumValidator:
            terms = []
            for field, values in validator.allowed.items():
                var = self.var(field)
                allowed = self.const(values)
                missing = self._missing_condexpr(var)
                if validator.allow_missing:
                    test = f"(not {missing} and {var} not in {allowed})"
                else:
                    test = f"({missing} or {var} not in {allowed})"
                terms.append(("enum", field, test))
            return terms
        if kind is CurrentnessValidator:
            var = self.var(validator.age_field)
            max_age = self.const(validator.max_age)
            return [(
                "currentness", validator.age_field,
                # bools are (int,) to the legacy check; they take the
                # slow lane here, which answers identically
                f"not (({var}.__class__ is int or "
                f"{var}.__class__ is float) and {var} <= {max_age})",
            )]
        if kind is CredibilityValidator:
            var = self.var(validator.source_field)
            trusted = self.const(validator.trusted_sources)
            return [(
                "credibility", validator.source_field,
                f"{var} not in {trusted}",
            )]
        if kind is OclConsistencyValidator:
            # rules are declarative text -> pure; reuse the validator
            return [("ocl", "", f"bool({self.const(validator)}.check(record))")]
        return None

    def scan_exprs(self) -> Optional[list[str]]:
        """The fused defect-scan terms for the whole chain, or ``None``.

        Terms are deduplicated and a plain missing test is dropped when
        a bounds test guards the same field — bounds-clean (an exact
        int/float inside the interval) already proves the field present.
        """
        collected: list[tuple] = []
        for validator in self.validators:
            terms = self.scan_terms(validator)
            if terms is None:
                return None
            collected.extend(terms)
        bounded = {f for kind, f, _ in collected if kind == "bounds"}
        exprs: list[str] = []
        seen: set[str] = set()
        for kind, field, expr in collected:
            if kind == "missing" and field in bounded:
                continue
            if expr not in seen:
                seen.add(expr)
                exprs.append(expr)
        return exprs

    def fragment(self, validator: Validator) -> tuple[list[str], bool]:
        """(lines, can_crash) for one validator.

        ``can_crash`` selects the fail-closed ``validator-error`` wrap;
        completeness checks are provably exception-free (constant
        messages, no user ``__repr__``/``__eq__`` calls) and skip it.
        """
        kind = type(validator)
        if kind is CompletenessValidator:
            lines = []
            for field in validator.required_fields:
                var = self.var(field)
                finding = self.const(Finding(
                    validator.code, field, "required field is missing or blank"
                ))
                lines.append(f"if {self._missing_test(var)}:")
                lines.append(f"    app({finding})")
            return lines, False
        if kind is PrecisionValidator:
            lines = []
            for field, (lower, upper) in validator.bounds.items():
                var = self.var(field)
                lo, up = self.const(lower), self.const(upper)
                suffix = self.const(f" outside [{lower}, {upper}]")
                lines.append(
                    f"if {self._missing_test(var)} or "
                    f"not isinstance({var}, (int, float)) or "
                    f"isinstance({var}, bool) or "
                    f"not ({lo} <= {var} <= {up}):"
                )
                lines.append(
                    f"    app(Finding({validator.code!r}, {field!r}, "
                    f"'value %r' % ({var},) + {suffix}))"
                )
            return lines, True
        if kind is FormatValidator:
            lines = []
            for field, pattern in validator.patterns.items():
                var = self.var(field)
                compiled = self.const(pattern)
                suffix = self.const(f" does not match {pattern.pattern!r}")
                lines.append(f"if {self._missing_test(var)}:")
                if validator.allow_missing:
                    lines.append("    pass")
                else:
                    missing = self.const(
                        Finding(validator.code, field, "value is missing")
                    )
                    lines.append(f"    app({missing})")
                lines.append(
                    f"elif not isinstance({var}, str) "
                    f"or {compiled}.fullmatch({var}) is None:"
                )
                lines.append(
                    f"    app(Finding({validator.code!r}, {field!r}, "
                    f"'value %r' % ({var},) + {suffix}))"
                )
            return lines, True
        if kind is EnumValidator:
            lines = []
            for field, values in validator.allowed.items():
                var = self.var(field)
                allowed = self.const(values)
                suffix = self.const(f" not in {list(values)!r}")
                lines.append(f"if {self._missing_test(var)}:")
                if validator.allow_missing:
                    lines.append("    pass")
                else:
                    missing = self.const(
                        Finding(validator.code, field, "value is missing")
                    )
                    lines.append(f"    app({missing})")
                lines.append(f"elif {var} not in {allowed}:")
                lines.append(
                    f"    app(Finding({validator.code!r}, {field!r}, "
                    f"'value %r' % ({var},) + {suffix}))"
                )
            return lines, True
        if kind is ConsistencyValidator:
            rules = self.const(tuple(validator.rules))
            return [
                f"for _desc, _pred in {rules}:",
                "    try:",
                "        _ok = _pred(record)",
                "    except Exception:",
                "        _ok = False",
                "    if not _ok:",
                f"        app(Finding({validator.code!r}, '<record>', _desc))",
            ], True
        if kind is OclConsistencyValidator:
            rules = self.const(tuple(validator.rules))
            return [
                "_ctx = dict(record)",
                f"for _text, _expr in {rules}:",
                "    try:",
                "        _ok = _expr.evaluate(_ctx) is True",
                "    except OclError:",
                "        _ok = False",
                "    if not _ok:",
                f"        app(Finding({validator.code!r}, '<record>', _text))",
            ], True
        if kind is CurrentnessValidator:
            var = self.var(validator.age_field)
            max_age = self.const(validator.max_age)
            suffix = self.const(f" exceeds maximum {validator.max_age}")
            return [
                f"if {var} is None or not isinstance({var}, (int, float)) "
                f"or {var} > {max_age}:",
                f"    app(Finding({validator.code!r}, "
                f"{validator.age_field!r}, "
                f"'age %r' % ({var},) + {suffix}))",
            ], True
        if kind is CredibilityValidator:
            var = self.var(validator.source_field)
            trusted = self.const(validator.trusted_sources)
            return [
                f"if {var} not in {trusted}:",
                f"    app(Finding({validator.code!r}, "
                f"{validator.source_field!r}, "
                f"'source %r' % ({var},) + ' is not trusted'))",
            ], True
        # opaque: run the validator object exactly as the legacy chain
        opaque = self.const(validator)
        return [f"fs.extend({opaque}.check(record))"], True


# ---------------------------------------------------------------------------
# Columnar checks: per-field whole-column clean tests + per-value defect
# tests, mirroring the scan terms exactly
# ---------------------------------------------------------------------------
#
# ``check_columns`` is the column-sliced fast body: instead of running
# the fused or-expression per record, each scan term becomes a pair of
# closures — ``clean(column, kinds, stat)`` decides in a handful of
# C-level passes (type-set, ``min``/``max``, ``in``, ``all(map(...))``)
# whether an entire column can possibly contain a defect, and
# ``defect(value)`` replicates the row scan term for the dirty columns,
# building a defect row bitmap.  When the caller owns the columns (the
# EntityStore's spine) it passes the store's write-time **zone maps**
# (:class:`repro.runtime.storage.ColumnStats`) as ``stat``: a sticky
# superset of everything ever written to the column, which usually
# answers ``clean`` in O(1) — no missing value ever arrived, or the
# running min/max already sit inside the bounds — without touching a
# single cell.  Zone maps only ever widen, so a zone answer of "clean"
# is sound and a stale-wide zone merely demotes to the real column
# pass.  The soundness contract is the same as the row scan's:
# ``clean`` may never answer True for a column any scan term would flag
# (under-approximation forbidden), ``defect`` must flag exactly the
# values the scan term flags (over-flagging is harmless — the exact
# fused slow body re-answers flagged rows and returns ``[]`` for the
# clean ones), and any exception anywhere demotes to the slow body.

_NONE_TYPE = type(None)
_NUMERIC_KINDS = frozenset((int, float))


def _is_missing_value(value) -> bool:
    """The scan's missing test (``_missing_condexpr``), as a function."""
    if value.__class__ is str:
        return not value or value.isspace()
    return value is None or (
        isinstance(value, str) and (not value or value.isspace())
    )


def _missing_clean(column, kinds, stat=None) -> bool:
    if stat is not None and not stat.missing:
        return True  # zone map: no missing value was ever written
    if kinds == {str}:
        return "" not in column and not any(map(str.isspace, column))
    for kind in kinds:
        if kind is _NONE_TYPE or issubclass(kind, str):
            return False
    return True


def _column_nan(column) -> bool:
    """Any NaN in an all-int/float column?  ``sum`` propagates NaN and
    never raises over real numbers, so this is one C pass."""
    return math.isnan(sum(column))


def _range_checks(lower, upper):
    def clean(column, kinds, stat=None):
        if not kinds <= _NUMERIC_KINDS:
            return False
        if stat is not None:
            # zone map: every numeric ever written sits inside the
            # running [zmin, zmax] envelope, and NaN arrival is sticky
            if (
                not stat.nan
                and stat.zmin is not None
                and lower <= stat.zmin
                and stat.zmax <= upper
            ):
                return True
        if float in kinds and _column_nan(column):
            return False
        return lower <= min(column) and max(column) <= upper

    def defect(value):
        cls = value.__class__
        return not (
            (cls is int or cls is float) and lower <= value <= upper
        )

    return clean, defect


def _currentness_checks(max_age):
    def clean(column, kinds, stat=None):
        if not kinds <= _NUMERIC_KINDS:
            return False
        if stat is not None:
            if (
                not stat.nan
                and stat.zmax is not None
                and stat.zmax <= max_age
            ):
                return True
        if float in kinds and _column_nan(column):
            return False
        return max(column) <= max_age

    def defect(value):
        cls = value.__class__
        return not ((cls is int or cls is float) and value <= max_age)

    return clean, defect


def _format_checks(pattern, allow_missing):
    fullmatch = pattern.fullmatch

    def clean(column, kinds, stat=None):
        if kinds != {str}:
            return False
        if "" in column or any(map(str.isspace, column)):
            return False
        return all(map(fullmatch, column))

    def defect(value):
        present = (
            value.__class__ is str and value and not value.isspace()
        )
        flagged = (fullmatch(value) is None) if present else True
        if allow_missing:
            return value is not None and flagged
        return flagged

    return clean, defect


def _members_clean(values) -> frozenset:
    """The hashable, non-missing members of an allowed/trusted table —
    the only values a whole-column set containment may accept."""
    members = set()
    for value in values:
        try:
            hash(value)
        except TypeError:
            continue
        if not _is_missing_value(value):
            members.add(value)
    return frozenset(members)


def _enum_checks(allowed, allow_missing):
    if allow_missing:
        acceptable = frozenset(_members_clean(allowed) | {None, ""})
    else:
        acceptable = _members_clean(allowed)

    def clean(column, kinds, stat=None):
        return set(column) <= acceptable

    def defect(value):
        if allow_missing:
            return not _is_missing_value(value) and value not in allowed
        return _is_missing_value(value) or value not in allowed

    return clean, defect


def _credibility_checks(trusted):
    members = set()
    for value in trusted:
        try:
            hash(value)
        except TypeError:
            continue
        members.add(value)
    acceptable = frozenset(members)

    def clean(column, kinds, stat=None):
        return set(column) <= acceptable

    def defect(value):
        return value not in trusted

    return clean, defect


def _column_specs(validators) -> Optional[list[tuple]]:
    """``[(field, clean, defect, vbounds), ...]`` for a chain, or
    ``None`` when any validator contributes a non-field-local term (OCL
    consistency reads the whole record) or is not scannable at all.
    ``vbounds`` is the ``(lower, upper)`` window for the terms whose
    defect test is exactly a numeric range (bounds, currentness —
    ``None`` for an open side), which the check body can hand to the
    typed-buffer kernels; ``None`` for every other term.  Mirrors
    :meth:`_PlanBuilder.scan_exprs`'s missing-dropped-when-bounded
    shortcut (a missing value fails the bounds class test anyway, so
    the defect set is unchanged)."""
    collected: list[tuple] = []
    for validator in validators:
        kind = type(validator)
        if kind is CompletenessValidator:
            for field in validator.required_fields:
                collected.append(
                    ("missing", field, _missing_clean, _is_missing_value,
                     None)
                )
        elif kind is PrecisionValidator:
            for field, (lower, upper) in validator.bounds.items():
                clean, defect = _range_checks(lower, upper)
                collected.append(
                    ("bounds", field, clean, defect, (lower, upper))
                )
        elif kind is FormatValidator:
            for field, pattern in validator.patterns.items():
                clean, defect = _format_checks(
                    pattern, validator.allow_missing
                )
                collected.append(("format", field, clean, defect, None))
        elif kind is EnumValidator:
            for field, values in validator.allowed.items():
                clean, defect = _enum_checks(
                    values, validator.allow_missing
                )
                collected.append(("enum", field, clean, defect, None))
        elif kind is CurrentnessValidator:
            clean, defect = _currentness_checks(validator.max_age)
            collected.append(
                ("currentness", validator.age_field, clean, defect,
                 (None, validator.max_age))
            )
        elif kind is CredibilityValidator:
            clean, defect = _credibility_checks(validator.trusted_sources)
            collected.append(
                ("credibility", validator.source_field, clean, defect,
                 None)
            )
        else:
            return None
    bounded = {f for kind, f, _, _, _ in collected if kind == "bounds"}
    return [
        (field, clean, defect, vbounds)
        for kind, field, clean, defect, vbounds in collected
        if not (kind == "missing" and field in bounded)
    ]


def _build_check_columns(layout, specs, findings_slow):
    """The ``check_columns(columns, count)`` closure for one plan, or
    ``None`` when a term reads a field outside the bound layout (the
    row path resolves it to ``None`` via ``record.get``; columns cannot).
    """
    positions = {name: index for index, name in enumerate(layout)}
    try:
        checks = tuple(
            (positions[field], clean, defect, vbounds)
            for field, clean, defect, vbounds in specs
        )
    except KeyError:
        return None
    position_items = tuple(positions.items())

    def check_columns(columns, count, stats=None, buffers=None):
        defects = None
        kinds_cache: dict = {}
        for position, clean, defect, vbounds in checks:
            column = columns[position]
            if stats is not None:
                stat = stats[position]
                kinds = stat.kinds
            else:
                stat = None
                kinds = kinds_cache.get(position)
                if kinds is None:
                    kinds = set(map(type, column))
                    kinds_cache[position] = kinds
            try:
                if clean(column, kinds, stat):
                    continue
            except Exception:
                pass
            if vbounds is not None and buffers is not None:
                # Typed lane: the column is a promoted int64/float64
                # buffer and the term is a pure numeric range, so the
                # defect bitmap is one vectorized compare.  On a typed
                # column the row term reduces to the range test (every
                # cell is a real int/float), and the kernel's bound
                # translation is exact — any case it cannot answer
                # exactly returns None and the scalar loop below runs.
                typed = buffers[position]
                if typed is not None and len(typed) == count:
                    try:
                        slots = range_defect_slots(
                            typed, vbounds[0], vbounds[1]
                        )
                    except Exception:
                        slots = None
                    if slots is not None:
                        if slots:
                            if defects is None:
                                defects = set()
                            defects.update(slots)
                        continue
            if defects is None:
                defects = set()
            flag = defects.add
            for index, value in enumerate(column):
                try:
                    if defect(value):
                        flag(index)
                except Exception:
                    flag(index)
        if not defects:
            return [[] for _ in range(count)]
        out = []
        for index in range(count):
            if index in defects:
                record = {
                    name: columns[position][index]
                    for name, position in position_items
                }
                out.append(findings_slow(record))
            else:
                out.append([])
        return out

    return check_columns


def _emit_findings_body(emitter: _Emitter, builder: _PlanBuilder) -> None:
    """The shared per-record body: prefetch fields, run every validator.

    Assumes ``record``, ``fs`` and ``app`` (``fs.append``) are bound.
    Emitted once for :func:`findings` and once inside the batch loop so
    the batch path pays no per-record Python function call at all.
    """
    fragments = builder.fragments()
    emitter.emit("get = record.get")
    for field, var in builder.fields.items():
        emitter.emit(f"{var} = get({field!r})")
    for validator, (lines, can_crash) in zip(builder.validators, fragments):
        if not can_crash:
            for line in lines:
                emitter.emit(line)
            continue
        emitter.emit("_n = len(fs)")
        with emitter.block("try:"):
            for line in lines:
                emitter.emit(line)
        with emitter.block("except Exception as _exc:"):
            emitter.emit("del fs[_n:]")
            emitter.emit(
                f"app(Finding('validator-error', {validator.name!r}, "
                f"{_CRASH_MESSAGE}))"
            )


def _emit_admit_body(emitter: _Emitter, builder: _PlanBuilder) -> None:
    """The fail-fast boolean body: first defect -> ``return False``.

    Any exception anywhere rejects fail-closed, exactly like the full
    path (a crashing validator yields a ``validator-error`` finding
    there, so ``admit`` must answer False for it too).  Short-circuits
    at validator granularity: the first validator with a finding ends
    the check.
    """
    with emitter.block("try:"):
        emitter.emit("get = record.get")
        for field, var in builder.fields.items():
            emitter.emit(f"{var} = get({field!r})")
        emitter.emit("fs = []")
        emitter.emit("app = fs.append")
        for lines, _ in builder.fragments():
            for line in lines:
                emitter.emit(line)
            emitter.emit("if fs:")
            emitter.emit("    return False")
    with emitter.block("except Exception:"):
        emitter.emit("return False")
    emitter.emit("return True")


class CompiledPlan:
    """One fused, cached checker for a validator chain.

    ``findings(record)`` is drop-in for the legacy
    :meth:`~repro.runtime.forms.Form.validate`; ``admit(record)`` is
    the fail-fast boolean; ``check_batch(records)`` returns one
    findings list per record with the loop fused into generated code.
    """

    __slots__ = (
        "signature", "digest", "source", "validator_count",
        "metadata_attributes", "fields", "bound_fields", "fast_scan",
        "findings", "admit", "check_batch", "check_columns",
    )

    def __init__(
        self,
        signature: tuple,
        source: str,
        namespace: dict,
        validator_count: int,
        metadata_attributes: tuple,
        fields: tuple,
        bound_fields: Optional[tuple],
        fast_scan: bool,
        check_columns=None,
    ):
        self.signature = signature
        self.digest = signature_digest(signature)
        self.source = source
        self.validator_count = validator_count
        self.metadata_attributes = metadata_attributes
        self.fields = fields
        self.bound_fields = bound_fields
        self.fast_scan = fast_scan
        self.findings = namespace["findings"]
        self.admit = namespace["admit"]
        self.check_batch = namespace["check_batch"]
        #: ``check_columns(columns, count)`` — the column-sliced fast
        #: body for prebound batches transposed to layout order; ``None``
        #: when the chain has non-field-local terms or no bound layout.
        self.check_columns = check_columns

    def run(self, records) -> list:
        """Concatenated findings over many records (suite-style)."""
        out: list[Finding] = []
        for per_record in self.check_batch(records):
            out.extend(per_record)
        return out

    def __repr__(self) -> str:
        return (
            f"<CompiledPlan {self.digest} "
            f"({self.validator_count} validator(s), "
            f"{len(self.fields)} field(s))>"
        )


def compile_plan(
    validators: Sequence[Validator],
    metadata_attributes: Sequence[str] = (),
    bound_fields: Optional[Sequence[str]] = None,
) -> CompiledPlan:
    """Fuse one validator chain (+ stamping spec) into a CompiledPlan.

    ``bound_fields`` — the owning form's field tuple — specialises the
    plan for records produced by :meth:`~repro.runtime.forms.Form.bind`:
    a record whose key tuple equals the layout is unpacked straight off
    ``record.values()`` (one C call) instead of per-field ``get`` calls,
    and ``check_batch(records, prebound=True)`` skips even the layout
    check (the caller just bound the records itself, so the layout is
    guaranteed by construction).

    When every validator in the chain is a known *pure* declarative
    type, the plan additionally carries a **fail-fast defect scan**: a
    single or-expression of cheap per-field tests that over-approximates
    "this record has a finding".  Scan-clean records return immediately;
    anything the scan flags — or any exception it raises — falls back to
    the exact fused slow body, which reproduces the legacy chain
    byte-for-byte (stateful/opaque validators never get a scan, so no
    validator observes a record twice).
    """
    from repro.core.errors import OclError

    builder = _PlanBuilder(validators)
    # resolve every referenced field (and every constant) up front so
    # the prefetch block is complete before any body is emitted
    builder.fragments()
    scan = builder.scan_exprs()

    # -- prefetch lines -------------------------------------------------
    fields = list(builder.fields.items())  # (field name, local var)
    field_vars = [var for _, var in fields]
    comma = "," if len(fields) == 1 else ""
    map_line = None
    if fields:
        fields_const = builder.const(tuple(f for f, _ in fields))
        map_line = (
            f"{', '.join(field_vars)}{comma} = "
            f"map(record.get, {fields_const})"
        )
    layout = tuple(bound_fields) if bound_fields else None
    unpack_line = None
    extra_vars: list[str] = []
    key_const = None
    if layout and fields:
        key_const = builder.const(layout)
        bound_set = set(layout)
        targets = [builder.fields.get(f, "_") for f in layout]
        tcomma = "," if len(targets) == 1 else ""
        unpack_line = f"{', '.join(targets)}{tcomma} = record.values()"
        extra_vars = [var for f, var in fields if f not in bound_set]

    def emit_prefetch(em: _Emitter, guarded: bool) -> None:
        if not fields:
            return
        if unpack_line and guarded:
            with em.block(f"if tuple(record) == {key_const}:"):
                em.emit(unpack_line)
                for var in extra_vars:
                    em.emit(f"{var} = None")
            with em.block("else:"):
                em.emit(map_line)
        elif unpack_line:
            em.emit(unpack_line)
            for var in extra_vars:
                em.emit(f"{var} = None")
        else:
            em.emit(map_line)

    def emit_scan_check(em: _Emitter, clean_lines: list[str]) -> None:
        em.emit("if not (")
        for i, term in enumerate(scan):
            em.emit(("    " if i == 0 else "    or ") + term)
        em.emit("):")
        for line in clean_lines:
            em.emit("    " + line)

    def emit_scan_loop(em: _Emitter, guarded: bool) -> None:
        with em.block("for record in records:"):
            with em.block("try:"):
                emit_prefetch(em, guarded)
                emit_scan_check(em, ["out_append([])", "continue"])
            with em.block("except Exception:"):
                em.emit("pass")
            em.emit("out_append(_findings_slow(record))")

    emitter = _Emitter()
    if scan is not None and not validators:
        # empty chain: the legacy walk finds nothing, always
        emitter.emit("def findings(record):")
        emitter.emit("    return []")
        emitter.emit()
        emitter.emit("def admit(record):")
        emitter.emit("    return True")
        emitter.emit()
        emitter.emit("def check_batch(records, prebound=False):")
        emitter.emit("    return [[] for _ in records]")
    elif scan is not None:
        with emitter.block("def _findings_slow(record):"):
            emitter.emit("fs = []")
            emitter.emit("app = fs.append")
            _emit_findings_body(emitter, builder)
            emitter.emit("return fs")
        emitter.emit()
        with emitter.block("def findings(record):"):
            with emitter.block("try:"):
                emit_prefetch(emitter, guarded=True)
                emit_scan_check(emitter, ["return []"])
            with emitter.block("except Exception:"):
                emitter.emit("pass")
            emitter.emit("return _findings_slow(record)")
        emitter.emit()
        with emitter.block("def _admit_slow(record):"):
            _emit_admit_body(emitter, builder)
        emitter.emit()
        with emitter.block("def admit(record):"):
            with emitter.block("try:"):
                emit_prefetch(emitter, guarded=True)
                emit_scan_check(emitter, ["return True"])
            with emitter.block("except Exception:"):
                emitter.emit("pass")
            emitter.emit("return _admit_slow(record)")
        emitter.emit()
        with emitter.block("def check_batch(records, prebound=False):"):
            emitter.emit("out = []")
            emitter.emit("out_append = out.append")
            if unpack_line:
                with emitter.block("if prebound:"):
                    emit_scan_loop(emitter, guarded=False)
                with emitter.block("else:"):
                    emit_scan_loop(emitter, guarded=True)
            else:
                emit_scan_loop(emitter, guarded=True)
            emitter.emit("return out")
    else:
        # chain with stateful/opaque validators: exact body only
        with emitter.block("def findings(record):"):
            emitter.emit("fs = []")
            emitter.emit("app = fs.append")
            _emit_findings_body(emitter, builder)
            emitter.emit("return fs")
        emitter.emit()
        with emitter.block("def admit(record):"):
            _emit_admit_body(emitter, builder)
        emitter.emit()
        with emitter.block("def check_batch(records, prebound=False):"):
            emitter.emit("out = []")
            emitter.emit("out_append = out.append")
            with emitter.block("for record in records:"):
                emitter.emit("fs = []")
                emitter.emit("app = fs.append")
                _emit_findings_body(emitter, builder)
                emitter.emit("out_append(fs)")
            emitter.emit("return out")

    source = emitter.source()
    namespace: dict = {
        "Finding": Finding,
        "OclError": OclError,
        "Exception": Exception,
        "isinstance": isinstance,
        "len": len,
        "dict": dict,
        "type": type,
        "str": str,
        "int": int,
        "float": float,
        "bool": bool,
        "map": map,
        "tuple": tuple,
        "__builtins__": {},
    }
    namespace.update(builder.constants)
    code = compile(source, f"<vpipeline:{len(validators)}>", "exec")
    exec(code, namespace)
    check_columns = None
    if scan is not None and layout:
        if not validators:
            def check_columns(columns, count, stats=None, buffers=None):
                return [[] for _ in range(count)]
        else:
            specs = _column_specs(validators)
            if specs is not None:
                check_columns = _build_check_columns(
                    layout, specs, namespace["_findings_slow"]
                )
    return CompiledPlan(
        signature=chain_signature(validators, metadata_attributes, bound_fields),
        source=source,
        namespace=namespace,
        validator_count=len(builder.validators),
        metadata_attributes=tuple(metadata_attributes),
        fields=tuple(builder.fields),
        bound_fields=layout,
        fast_scan=scan is not None and bool(validators),
        check_columns=check_columns,
    )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Thread-safe LRU of compiled plans keyed by chain signature.

    One cache is typically shared by every form of a ``WebApp`` — or by
    every *shard* of a gateway, since signatures are structural: four
    identical shards compile each chain exactly once.  Redefining a
    form changes its signature, so the stale plan simply stops being
    looked up; :meth:`invalidate` additionally drops it eagerly.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        self._plans: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def lookup(self, signature: tuple) -> Optional[CompiledPlan]:
        with self._lock:
            plan = self._plans.get(signature)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(signature)
            self.hits += 1
            return plan

    def get_or_compile(
        self,
        validators: Sequence[Validator],
        metadata_attributes: Sequence[str] = (),
        bound_fields: Optional[Sequence[str]] = None,
    ) -> CompiledPlan:
        """The cached plan for this chain, compiling on first sight."""
        signature = chain_signature(validators, metadata_attributes, bound_fields)
        plan = self.lookup(signature)
        if plan is not None:
            return plan
        # compile outside the lock: a racing duplicate compile is
        # harmless (both plans are behaviourally identical) and the
        # store below keeps exactly one
        plan = compile_plan(validators, metadata_attributes, bound_fields)
        with self._lock:
            existing = self._plans.get(signature)
            if existing is not None:
                return existing
            self._plans[signature] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def invalidate(self, signature: tuple) -> bool:
        with self._lock:
            if self._plans.pop(signature, None) is not None:
                self.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._plans)
            self._plans.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "plans": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }


# ---------------------------------------------------------------------------
# Validation stats (merged into the gateway metrics snapshot)
# ---------------------------------------------------------------------------


class ValidationStats:
    """Checks/time counters one ``WebApp`` keeps for its validation work.

    Increments are unlocked: every write path that validates runs under
    its shard's lock (or single-threaded), and a lost sample under an
    unconventional caller costs telemetry, never correctness.
    """

    __slots__ = ("checks", "batches", "seconds")

    def __init__(self):
        self.checks = 0
        self.batches = 0
        self.seconds = 0.0

    def observe(self, records: int, elapsed: float, batched: bool = False) -> None:
        self.checks += records
        if batched:
            self.batches += 1
        self.seconds += elapsed

    def as_dict(self) -> dict:
        return {
            "checks": self.checks,
            "batches": self.batches,
            "validation_us": round(self.seconds * 1e6, 1),
            "mean_us": round(
                (self.seconds / self.checks) * 1e6, 2
            ) if self.checks else 0.0,
        }

    @staticmethod
    def merge(stats_dicts, plan_caches=()) -> dict:
        """Aggregate per-shard stats + plan-cache counters into one dict."""
        merged = {"checks": 0, "batches": 0, "validation_us": 0.0}
        for stats in stats_dicts:
            merged["checks"] += stats["checks"]
            merged["batches"] += stats["batches"]
            merged["validation_us"] += stats["validation_us"]
        merged["validation_us"] = round(merged["validation_us"], 1)
        merged["mean_us"] = round(
            merged["validation_us"] / merged["checks"], 2
        ) if merged["checks"] else 0.0
        hits = misses = plans = 0
        seen: set[int] = set()
        for cache in plan_caches:
            if cache is None or id(cache) in seen:
                continue  # shards may share one cache; count it once
            seen.add(id(cache))
            stats = cache.stats()
            hits += stats["hits"]
            misses += stats["misses"]
            plans += stats["plans"]
        merged["plan_cache_hits"] = hits
        merged["plan_cache_misses"] = misses
        merged["plans_compiled"] = plans
        return merged

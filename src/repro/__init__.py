"""repro — a reproduction of *Capturing data quality requirements for web
applications by means of DQ_WebRE* (Guerra-García, Caballero & Piattini).

The library layers bottom-up:

* :mod:`repro.core` — a MOF-flavoured metamodeling kernel (metaclasses,
  model objects, OCL-lite constraints, XMI/JSON serialization, diff);
* :mod:`repro.uml` — a UML 2.x subset with a full profile mechanism;
* :mod:`repro.webre` — the WebRE web-requirements metamodel and profile;
* :mod:`repro.dq` — the data quality substrate (ISO/IEC 25012, dimensions,
  DQR/DQSR, metrics, runtime validators);
* :mod:`repro.dqwebre` — **the paper's contribution**: the extended
  metamodel (Fig. 1) and the DQ_WebRE UML profile (Table 3), with a fluent
  builder, well-formedness validation and DQR → DQSR derivation;
* :mod:`repro.transform` — the MDA pipeline: QVT-lite transformations,
  the design metamodel, templates and Python code generation;
* :mod:`repro.runtime` — a simulated DQ-aware web application substrate
  that *enforces* the captured requirements;
* :mod:`repro.diagrams` — PlantUML / Mermaid / ASCII renderers;
* :mod:`repro.casestudy` — the EasyChair case study (paper §4) and
  synthetic workloads;
* :mod:`repro.reports` — regenerates every table and figure of the paper.

Quickstart::

    from repro.dqwebre import DQWebREBuilder
    from repro.transform.req2design import transform
    from repro.runtime.dqengine import build_app

    builder = DQWebREBuilder("My app")
    # ... author users / contents / processes / DQ requirements ...
    design = transform(builder.model).primary
    app = build_app(design)
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "uml",
    "webre",
    "dq",
    "dqwebre",
    "transform",
    "runtime",
    "diagrams",
    "casestudy",
    "reports",
]

"""Typed column kernels: machine-scalar buffers behind the columnar spine.

The columnar :class:`~repro.runtime.storage.EntityStore` keeps one Python
list per layout field.  Lists of boxed PyObjects are already enough for
the C-level passes the zone maps and column checks lean on (``min``,
``max``, ``sum``, ``list.index``), but every pass still touches a
PyObject per cell.  This module promotes *homogeneous* numeric columns
to typed buffers so the hot kernels — zone-map refresh, bounds/defect
masks, equality scans, accumulator sums — run over machine scalars:

* ``array('q')`` for all-``int`` columns, ``array('d')`` for all-
  ``float`` columns — stdlib only, always available;
* zero-copy ``numpy`` views over those buffers (``np.frombuffer``) when
  numpy is importable, unlocking the vectorized lanes;
* **no new hard dependency**: without numpy every kernel returns
  ``None`` and the caller falls back to the exact list/row path, which
  remains the behavioural oracle either way.

Promotion rules (deliberately strict — exactness beats coverage):

* a column promotes only while its value census is *exactly* ``{int}``
  or *exactly* ``{float}``.  ``bool`` (an ``int`` subclass), ``None``,
  strings, int/float mixes and exotic types all keep the column as a
  plain list: a mixed int/float buffer would have to widen ints to
  ``float64`` and silently round past 2**53, and a ``bool`` stored as
  ``1`` would corrupt the type-exact defect predicates;
* an ``int`` outside int64 (``OverflowError`` on admission) demotes;
* demotion is sticky until the spine is compacted, which rebuilds the
  mirrors from the live cells and re-attempts promotion.

Buffers are **derived, never authoritative**: the row dicts (and the
list columns mirroring them) remain the source of truth, which is why
WAL replay, replication and recovery state stay byte-identical — no
typed buffer is ever serialized, compared, or consulted by a path that
produces durable state.

Gating: set ``REPRO_NO_NUMPY=1`` to force the pure-stdlib fallback even
with numpy installed (tier-1 runs the suite in both modes).  Tests can
flip the vector lanes in-process with :func:`forced_mode`.
"""

from __future__ import annotations

import math
import os
from array import array
from collections import Counter
from contextlib import contextmanager
from typing import Optional, Sequence

#: Environment flag forcing the pure-stdlib fallback (read at import).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Chunks shorter than this skip the numpy census lane — the ndarray
#: round trip costs more than the boxed loop saves on tiny inputs.
MIN_VECTOR_CHUNK = 16

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Every float partial sum over integers stays exactly representable
#: while its magnitude is bounded by this (see ``int_column_summary``).
EXACT_FLOAT_INT = 2 ** 53


def _load_numpy():
    if os.environ.get(NO_NUMPY_ENV, "") not in ("", "0"):
        return None
    try:
        import numpy
    except Exception:  # pragma: no cover - numpy is part of the image
        return None
    return numpy


_numpy = _load_numpy()
_active = _numpy


def kernel_mode() -> str:
    """``"numpy"`` when the vector lanes are live, ``"array"`` otherwise."""
    return "numpy" if _active is not None else "array"


def numpy_active() -> bool:
    return _active is not None


def numpy_module():
    """The live numpy module when the vector lanes are active, ``None``
    otherwise — for callers (the interchange codec's zero-copy
    ``np.frombuffer`` lane) that need more than a boolean."""
    return _active


@contextmanager
def forced_mode(use_numpy: bool):
    """Test hook: pin the vector lanes on or off for the duration.

    ``forced_mode(False)`` exercises the stdlib fallback in-process;
    ``forced_mode(True)`` is a no-op when numpy was never imported
    (``REPRO_NO_NUMPY`` or genuinely absent) — the fallback stays.
    """
    global _active
    previous = _active
    _active = _numpy if use_numpy else None
    try:
        yield
    finally:
        _active = previous


class TypedColumn:
    """A machine-scalar mirror of one list column.

    ``typecode`` is ``'q'`` (int64) or ``'d'`` (float64); ``buf`` is the
    stdlib ``array`` holding one cell per spine slot, fillers at
    tombstoned slots (the row-id array is the liveness oracle, so a
    filler can never surface through a scan).  The numpy view is
    created per operation (`np.frombuffer` is zero-copy) and never
    cached — ``array`` reallocates on growth.
    """

    __slots__ = ("typecode", "buf")

    def __init__(self, typecode: str, values: Sequence = ()):
        self.typecode = typecode
        buf = array(typecode)
        if values:
            buf.extend(values)
        self.buf = buf

    def __len__(self) -> int:
        return len(self.buf)

    def extend(self, values: Sequence) -> None:
        self.buf.extend(values)

    def pad(self, count: int) -> None:
        """Append ``count`` fillers (an all-tombstone tail)."""
        filler = 0 if self.typecode == "q" else 0.0
        self.buf.extend([filler] * count)

    @property
    def filler(self):
        return 0 if self.typecode == "q" else 0.0

    @property
    def mode(self) -> str:
        return "numpy" if _active is not None else "array"

    def view(self):
        """A zero-copy numpy view of the buffer, or ``None`` in
        fallback mode."""
        np = _active
        if np is None:
            return None
        dtype = np.int64 if self.typecode == "q" else np.float64
        return np.frombuffer(self.buf, dtype=dtype)


def promote_column(column: Sequence, ids: Sequence) -> Optional[TypedColumn]:
    """A typed buffer for a full column, or ``None`` when it cannot
    promote.  ``ids[slot] is None`` marks a tombstone; its cell gets a
    filler so the buffer stays slot-aligned with the list column."""
    live = [
        value for value, record_id in zip(column, ids)
        if record_id is not None
    ]
    census = set(map(type, live))
    if census == {int}:
        code, filler = "q", 0
    elif census == {float}:
        code, filler = "d", 0.0
    else:
        return None
    if len(live) == len(column):
        values = column
    else:
        values = [
            value if record_id is not None else filler
            for value, record_id in zip(column, ids)
        ]
    try:
        return TypedColumn(code, values)
    except (TypeError, OverflowError):
        return None  # e.g. an int outside int64


def extend_typed(typed: TypedColumn, census: set, values: Sequence) -> bool:
    """Extend a promoted column with a chunk; ``False`` means the chunk
    no longer fits the buffer's type (caller demotes — a partial extend
    is harmless, the buffer is dropped)."""
    code = typed.typecode
    if (code == "q" and census == {int}) or (
        code == "d" and census == {float}
    ):
        try:
            typed.extend(values)
            return True
        except (TypeError, OverflowError):
            pass
    return False


def set_typed(typed: TypedColumn, slot: int, value) -> bool:
    """Overwrite one cell in place; ``False`` = demote (type changed)."""
    if typed.typecode == "q":
        if type(value) is not int:
            return False
    elif type(value) is not float:
        return False
    try:
        typed.buf[slot] = value
    except (TypeError, OverflowError):
        return False
    return True


# ---------------------------------------------------------------------------
# Range kernels: exact vectorized `lower <= value <= upper` masks
# ---------------------------------------------------------------------------
#
# Exactness is the whole game: the per-value Python predicate compares
# int-to-float *exactly* (CPython's rich comparison), while numpy
# silently widens int64 to float64.  The lanes below therefore (a)
# translate real bounds to equivalent *integer* bounds for int columns
# (``lower <= v`` iff ``ceil(lower) <= v`` over ints — exact for any
# real bound) and (b) refuse float-column comparisons against bounds
# that do not convert to float64 exactly, falling back to the oracle.

_ALL = object()  # sentinel: every slot violates (NaN/overflowing bound)


def _int_bound(value, ceil: bool):
    """The equivalent integer bound for comparisons over an all-int
    column, saturating past int64 (the caller clamps)."""
    try:
        return math.ceil(value) if ceil else math.floor(value)
    except (OverflowError, ValueError):  # ±inf
        return (_INT64_MAX + 1) if value > 0 else (_INT64_MIN - 1)


def _float_bound(value) -> Optional[float]:
    """``value`` as an *exactly equal* float64, or ``None``."""
    if type(value) is float:
        return value
    try:
        converted = float(value)
    except (OverflowError, TypeError, ValueError):
        return None
    return converted if converted == value else None


def _range_mask(typed: TypedColumn, lower, upper):
    """A violation mask over the buffer (a numpy bool array), ``None``
    when no vector lane can answer exactly, or ``_ALL`` when no value
    can satisfy the bounds (NaN or overflowing bound)."""
    view = typed.view()
    if view is None:
        return None
    if (lower is not None and lower != lower) or (
        upper is not None and upper != upper
    ):
        return _ALL  # a NaN bound satisfies no comparison
    if typed.typecode == "q":
        lo = _INT64_MIN if lower is None else _int_bound(lower, ceil=True)
        hi = _INT64_MAX if upper is None else _int_bound(upper, ceil=False)
        if lo > _INT64_MAX or hi < _INT64_MIN:
            return _ALL
        return (view < max(lo, _INT64_MIN)) | (view > min(hi, _INT64_MAX))
    lo = -math.inf if lower is None else _float_bound(lower)
    hi = math.inf if upper is None else _float_bound(upper)
    if lo is None or hi is None:
        return None  # inexactly representable bound: the oracle decides
    return ~((view >= lo) & (view <= hi))  # NaN cells violate, exactly


def range_defect_slots(typed: TypedColumn, lower, upper):
    """Slots violating ``lower <= value <= upper`` (NaN violates; pass
    ``None`` for an unbounded side), or ``None`` = no vector lane."""
    mask = _range_mask(typed, lower, upper)
    if mask is None:
        return None
    if mask is _ALL:
        return range(len(typed))
    return _active.nonzero(mask)[0].tolist()


def range_all_within(typed: TypedColumn, lower, upper) -> Optional[bool]:
    """Whole-column ``lower <= value <= upper``, or ``None`` (no lane)."""
    mask = _range_mask(typed, lower, upper)
    if mask is None:
        return None
    if mask is _ALL:
        return len(typed) == 0
    return not bool(mask.any())


def equal_slots(typed: TypedColumn, value) -> Optional[list]:
    """Slots whose cell ``== value`` (dict-scan semantics, exactly), or
    ``None`` when only the list scan can answer.

    Only exact ``int``/``float``/``bool`` probes take the lane — any
    other type may carry arbitrary ``__eq__`` against numbers (Fraction,
    Decimal, user objects), which the oracle must answer.
    """
    view = typed.view()
    if view is None:
        return None
    kind = type(value)
    if kind is bool:
        value = int(value)
        kind = int
    if kind is int:
        if typed.typecode == "q":
            if not _INT64_MIN <= value <= _INT64_MAX:
                return []  # every stored cell fits int64
            probe = value
        else:
            probe = _float_bound(value)
            if probe is None:
                return None  # int probe with no exact float64 twin
    elif kind is float:
        if value != value:
            return []  # NaN == anything is False, both paths agree
        if typed.typecode == "q":
            if not (
                value.is_integer()
                and _INT64_MIN <= value <= _INT64_MAX
            ):
                return []
            probe = int(value)
        else:
            probe = value
    else:
        return None
    return _active.nonzero(view == probe)[0].tolist()


# ---------------------------------------------------------------------------
# Telemetry kernel: one-pass census of an all-int chunk
# ---------------------------------------------------------------------------


def int_column_summary(values: Sequence):
    """A one-pass census of an all-``int`` chunk for the streaming
    accumulator: ``(lowest, highest, magnitude, total, sumsq, pairs)``.

    ``total``/``sumsq`` are exact Python ints, or ``None`` when the
    int64 reduction could wrap (the caller recomputes with bignum
    arithmetic); ``pairs`` is the ``(value, count)`` distinct table in
    sorted-value order (dict equality is order-free, and the one
    order-sensitive event — a mid-chunk spill — replays the per-value
    oracle anyway).  Returns ``None`` when no lane applies: a short
    chunk, or a wide-support chunk in fallback mode.

    Two lanes, picked by the support of the distinct table:

    * **narrow support** (scores, flags, enums — at most ``count / 8``
      distinct values): one C ``Counter`` pass, then exact bignum math
      over the handful of ``(value, count)`` pairs.  No numpy round
      trip (ndarray call overhead dominates sub-µs reductions at this
      shape) and no int64 restriction, so it also serves fallback mode;
    * **wide support**: vectorized int64 reductions over the ndarray
      (per-element Python math would cost more than the boxing saves).
    """
    count = len(values)
    if count < MIN_VECTOR_CHUNK:
        return None
    tally = Counter(values)
    if len(tally) * 8 <= count:
        pairs = sorted(tally.items())
        lowest = pairs[0][0]
        highest = pairs[-1][0]
        return (
            lowest,
            highest,
            max(-lowest, highest, 1),
            sum(value * times for value, times in pairs),
            sum(value * value * times for value, times in pairs),
            pairs,
        )
    np = _active
    if np is None:
        return None
    try:
        arr = np.asarray(values, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return None
    lowest = int(arr.min())
    highest = int(arr.max())
    magnitude = max(-lowest, highest, 1)
    total = None
    if magnitude <= _INT64_MAX // (2 * count):
        total = int(arr.sum(dtype=np.int64))
    sumsq = None
    if magnitude * magnitude <= _INT64_MAX // (2 * count):
        sumsq = int(arr.dot(arr))
    uniques, counts = np.unique(arr, return_counts=True)
    pairs = list(zip(uniques.tolist(), counts.tolist()))
    return lowest, highest, magnitude, total, sumsq, pairs

"""Deterministic fault injection for the gateway, and the machinery to
survive it.

The DQ guarantees the gateway preserves (confidentiality, completeness,
traceability, precision — the paper's DQSR families) are only worth
anything if they hold when shards misbehave.  This module supplies both
sides of that argument:

* **Injection** — a seeded :class:`FaultPlan` fixes, before any request
  runs, exactly which shard calls crash, slow down, get dropped or get
  duplicated, and which cache fills fail.  The same seed always produces
  the same schedule, so chaos runs replay bit-for-bit.
* **Survival** — :class:`RetryPolicy` (bounded retries, exponential
  backoff with deterministic jitter), per-shard :class:`CircuitBreaker`
  (closed/open/half-open, shedding with the 503 helpers while open),
  :class:`IdempotencyRegistry` (at-most-once application of keyed writes,
  so a duplicated or retried task can never double-apply), and the
  degraded-read path (the gateway serves the last known good body with an
  explicit staleness tag — see :func:`repro.runtime.http.degraded`).

Time is simulated: injected latency is compared against the operation
timeout rather than slept, and backoff delays are recorded in the metrics
rather than slept (unless a real ``sleeper`` is configured).  The circuit
breaker's clock is the injector's call counter when faults are injected,
so breaker transitions are a deterministic function of the request
sequence, not of wall-clock scheduling.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.diagrams.ascii import table as render_table

# -- fault taxonomy ---------------------------------------------------------

CRASH = "crash"            # the shard refuses every call in the window
LATENCY = "latency"        # calls take `latency` simulated seconds
DROP = "drop"              # the dispatched task vanishes before running
DUPLICATE = "duplicate"    # the dispatched task runs twice
CACHE_FILL = "cache-fill"  # read-through cache fills silently fail
KILL = "kill"              # kill -9: the shard process dies and restarts
                           # from its durable state (unsynced writes lost)
REPLICA_LAG = "replica-lag"  # the shard's followers stop catching up for
                             # one read — bounded staleness made visible
FAILOVER = "failover"      # the primary dies; a caught-up follower is
                           # promoted (without replication: a plain kill)

FAULT_KINDS = (
    CRASH, LATENCY, DROP, DUPLICATE, CACHE_FILL, KILL, REPLICA_LAG, FAILOVER,
)

#: Default per-operation timeout budget (simulated seconds).
DEFAULT_OPERATION_TIMEOUT = 0.02


class TransientShardFault(RuntimeError):
    """A single failed shard call — retryable."""

    kind = "transient"

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


class ShardCrashed(TransientShardFault):
    kind = CRASH


class OperationTimeout(TransientShardFault):
    kind = LATENCY


class TaskDropped(TransientShardFault):
    kind = DROP


class ShardKilled(TransientShardFault):
    """The shard process was killed and restarted from durable state.

    Retryable: the replacement shard is already serving by the time this
    propagates, so the retry loop re-routes the same task to it."""

    kind = KILL


class ShardFailedOver(TransientShardFault):
    """The shard's primary died and a follower was promoted in its place.

    Retryable: by the time this propagates the promoted follower is
    already serving as the new primary, so the retry loop re-runs the
    same task against it.  Without a replication layer the failover
    degrades to a kill-restart (or a plain crash)."""

    kind = FAILOVER


class ShardUnavailable(RuntimeError):
    """The shard cannot serve this request: breaker open or retries
    exhausted.  The gateway answers 503 (writes) or degrades (reads)."""

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard} unavailable: {reason}")
        self.shard = shard
        self.reason = reason


# -- the fault plan ---------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One fault window: ``kind`` applies to calls ``[start, stop)``.

    ``shard`` of ``None`` matches every shard.  ``CACHE_FILL`` windows are
    indexed by the cache-*fill* counter, every other kind by the shard-call
    counter.
    """

    kind: str
    shard: Optional[int]
    start: int
    stop: int
    latency: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"bad fault window [{self.start}, {self.stop})"
            )

    def active_at(self, call_index: int, shard: Optional[int] = None) -> bool:
        if not (self.start <= call_index < self.stop):
            return False
        return self.shard is None or shard is None or shard == self.shard


class FaultPlan:
    """An immutable, replayable schedule of :class:`FaultSpec` windows."""

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs = tuple(specs)

    def signature(self) -> tuple:
        """A hashable identity: two plans with equal signatures inject
        identical fault schedules."""
        return self.specs

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def crash_shard(
        cls, shard: int, start: int = 0, stop: int = 1 << 30
    ) -> "FaultPlan":
        """A single permanently crashed shard — the simplest outage."""
        return cls([FaultSpec(CRASH, shard, start, stop)])

    @classmethod
    def kill_shard(cls, shard: int, at: int) -> "FaultPlan":
        """One kill -9 of one shard at one call — the simplest durability
        drill."""
        return cls([FaultSpec(KILL, shard, at, at + 1)])

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shard_count: int,
        horizon: int = 2000,
        start: int = 0,
        crashes: int = 2,
        latency_spikes: int = 2,
        drop_rate: float = 0.02,
        duplicate_rate: float = 0.02,
        cache_fill_windows: int = 1,
        operation_timeout: float = DEFAULT_OPERATION_TIMEOUT,
        kills: int = 0,
        replica_lags: int = 0,
        failovers: int = 0,
    ) -> "FaultPlan":
        """A deterministic schedule drawn from ``random.Random(seed)``.

        All windows begin at or after ``start`` (so a preload phase can
        run clean) and before ``horizon``.  Latency values straddle the
        ``operation_timeout`` so some spikes are absorbed and some time
        out.  ``kills`` adds that many single-call kill-restart windows;
        they are drawn *after* every other kind, so ``kills=0`` (the
        default) leaves historical seeded schedules byte-identical.
        ``replica_lags`` and ``failovers`` extend the plan the same way —
        topology faults are drawn after the kills, in that order, so
        every earlier seeded schedule (including kill schedules) stays
        byte-identical when both stay 0.
        """
        if horizon <= start:
            raise ValueError("horizon must exceed start")
        rng = random.Random(seed)
        span = horizon - start
        specs: list[FaultSpec] = []
        for _ in range(crashes):
            shard = rng.randrange(shard_count)
            length = max(1, int(span * rng.uniform(0.03, 0.12)))
            begin = start + rng.randrange(max(1, span - length))
            specs.append(FaultSpec(CRASH, shard, begin, begin + length))
        for _ in range(latency_spikes):
            shard = rng.randrange(shard_count)
            length = max(1, int(span * rng.uniform(0.02, 0.08)))
            begin = start + rng.randrange(max(1, span - length))
            lat = operation_timeout * rng.uniform(0.3, 2.5)
            specs.append(
                FaultSpec(LATENCY, shard, begin, begin + length, latency=lat)
            )
        for _ in range(int(span * drop_rate)):
            at = start + rng.randrange(span)
            specs.append(FaultSpec(DROP, None, at, at + 1))
        for _ in range(int(span * duplicate_rate)):
            at = start + rng.randrange(span)
            specs.append(FaultSpec(DUPLICATE, None, at, at + 1))
        for _ in range(cache_fill_windows):
            length = max(1, int(span * rng.uniform(0.05, 0.15)))
            begin = start + rng.randrange(max(1, span - length))
            specs.append(FaultSpec(CACHE_FILL, None, begin, begin + length))
        for _ in range(kills):
            # shard-agnostic single-call windows: whichever shard the
            # call routes to dies — a pinned shard would miss most
            # windows (that call index rarely lands on that shard)
            at = start + rng.randrange(span)
            specs.append(FaultSpec(KILL, None, at, at + 1))
        for _ in range(replica_lags):
            # a lag window pins one shard: every primary call in the
            # window re-arms the "followers stop catching up" flag, so
            # reads straddling the window observe real, bounded lag
            shard = rng.randrange(shard_count)
            length = max(1, int(span * rng.uniform(0.03, 0.10)))
            begin = start + rng.randrange(max(1, span - length))
            specs.append(FaultSpec(REPLICA_LAG, shard, begin, begin + length))
        for _ in range(failovers):
            # shard-agnostic single-call windows, like kills: whichever
            # shard the call routes to loses its primary
            at = start + rng.randrange(span)
            specs.append(FaultSpec(FAILOVER, None, at, at + 1))
        specs.sort(
            key=lambda s: (s.start, s.kind, -1 if s.shard is None else s.shard)
        )
        return cls(specs)

    def render(self) -> str:
        rows = [
            [
                spec.kind,
                "any" if spec.shard is None else str(spec.shard),
                f"[{spec.start}, {spec.stop})",
                f"{spec.latency * 1000:.1f}ms" if spec.latency else "—",
            ]
            for spec in self.specs
        ]
        header = f"fault schedule: {len(self.specs)} window(s)"
        if not rows:
            return header + " (none)"
        return header + "\n" + render_table(
            ["Kind", "Shard", "Calls", "Latency"], rows
        )

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.specs)} spec(s)>"


@dataclass(frozen=True)
class Injection:
    """The faults active for one shard call."""

    crash: bool = False
    latency: float = 0.0
    drop: bool = False
    duplicate: bool = False
    kill: bool = False
    lag: bool = False
    failover: bool = False


class FaultInjector:
    """Replays a :class:`FaultPlan` against a monotone call counter.

    The counter doubles as the deterministic clock for the circuit
    breakers (``clock()``): time advances per attempted shard call — even
    shed ones, via :meth:`tick` — never per wall-clock second.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._calls = 0
        self._fills = 0
        self.applied: Counter = Counter()

    def clock(self) -> float:
        with self._lock:
            return float(self._calls)

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def tick(self) -> None:
        """Advance the clock without injecting (a shed call still counts
        as elapsed time, so open breakers can cool down)."""
        with self._lock:
            self._calls += 1

    def next_call(self, shard: int) -> Injection:
        with self._lock:
            index = self._calls
            self._calls += 1
            crash = drop = duplicate = kill = lag = failover = False
            latency = 0.0
            for spec in self.plan.specs:
                if spec.kind == CACHE_FILL:
                    continue
                if not spec.active_at(index, shard):
                    continue
                if spec.kind == CRASH:
                    crash = True
                elif spec.kind == LATENCY:
                    latency = max(latency, spec.latency)
                elif spec.kind == DROP:
                    drop = True
                elif spec.kind == DUPLICATE:
                    duplicate = True
                elif spec.kind == KILL:
                    kill = True
                elif spec.kind == REPLICA_LAG:
                    lag = True
                elif spec.kind == FAILOVER:
                    failover = True
            if crash:
                self.applied[CRASH] += 1
            if latency:
                self.applied[LATENCY] += 1
            if drop:
                self.applied[DROP] += 1
            if duplicate:
                self.applied[DUPLICATE] += 1
            if kill:
                self.applied[KILL] += 1
            if lag:
                self.applied[REPLICA_LAG] += 1
            if failover:
                self.applied[FAILOVER] += 1
        return Injection(crash, latency, drop, duplicate, kill, lag, failover)

    def cache_fill_fails(self) -> bool:
        with self._lock:
            index = self._fills
            self._fills += 1
            hit = any(
                spec.kind == CACHE_FILL and spec.start <= index < spec.stop
                for spec in self.plan.specs
            )
            if hit:
                self.applied[CACHE_FILL] += 1
            return hit


# -- survival machinery -----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``backoff(n)`` is the delay before retry ``n`` (1-based).  The config
    is validated so the schedule is provably monotone non-decreasing:
    jittered delay ``n`` is at most ``raw * (1 + jitter)`` and delay
    ``n+1`` at least ``raw * multiplier`` — requiring ``multiplier >=
    1 + jitter`` makes later retries never shorter than earlier ones.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.multiplier < 1.0 + self.jitter:
            raise ValueError(
                "multiplier must be >= 1 + jitter or the backoff schedule "
                "loses monotonicity"
            )

    def backoff(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        fraction = random.Random(self.seed * 1_000_003 + attempt).random()
        return min(raw * (1.0 + self.jitter * fraction), self.max_delay)

    def schedule(self) -> tuple[float, ...]:
        """Every delay of a fully exhausted retry loop."""
        return tuple(
            self.backoff(attempt) for attempt in range(1, self.max_attempts)
        )


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """A per-shard circuit breaker: closed → open → half-open → …

    * **closed** — calls flow; ``failure_threshold`` consecutive failures
      trip the breaker open.
    * **open** — every call is shed until ``cooldown`` clock units pass,
      then the next call transitions to half-open.
    * **half-open** — exactly one probe is admitted at a time; a probe
      success closes the breaker, a probe failure re-opens it.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock or time.monotonic
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.transitions: list[tuple[str, str, float]] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Transitions open → half-open.)"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._transition(HALF_OPEN)
                    self._probing = True
                    return True
                return False
            # HALF_OPEN: one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._probing = False
            self._failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)

    def _transition(self, to: str) -> None:
        origin = self._state
        self._state = to
        if to == CLOSED:
            self._failures = 0
        self.transitions.append((origin, to, self._clock()))
        if self._on_transition is not None:
            self._on_transition(origin, to)

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state}, {self._failures} failure(s)>"


class IdempotencyRegistry:
    """At-most-once application of keyed operations.

    ``run_once(key, fn)`` runs ``fn`` the first time a key is seen and
    returns the cached outcome on every replay — whether the replay is a
    duplicated worker task or a client retry.  Concurrent replays block
    until the first execution finishes, so two racing duplicates can never
    both apply.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._results: OrderedDict[object, tuple[bool, object]] = OrderedDict()
        self._inflight: dict[object, threading.Event] = {}
        self._lock = threading.Lock()
        self.duplicates = 0

    def run_once(self, key, fn: Callable[[], object]):
        while True:
            with self._lock:
                if key in self._results:
                    self.duplicates += 1
                    ok, value = self._results[key]
                    break
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
            if waiter is None:  # we own the first execution
                try:
                    value = fn()
                    ok = True
                except BaseException as exc:  # cache failures too: a replay
                    value = exc            # of a failed op must not re-run it
                    ok = False
                with self._lock:
                    self._results[key] = (ok, value)
                    while len(self._results) > self.capacity:
                        self._results.popitem(last=False)
                    event = self._inflight.pop(key)
                event.set()
                break
            waiter.wait()
        if ok:
            return value
        raise value

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the gateway's fault-survival machinery.

    ``sleeper`` of ``None`` keeps backoff simulated (recorded in the
    metrics, never slept) — pass ``time.sleep`` for real pacing.  Breaker
    ``cooldown`` is measured on the injector's call-counter clock when a
    fault plan is installed, otherwise in wall-clock seconds.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    operation_timeout: float = DEFAULT_OPERATION_TIMEOUT
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 30.0
    last_good_capacity: int = 512
    idempotency_capacity: int = 4096
    sleeper: Optional[Callable[[float], None]] = None


# -- the chaos harness ------------------------------------------------------


@dataclass
class ChaosResult:
    """Everything one seeded chaos run produced, for report and asserts."""

    seed: int
    plan: FaultPlan
    report: object  # LoadReport
    violations: list
    applied: Counter
    metrics: dict
    preloaded: frozenset
    backend: str = "memory"
    restarts: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        sections = [
            f"chaos run — seed {self.seed}, "
            f"{len(self.preloaded)} record(s) preloaded",
            self.plan.render(),
            self.report.render(),
        ]
        if self.applied:
            sections.append(
                "faults applied: " + ", ".join(
                    f"{kind}×{count}"
                    for kind, count in sorted(self.applied.items())
                )
            )
        if self.backend != "memory" or self.restarts:
            # counters only — same-seed runs render the same line
            sections.append(
                f"durability: {self.backend} backend, "
                f"{self.restarts} shard restart(s)"
            )
        validation = self.metrics.get("validation")
        if validation:
            # Counters only — wall-clock µs would break the byte-identical
            # stdout guarantee for repeated same-seed chaos runs.
            sections.append(
                f"validation: {validation['checks']} check(s) "
                f"({validation['batches']} batch(es)), "
                f"plan cache {validation['plan_cache_hits']} hit(s) / "
                f"{validation['plan_cache_misses']} miss(es), "
                f"{validation['plans_compiled']} plan(s) compiled"
            )
        telemetry = self.metrics.get("telemetry")
        if telemetry:
            # Counters only here too — the accumulator counts are a pure
            # function of the seeded workload, so same-seed runs render
            # the same line.
            sections.append(
                f"dq telemetry: {telemetry['records']} record(s) live, "
                f"{telemetry['updates']} update(s), "
                f"{telemetry['spilled_fields']} spill(s), "
                f"{telemetry['rebuilds']} rebuild(s)"
            )
        if self.violations:
            sections.append(
                f"guarantee report: {len(self.violations)} VIOLATION(S)"
            )
            sections.extend(f"  !! {v}" for v in self.violations)
        else:
            sections.append(
                "guarantee report: zero violations (no lost acknowledged "
                "writes, no double-applied retries, no confidentiality "
                "leaks, no untagged stale reads)"
            )
        return "\n".join(sections)


def run_chaos(
    seed: int = 0,
    *,
    shard_count: int = 4,
    count: int = 400,
    preload: int = 24,
    threads: int = 1,
    mix: Optional[dict] = None,
    design_model=None,
    users: Optional[Sequence[tuple]] = None,
    config: Optional[ResilienceConfig] = None,
    plan: Optional[FaultPlan] = None,
    persistence: Optional[str] = None,
    kills: int = 0,
    data_dir=None,
) -> ChaosResult:
    """One seeded chaos run: preload clean, inject the seeded fault plan
    over the mixed workload, then verify every DQ guarantee.

    With ``threads=1`` the whole run — fault schedule, applied faults,
    outcome counters — is a pure function of the seed.

    ``persistence`` names a durable backend kind (``"file"`` or
    ``"sqlite"``) to put under every shard; ``kills`` adds that many
    seeded kill-restart faults to the default plan, turning the run into
    a durability drill — each killed shard must come back from its WAL
    with every acknowledged write intact.  Shard state lives under
    ``data_dir`` (a temporary directory, removed afterwards, when not
    given).
    """
    import tempfile

    from repro.casestudy import easychair
    from repro.persistence import persistence_factory

    from .gateway import ShardedGateway
    from .loadgen import CHAOS_MIX, LoadGenerator, verify_guarantees

    if design_model is None:
        design_model = easychair.build_design()
    if users is None:
        users = easychair.USERS
    if config is None:
        config = ResilienceConfig()
    if plan is None:
        # ~2 shard calls per planned operation in practice (listings
        # scatter to every shard but cache hits consume none), so this
        # keeps the fault windows inside the exercised call range
        horizon = preload + count * 2
        plan = FaultPlan.seeded(
            seed,
            shard_count=shard_count,
            horizon=horizon,
            start=preload,
            operation_timeout=config.operation_timeout,
            kills=kills,
        )
    factory = None
    tempdir = None
    if persistence is not None:
        if data_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            data_dir = tempdir.name
        factory = persistence_factory(data_dir, kind=persistence)
    generator = LoadGenerator(seed=seed, mix=dict(mix or CHAOS_MIX))
    gateway = ShardedGateway.from_design(
        design_model,
        shard_count=shard_count,
        users=users,
        fault_plan=plan,
        resilience=config,
        max_queue_depth=max(512, count),
        workers=shard_count,
        persistence=factory,
    )
    try:
        spec = generator.spec
        rng = random.Random(seed)
        preloaded = set()
        for _ in range(preload):
            response = gateway.submit(
                spec.form, spec.clean_payload(rng), spec.cleared_users[0]
            )
            if response.status != 201:  # pragma: no cover - preload is clean
                raise RuntimeError(f"preload write failed: {response.status}")
            preloaded.add(response.body["id"])
        report = generator.run(gateway, count=count, threads=threads)
        violations = verify_guarantees(
            gateway, report, ignore_ids=frozenset(preloaded)
        )
        applied = Counter(
            gateway.fault_injector.applied
        ) if gateway.fault_injector else Counter()
        metrics = gateway.metrics.snapshot(
            gateway.cache.stats,
            gateway.validation_stats(),
            gateway.telemetry_stats(),
        )
        backend_name = gateway.shards[0].persistence.name
        restarts = sum(gateway.shard_restarts)
    finally:
        gateway.close()
        if tempdir is not None:
            tempdir.cleanup()
    return ChaosResult(
        seed, plan, report, violations, applied, metrics,
        frozenset(preloaded), backend_name, restarts,
    )

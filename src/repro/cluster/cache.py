"""A read-through, confidentiality-aware response cache for the gateway.

The cache sits in front of the shards' *read* paths only.  Two rules keep
the paper's Confidentiality DQSR intact under caching:

* the cache key includes the requesting **user and their clearance
  level** — a filtered read cached for a cleared PC member can never be
  served to an uncleared outsider, and if an account's clearance changes,
  entries keyed under the old level simply stop matching;
* every accepted **write invalidates the written entity's entries** before
  the write is acknowledged, so readers never see a stale view past the
  acknowledgement.

Entries are stored *frozen* and thawed per hit, so a caller mutating a
served body can never poison the cache — the same defensive-copy
discipline the :mod:`repro.runtime.storage` read path follows.  Freezing
mirrors the store's copy-on-write snapshots: the common gateway bodies
(a list of flat rows, or one flat row, all values immutable) are kept as
private shallow copies and thawed by shallow copy again — C-speed dict
copies instead of a JSON round-trip per hit.  Anything else falls back
to the JSON-text (or deepcopy) representation as before.
"""

from __future__ import annotations

import copy
import json
import threading
from collections import OrderedDict

from repro.runtime.storage import _values_shareable

#: Key kinds (first element of every cache key).
LIST = "list"
VIEW = "view"

#: Frozen-body representations.
_ROWS = "rows"        # list of flat dicts, every value immutable
_MAPPING = "mapping"  # one flat dict, every value immutable
_JSON = "json"        # JSON text round-trip
_DEEP = "deep"        # deepcopy fallback


class _Frozen:
    """One cached body, stored in a caller-proof representation."""

    __slots__ = ("_mode", "_value")

    def __init__(self, body):
        if isinstance(body, list) and all(
            isinstance(row, dict) and _values_shareable(row) for row in body
        ):
            # private shallow copies: the caller may mutate the body it
            # handed in (or was served) without reaching these
            self._mode = _ROWS
            self._value = tuple(dict(row) for row in body)
            return
        if isinstance(body, dict) and _values_shareable(body):
            self._mode = _MAPPING
            self._value = dict(body)
            return
        try:
            self._value = json.dumps(body)
            self._mode = _JSON
        except (TypeError, ValueError):
            self._value = copy.deepcopy(body)
            self._mode = _DEEP

    def thaw(self):
        if self._mode is _ROWS:
            return [dict(row) for row in self._value]
        if self._mode is _MAPPING:
            return dict(self._value)
        if self._mode is _JSON:
            return json.loads(self._value)
        return copy.deepcopy(self._value)


class CacheStats:
    """Hit/miss/invalidation accounting (thread-safe via the cache lock)."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }


class ReadThroughCache:
    """An LRU read cache keyed by (kind, entity, record id, user, level).

    ``capacity`` of 0 disables caching entirely (every lookup misses) —
    the gateway's uncached baseline configuration.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, _Frozen] = OrderedDict()
        self._by_entity: dict[str, set[tuple]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def list_key(entity: str, user: str, level: int) -> tuple:
        return (LIST, entity, None, user, level)

    @staticmethod
    def view_key(entity: str, record_id: int, user: str, level: int) -> tuple:
        return (VIEW, entity, record_id, user, level)

    def lookup(self, key: tuple):
        """The thawed cached body, or ``None`` on a miss."""
        with self._lock:
            frozen = self._entries.get(key)
            if frozen is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return frozen.thaw()

    def fill(self, key: tuple, body) -> None:
        """Store a freshly read body under ``key`` (read-through fill)."""
        if self.capacity == 0:
            return
        entity = key[1]
        with self._lock:
            self._entries[key] = _Frozen(body)
            self._entries.move_to_end(key)
            self._by_entity.setdefault(entity, set()).add(key)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._by_entity.get(evicted[1], set()).discard(evicted)
                self.stats.evictions += 1

    def invalidate_entity(self, entity: str) -> int:
        """Drop every entry for ``entity``; the count dropped."""
        with self._lock:
            return self._invalidate(entity)

    def invalidate_entities(self, entities) -> int:
        """Drop every entry for each named entity under one lock pass —
        the write-batching path invalidates all touched entities at once
        instead of paying one lock round per write."""
        with self._lock:
            return sum(self._invalidate(entity) for entity in set(entities))

    def _invalidate(self, entity: str) -> int:
        keys = self._by_entity.pop(entity, set())
        for key in keys:
            self._entries.pop(key, None)
        if keys:
            self.stats.invalidations += 1
        return len(keys)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_entity.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<ReadThroughCache {len(self)}/{self.capacity} entries, "
            f"hit rate {self.stats.hit_rate:.2%}>"
        )


class LastGoodStore:
    """The last successfully served body per read identity, with the
    entity data version it was served at — the degraded-read backstop.

    Unlike :class:`ReadThroughCache` entries, these deliberately survive
    write invalidation: they are *allowed* to be stale, because the
    gateway only ever serves them explicitly tagged (status 203 plus
    ``X-DQ-Degraded`` headers carrying served vs current version), never
    as a fresh read.  Keys are the version-less cache keys, so the
    user-and-clearance isolation that keeps the Confidentiality DQSR
    intact on cache hits holds identically on degraded reads.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple[_Frozen, int]] = OrderedDict()
        self._lock = threading.Lock()

    def remember(self, key: tuple, body, version: int) -> None:
        """Record a freshly served body as the new last-known-good."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (_Frozen(body), version)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(self, key: tuple):
        """``(thawed_body, served_version)`` or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            frozen, version = entry
            return frozen.thaw(), version

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"<LastGoodStore {len(self)}/{self.capacity} entries>"

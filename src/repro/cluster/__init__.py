"""``repro.cluster`` — the sharded, thread-parallel DQ serving layer.

**Beyond the paper.**  DQ_WebRE ends at a single generated web application
(the EasyChair case study); this package is our scaling extension: a
:class:`~repro.cluster.gateway.ShardedGateway` fronting N ``WebApp``
shards with deterministic key routing, per-shard locking, a
confidentiality-aware read-through cache, backpressure (429/503), gateway
metrics, and a deterministic load generator for tests and benchmarks.

Every DQSR family the paper derives stays enforced *in the serving path*:
writes still run the full validate→authorize→store→audit pipeline on
their home shard; reads stay confidentiality-filtered (the cache keys by
user + clearance, so a filtered body can never leak across users);
traceability and optimistic concurrency behave exactly as on one app.

The :mod:`~repro.cluster.resilience` layer adds deterministic fault
injection (seeded :class:`~repro.cluster.resilience.FaultPlan`) plus the
machinery to survive it — bounded retries with backoff, per-shard circuit
breakers, idempotent task replay, and explicitly tagged degraded reads —
with :func:`~repro.cluster.resilience.run_chaos` as the one-call chaos
harness.
"""

from .bench import (
    ComparisonResult,
    ComparisonRow,
    DQTelemetryBenchResult,
    DurabilityBenchResult,
    HotpathResult,
    HotpathRow,
    SmokeResult,
    ValidationBenchResult,
    run_comparison,
    run_dqtelemetry_bench,
    run_durability_bench,
    run_hotpath_bench,
    run_smoke,
    run_validation_bench,
)
from .cache import CacheStats, LastGoodStore, ReadThroughCache
from .gateway import GatewayRoute, ShardedGateway
from .loadgen import (
    CHAOS_MIX,
    LoadGenerator,
    LoadReport,
    Operation,
    READ_HEAVY_MIX,
    SOAK_MIX,
    WorkloadSpec,
    easychair_spec,
    verify_guarantees,
)
from .metrics import GatewayMetrics
from .resilience import (
    CACHE_FILL,
    CRASH,
    ChaosResult,
    CircuitBreaker,
    DROP,
    DUPLICATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    IdempotencyRegistry,
    KILL,
    LATENCY,
    ResilienceConfig,
    RetryPolicy,
    ShardKilled,
    ShardUnavailable,
    run_chaos,
)
from .sharding import ShardRouter, fnv1a

__all__ = [
    "CACHE_FILL",
    "CHAOS_MIX",
    "CRASH",
    "CacheStats",
    "ChaosResult",
    "CircuitBreaker",
    "ComparisonResult",
    "ComparisonRow",
    "DQTelemetryBenchResult",
    "DROP",
    "DUPLICATE",
    "DurabilityBenchResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GatewayMetrics",
    "GatewayRoute",
    "HotpathResult",
    "HotpathRow",
    "IdempotencyRegistry",
    "KILL",
    "LATENCY",
    "LastGoodStore",
    "LoadGenerator",
    "LoadReport",
    "Operation",
    "READ_HEAVY_MIX",
    "ReadThroughCache",
    "ResilienceConfig",
    "RetryPolicy",
    "SOAK_MIX",
    "ShardKilled",
    "ShardRouter",
    "ShardUnavailable",
    "ShardedGateway",
    "SmokeResult",
    "ValidationBenchResult",
    "WorkloadSpec",
    "easychair_spec",
    "fnv1a",
    "run_chaos",
    "run_comparison",
    "run_dqtelemetry_bench",
    "run_durability_bench",
    "run_hotpath_bench",
    "run_smoke",
    "run_validation_bench",
    "verify_guarantees",
]

"""``repro.cluster`` — the sharded, thread-parallel DQ serving layer.

**Beyond the paper.**  DQ_WebRE ends at a single generated web application
(the EasyChair case study); this package is our scaling extension: a
:class:`~repro.cluster.gateway.ShardedGateway` fronting N ``WebApp``
shards with deterministic key routing, per-shard locking, a
confidentiality-aware read-through cache, backpressure (429/503), gateway
metrics, and a deterministic load generator for tests and benchmarks.

Every DQSR family the paper derives stays enforced *in the serving path*:
writes still run the full validate→authorize→store→audit pipeline on
their home shard; reads stay confidentiality-filtered (the cache keys by
user + clearance, so a filtered body can never leak across users);
traceability and optimistic concurrency behave exactly as on one app.
"""

from .bench import ComparisonResult, ComparisonRow, run_comparison
from .cache import CacheStats, ReadThroughCache
from .gateway import GatewayRoute, ShardedGateway
from .loadgen import (
    LoadGenerator,
    LoadReport,
    Operation,
    READ_HEAVY_MIX,
    SOAK_MIX,
    WorkloadSpec,
    easychair_spec,
    verify_guarantees,
)
from .metrics import GatewayMetrics
from .sharding import ShardRouter, fnv1a

__all__ = [
    "CacheStats",
    "ComparisonResult",
    "ComparisonRow",
    "run_comparison",
    "GatewayMetrics",
    "GatewayRoute",
    "LoadGenerator",
    "LoadReport",
    "Operation",
    "READ_HEAVY_MIX",
    "ReadThroughCache",
    "SOAK_MIX",
    "ShardRouter",
    "ShardedGateway",
    "WorkloadSpec",
    "easychair_spec",
    "fnv1a",
    "verify_guarantees",
]

"""``repro.cluster`` — the sharded, thread-parallel DQ serving layer.

**Beyond the paper.**  DQ_WebRE ends at a single generated web application
(the EasyChair case study); this package is our scaling extension: a
:class:`~repro.cluster.gateway.ShardedGateway` fronting N ``WebApp``
shards with deterministic key routing, per-shard locking, a
confidentiality-aware read-through cache, backpressure (429/503), gateway
metrics, and a deterministic load generator for tests and benchmarks.

Every DQSR family the paper derives stays enforced *in the serving path*:
writes still run the full validate→authorize→store→audit pipeline on
their home shard; reads stay confidentiality-filtered (the cache keys by
user + clearance, so a filtered body can never leak across users);
traceability and optimistic concurrency behave exactly as on one app.

The :mod:`~repro.cluster.resilience` layer adds deterministic fault
injection (seeded :class:`~repro.cluster.resilience.FaultPlan`) plus the
machinery to survive it — bounded retries with backoff, per-shard circuit
breakers, idempotent task replay, and explicitly tagged degraded reads —
with :func:`~repro.cluster.resilience.run_chaos` as the one-call chaos
harness.
"""

from .bench import (
    ColumnarBenchResult,
    ComparisonResult,
    ComparisonRow,
    DQTelemetryBenchResult,
    DurabilityBenchResult,
    InterchangeBenchResult,
    HotpathResult,
    HotpathRow,
    ReplicationBenchResult,
    SmokeResult,
    ValidationBenchResult,
    run_columnar_bench,
    run_comparison,
    run_dqtelemetry_bench,
    run_durability_bench,
    run_hotpath_bench,
    run_interchange_bench,
    run_replication_bench,
    run_smoke,
    run_validation_bench,
)
from .cache import CacheStats, LastGoodStore, ReadThroughCache
from .gateway import GatewayRoute, ShardedGateway
from .loadgen import (
    CHAOS_MIX,
    LoadGenerator,
    LoadReport,
    Operation,
    READ_HEAVY_MIX,
    SOAK_MIX,
    WorkloadSpec,
    easychair_spec,
    verify_guarantees,
)
from .metrics import GatewayMetrics
from .replication import (
    LogTruncated,
    ReplicaSet,
    ReplicationLog,
    restore_snapshot,
)
from .resilience import (
    CACHE_FILL,
    CRASH,
    ChaosResult,
    CircuitBreaker,
    DROP,
    DUPLICATE,
    FAILOVER,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    IdempotencyRegistry,
    KILL,
    LATENCY,
    REPLICA_LAG,
    ResilienceConfig,
    RetryPolicy,
    ShardFailedOver,
    ShardKilled,
    ShardUnavailable,
    run_chaos,
)
from .ring import DEFAULT_VNODES, HashRing, RingRouter, moved_fraction
from .sharding import ShardRouter, fnv1a
from .topology import (
    RingGateway,
    TopologyChaosResult,
    cluster_state,
    run_topology_chaos,
    state_checksum,
)

__all__ = [
    "CACHE_FILL",
    "CHAOS_MIX",
    "CRASH",
    "CacheStats",
    "ChaosResult",
    "CircuitBreaker",
    "ColumnarBenchResult",
    "ComparisonResult",
    "ComparisonRow",
    "DEFAULT_VNODES",
    "DQTelemetryBenchResult",
    "DROP",
    "DUPLICATE",
    "DurabilityBenchResult",
    "InterchangeBenchResult",
    "FAILOVER",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GatewayMetrics",
    "GatewayRoute",
    "HashRing",
    "HotpathResult",
    "HotpathRow",
    "IdempotencyRegistry",
    "KILL",
    "LATENCY",
    "LastGoodStore",
    "LoadGenerator",
    "LoadReport",
    "LogTruncated",
    "Operation",
    "READ_HEAVY_MIX",
    "REPLICA_LAG",
    "ReadThroughCache",
    "ReplicaSet",
    "ReplicationBenchResult",
    "ReplicationLog",
    "ResilienceConfig",
    "RetryPolicy",
    "RingGateway",
    "RingRouter",
    "SOAK_MIX",
    "ShardFailedOver",
    "ShardKilled",
    "ShardRouter",
    "ShardUnavailable",
    "ShardedGateway",
    "SmokeResult",
    "TopologyChaosResult",
    "ValidationBenchResult",
    "WorkloadSpec",
    "cluster_state",
    "easychair_spec",
    "fnv1a",
    "moved_fraction",
    "restore_snapshot",
    "run_chaos",
    "run_columnar_bench",
    "run_comparison",
    "run_dqtelemetry_bench",
    "run_durability_bench",
    "run_hotpath_bench",
    "run_interchange_bench",
    "run_replication_bench",
    "run_smoke",
    "run_topology_chaos",
    "run_validation_bench",
    "state_checksum",
    "verify_guarantees",
]

"""Deterministic synthetic load for the sharded gateway.

The casestudy workloads drive a single ``WebApp``'s *write* pipeline; the
gateway needs a mixed, multi-user request stream — reads, writes,
DQ-defective writes, unauthorized writes and reads, optimistic-concurrency
updates — that tests and benchmarks can replay bit-for-bit from a seed.

Everything flows from ``random.Random(seed)`` at *plan* time: a plan is a
list of :class:`Operation` values fixed before any request runs, so the
same plan can drive a single-shard baseline, a 4-shard gateway, or an
8-thread soak and remain comparable.  Per-operation target records are
resolved at run time (ids exist only after writes) but deterministically:
each operation carries a ``choice`` value that picks from the accepted-id
list by modulo.

:class:`LoadReport` tallies outcomes and records everything needed to
check the DQ guarantees afterwards; :func:`verify_guarantees` performs the
checks (exact-once audit per accepted write, zero confidentiality leaks —
including via the cache — and no lost updates: conflicts must have
surfaced as 409s).
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.runtime import audit as audit_events

from .gateway import ShardedGateway

#: Operation kinds a plan is made of.
LIST = "list"
VIEW = "view"
VIEW_UNCLEARED = "view-uncleared"
WRITE = "write"
WRITE_DEFECTIVE = "write-defective"
WRITE_UNAUTHORIZED = "write-unauthorized"
UPDATE = "update"
UPDATE_STALE = "update-stale"

#: The default read-heavy mix (weights, not probabilities).
READ_HEAVY_MIX = {
    LIST: 76,
    VIEW: 10,
    VIEW_UNCLEARED: 4,
    WRITE: 4,
    WRITE_DEFECTIVE: 2,
    WRITE_UNAUTHORIZED: 2,
    UPDATE: 1,
    UPDATE_STALE: 1,
}

#: A write-heavy mix for soak tests: plenty of every guarantee-bearing path.
SOAK_MIX = {
    LIST: 30,
    VIEW: 15,
    VIEW_UNCLEARED: 8,
    WRITE: 20,
    WRITE_DEFECTIVE: 8,
    WRITE_UNAUTHORIZED: 7,
    UPDATE: 8,
    UPDATE_STALE: 4,
}

#: A fault-aware mix for chaos runs: balanced reads and writes, so every
#: resilience path (retry, dedupe, degraded read, shed) sees traffic.
CHAOS_MIX = {
    LIST: 24,
    VIEW: 18,
    VIEW_UNCLEARED: 8,
    WRITE: 22,
    WRITE_DEFECTIVE: 6,
    WRITE_UNAUTHORIZED: 6,
    UPDATE: 10,
    UPDATE_STALE: 6,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """What the generated operations are made of, for one case study."""

    form: str
    entity: str
    cleared_users: tuple[str, ...]
    uncleared_users: tuple[str, ...]
    clean_payload: Callable[[random.Random], dict]
    defective_payload: Callable[[random.Random], dict]
    update_payload: Callable[[random.Random], dict]


def easychair_spec() -> WorkloadSpec:
    """The EasyChair review workload (the paper's case study, scaled up)."""
    from repro.casestudy.easychair import SCORE_BOUNDS, complete_review

    def clean(rng: random.Random) -> dict:
        payload = complete_review(
            overall=rng.randint(*SCORE_BOUNDS["overall_evaluation"]),
            confidence=rng.randint(*SCORE_BOUNDS["reviewer_confidence"]),
        )
        payload["detailed_comments"] = f"comment {rng.randint(0, 10_000)}"
        return payload

    def defective(rng: random.Random) -> dict:
        payload = clean(rng)
        if rng.random() < 0.5:
            payload["email_address"] = None  # Completeness violation
        else:
            payload["overall_evaluation"] = 99  # Precision violation
        return payload

    def update(rng: random.Random) -> dict:
        return {"detailed_comments": f"revised {rng.randint(0, 10_000)}"}

    return WorkloadSpec(
        form="Add all data as result of review form",
        entity="Add all data as result of review",
        cleared_users=("pc_member_1", "pc_member_2", "chair"),
        uncleared_users=("author_1", "outsider"),
        clean_payload=clean,
        defective_payload=defective,
        update_payload=update,
    )


@dataclass(frozen=True)
class Operation:
    """One planned request; ``choice`` resolves its target id at run time."""

    kind: str
    user: str
    data: Optional[dict] = None
    choice: int = 0


class LoadGenerator:
    """Plans and runs deterministic operation mixes against a gateway."""

    def __init__(
        self,
        spec: Optional[WorkloadSpec] = None,
        seed: int = 0,
        mix: Optional[dict] = None,
    ):
        self.spec = spec or easychair_spec()
        self.seed = seed
        self.mix = dict(mix or READ_HEAVY_MIX)

    def plan(self, count: int) -> list[Operation]:
        """``count`` operations, fully determined by the seed and mix."""
        rng = random.Random(self.seed)
        kinds = list(self.mix)
        weights = [self.mix[kind] for kind in kinds]
        spec = self.spec
        operations = []
        for _ in range(count):
            kind = rng.choices(kinds, weights)[0]
            choice = rng.randrange(1 << 30)
            if kind in (LIST, VIEW):
                user = rng.choice(spec.cleared_users)
                operations.append(Operation(kind, user, choice=choice))
            elif kind == VIEW_UNCLEARED:
                user = rng.choice(spec.uncleared_users)
                operations.append(Operation(kind, user, choice=choice))
            elif kind == WRITE:
                user = rng.choice(spec.cleared_users)
                operations.append(
                    Operation(kind, user, spec.clean_payload(rng), choice)
                )
            elif kind == WRITE_DEFECTIVE:
                user = rng.choice(spec.cleared_users)
                operations.append(
                    Operation(kind, user, spec.defective_payload(rng), choice)
                )
            elif kind == WRITE_UNAUTHORIZED:
                user = rng.choice(spec.uncleared_users)
                operations.append(
                    Operation(kind, user, spec.clean_payload(rng), choice)
                )
            elif kind in (UPDATE, UPDATE_STALE):
                user = rng.choice(spec.cleared_users)
                operations.append(
                    Operation(kind, user, spec.update_payload(rng), choice)
                )
            else:  # pragma: no cover - mix keys are validated by use
                raise ValueError(f"unknown operation kind {kind!r}")
        return operations

    # -- execution --------------------------------------------------------

    def run(
        self,
        gateway: ShardedGateway,
        count: Optional[int] = None,
        operations: Optional[Sequence[Operation]] = None,
        threads: int = 1,
        report: Optional["LoadReport"] = None,
    ) -> "LoadReport":
        """Execute a plan; ``threads`` > 1 drives the gateway concurrently.

        Passing an existing ``report`` accumulates across calls — the
        topology-chaos harness runs one plan in segments (pausing for a
        live split or merge between them) and needs a single combined
        report with continuous target-id resolution.
        """
        if operations is None:
            if count is None:
                raise ValueError("pass count or operations")
            operations = self.plan(count)
        if report is None:
            report = LoadReport(spec=self.spec)
        if threads <= 1:
            for operation in operations:
                self._execute(gateway, operation, report)
            return report
        slices = [list(operations[i::threads]) for i in range(threads)]
        workers = [
            threading.Thread(
                target=lambda ops=ops: [
                    self._execute(gateway, op, report) for op in ops
                ],
                name=f"loadgen-{i}",
            )
            for i, ops in enumerate(slices)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        return report

    def _execute(
        self, gateway: ShardedGateway, operation: Operation,
        report: "LoadReport",
    ) -> None:
        spec = self.spec
        kind, user = operation.kind, operation.user
        if kind == LIST or kind == VIEW_UNCLEARED and not report.known_ids():
            response = gateway.list(spec.entity, user)
            report.observe_read(kind, user, response)
        elif kind in (VIEW, VIEW_UNCLEARED):
            record_id = report.pick_id(operation.choice)
            if record_id is None:
                response = gateway.list(spec.entity, user)
            else:
                response = gateway.view(spec.entity, record_id, user)
            report.observe_read(kind, user, response)
        elif kind in (WRITE, WRITE_DEFECTIVE, WRITE_UNAUTHORIZED):
            response = gateway.submit(spec.form, operation.data, user)
            report.observe_write(kind, user, response)
        elif kind in (UPDATE, UPDATE_STALE):
            record_id = report.pick_id(operation.choice)
            if record_id is None:
                response = gateway.list(spec.entity, user)
                report.observe_read(LIST, user, response)
                return
            if kind == UPDATE:
                current = gateway.view(spec.entity, record_id, user)
                report.observe_probe(current)
                expected = (
                    current.body.get("version", 1) if current.ok else 1
                )
            else:
                expected = -1  # guaranteed-stale version: must 409
            response = gateway.modify(
                spec.form, record_id, operation.data, user,
                expected_version=expected,
            )
            report.observe_update(kind, user, record_id, response)


class LoadReport:
    """Thread-safe tallies of one load run, kept for guarantee checking."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._lock = threading.Lock()
        self.outcomes: Counter = Counter()  # (kind, status) -> count
        self.accepted_ids: list[int] = []
        self.updates_applied: Counter = Counter()  # record_id -> count
        self.conflicts = 0
        self.backpressured = 0
        self.leaks: list[str] = []
        self.degraded: Counter = Counter()  # kind -> 203 degraded reads
        self.shed: Counter = Counter()      # kind -> 503 load sheds
        self.untagged_stale: list[str] = []  # degraded reads missing tags

    # -- target-id resolution --------------------------------------------

    def known_ids(self) -> bool:
        with self._lock:
            return bool(self.accepted_ids)

    def pick_id(self, choice: int) -> Optional[int]:
        with self._lock:
            if not self.accepted_ids:
                return None
            return self.accepted_ids[choice % len(self.accepted_ids)]

    # -- observations ------------------------------------------------------

    def _tally(self, kind: str, status: int) -> None:
        self.outcomes[(kind, status)] += 1
        if status == 429:
            self.backpressured += 1

    def observe_read(self, kind: str, user: str, response) -> None:
        uncleared = user in self.spec.uncleared_users
        with self._lock:
            self._tally(kind, response.status)
            if response.status == 203:
                self.degraded[kind] += 1
                if "X-DQ-Degraded" not in response.headers:
                    # the Traceability DQSR: stale data must say so
                    self.untagged_stale.append(
                        f"degraded {kind} for {user!r} arrived without an "
                        f"X-DQ-Degraded staleness tag"
                    )
            elif response.status == 503:
                self.shed[kind] += 1
            if uncleared and response.ok and response.body:
                self.leaks.append(
                    f"uncleared user {user!r} received "
                    f"{response.body!r} ({kind})"
                )

    def observe_probe(self, response) -> None:
        """A version-probe read made on behalf of an update.  Not a
        planned operation, so it stays out of ``outcomes`` — but its
        rejections must still be tallied or the gateway's 429/503 meters
        and the report drift apart."""
        with self._lock:
            if response.status == 429:
                self.backpressured += 1
            elif response.status == 503:
                self.shed["update-probe"] += 1

    def observe_write(self, kind: str, user: str, response) -> None:
        with self._lock:
            self._tally(kind, response.status)
            if response.status == 201:
                self.accepted_ids.append(response.body["id"])
            elif response.status == 503:
                self.shed[kind] += 1

    def observe_update(
        self, kind: str, user: str, record_id: int, response
    ) -> None:
        with self._lock:
            self._tally(kind, response.status)
            if response.status == 200:
                self.updates_applied[record_id] += 1
            elif response.status == 409:
                self.conflicts += 1
            elif response.status == 503:
                self.shed[kind] += 1

    # -- summaries ---------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    def count(self, kind: str, status: Optional[int] = None) -> int:
        return sum(
            n for (k, s), n in self.outcomes.items()
            if k == kind and (status is None or s == status)
        )

    def accepted_writes(self) -> int:
        return sum(
            n for (k, s), n in self.outcomes.items()
            if k.startswith("write") and s == 201
        )

    def render(self) -> str:
        lines = [f"load run: {self.total} operation(s)"]
        for (kind, status), n in sorted(self.outcomes.items()):
            lines.append(f"  {kind:<20} -> {status}: {n}")
        lines.append(
            f"  accepted ids: {len(self.accepted_ids)}, "
            f"conflicts: {self.conflicts}, "
            f"backpressured: {self.backpressured}, "
            f"leaks: {len(self.leaks)}"
        )
        if self.degraded or self.shed or self.untagged_stale:
            lines.append(
                f"  degraded (203): {sum(self.degraded.values())}, "
                f"shed (503): {sum(self.shed.values())}, "
                f"untagged stale: {len(self.untagged_stale)}"
            )
        return "\n".join(lines)


def verify_guarantees(
    gateway: ShardedGateway,
    report: LoadReport,
    ignore_ids: frozenset = frozenset(),
) -> list[str]:
    """Every DQ-guarantee violation observed after a load run (empty = ok).

    Checks, across **all** shards:

    * every accepted write was audited exactly once (``store`` events);
    * every applied update was audited exactly once (``modify`` events)
      and no update was lost: a record's stored version must be exactly
      1 + its acknowledged updates;
    * no confidential record ever reached an uncleared user (the report
      captures every read body, cached or not);
    * stale-version updates surfaced as 409 conflicts, never as writes.

    ``ignore_ids`` are records written *before* the run (preload) whose
    audit events are not this run's to account for.

    Under fault injection, two more guarantees join the list: no write
    acknowledged 201 may be lost or double-applied (retries and duplicated
    tasks must collapse to exactly one store audit event), and no degraded
    read may arrive without its staleness tag.
    """
    violations = list(report.leaks) + list(report.untagged_stale)
    entity = report.spec.entity

    store_counts: Counter = Counter()
    modify_counts: Counter = Counter()
    for shard in gateway.shards:
        for event in shard.audit.by_kind(audit_events.STORE):
            if event.entity == entity:
                store_counts[event.record_id] += 1
        for event in shard.audit.by_kind(audit_events.MODIFY):
            if event.entity == entity:
                modify_counts[event.record_id] += 1

    accepted = Counter(report.accepted_ids)
    for record_id, n in accepted.items():
        if n != 1:
            violations.append(f"record id {record_id} acknowledged {n} times")
    for record_id in accepted:
        audited = store_counts.get(record_id, 0)
        if audited != 1:
            violations.append(
                f"record {record_id}: {audited} store audit event(s), "
                "expected exactly 1"
            )
    extra_stores = set(store_counts) - set(accepted) - set(ignore_ids)
    for record_id in sorted(extra_stores):
        violations.append(
            f"record {record_id} stored without a 201 acknowledgement"
        )

    for record_id, applied in report.updates_applied.items():
        audited = modify_counts.get(record_id, 0)
        if audited != applied:
            violations.append(
                f"record {record_id}: {audited} modify audit event(s) for "
                f"{applied} acknowledged update(s)"
            )
        version = _stored_version(gateway, entity, record_id)
        if version != 1 + applied:
            violations.append(
                f"record {record_id}: stored version {version}, expected "
                f"{1 + applied} (lost or phantom update)"
            )
    lost_modifies = (
        set(modify_counts) - set(report.updates_applied) - set(ignore_ids)
    )
    for record_id in sorted(lost_modifies):
        violations.append(
            f"record {record_id} modified without a 200 acknowledgement"
        )
    return violations


def _stored_version(
    gateway: ShardedGateway, entity: str, record_id: int
) -> Optional[int]:
    shard = gateway.shards[gateway.router.shard_for(entity, record_id)]
    try:
        return shard.store.entity(entity).get(record_id).version
    except KeyError:
        return None

"""Consistent-hash routing: the elastic replacement for ``mod N``.

The fixed-N :class:`~repro.cluster.sharding.ShardRouter` pins every
record to ``fnv1a(entity#id) mod N`` — perfect placement determinism,
terrible elasticity: changing N remaps roughly ``(N-1)/N`` of all keys,
so growing the fleet means re-streaming almost every record.  The
consistent-hash ring keeps the same pure-function determinism (the ring
is fully determined by its node names and the vnode count; no shared
mapping table, no randomness) while shrinking the movement cost of a
topology change to roughly the joining/leaving node's share, ``1/N``.

Layout: each node projects ``vnodes`` points onto the 64-bit hash
space at ``spread(fnv1a("node#vnode#i"))``; a key hashed the same way
is owned by the first node point clockwise from it (binary search over
the sorted points, wrapping at the top).  The :func:`spread` finalizer
matters: raw FNV-1a of common-prefix strings clumps, which would pile
all of a node's vnodes into one arc.  More vnodes → smoother load at
the cost of a bigger (still tiny) point table; 128 per node keeps
every shard's share within ~25% of uniform for the fleet sizes the
gateway runs (tested bound: 0.7x–1.35x ideal).

:class:`RingRouter` is the drop-in :class:`ShardRouter` replacement the
replicated gateway installs — same ``allocate_id`` / ``observe_id`` /
``shard_for`` / ``placement`` surface, plus ``add_shard`` /
``remove_shard`` for live topology changes and a per-record override
table the migration engine uses to keep serving records that have not
streamed to their new owner yet.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from .sharding import ShardRouter, fnv1a

#: Default virtual-node count per ring node.
DEFAULT_VNODES = 128

_MASK = (1 << 64) - 1


def spread(value: int) -> int:
    """Avalanche a 64-bit hash (the splitmix64 finalizer).

    FNV-1a of short strings with a shared prefix differs mostly in the
    low bits — ``shard-1#vnode#0..127`` hash to one tight clump, and
    sequential ``Entity#id`` keys clump the same way — which would
    collapse every node's vnodes into a single arc and starve the
    uniformity the vnode math assumes.  The finalizer spreads every
    input bit across the word, so points and keys land uniformly.
    """
    value &= _MASK
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK
    value ^= value >> 31
    return value


class HashRing:
    """A deterministic consistent-hash ring over named nodes.

    The ring is a pure function of ``(sorted node names, vnodes)``: two
    rings built from the same members agree on every key's owner, in
    any process, in any insertion order.  Collisions on a point (astro-
    nomically rare with 64-bit FNV-1a) tie-break by node name, so even
    those are deterministic.
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (spread(fnv1a(f"{node}#vnode#{index}")), node)
            for index in range(self.vnodes)
        ]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        self._points.extend(self._node_points(node))
        self._points.sort()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def owner(self, key_hash: int) -> str:
        """The node owning ``key_hash``: first point clockwise, wrapping."""
        if not self._points:
            raise RuntimeError("the ring has no nodes")
        index = bisect_left(self._points, (key_hash, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def owner_of(self, key: str) -> str:
        return self.owner(spread(fnv1a(key)))

    def __repr__(self) -> str:
        return (
            f"<HashRing {len(self._nodes)} node(s) x {self.vnodes} vnode(s)>"
        )


class RingRouter(ShardRouter):
    """A :class:`ShardRouter` whose placement comes from a hash ring.

    Shard indices stay stable identities for the gateway's parallel
    lists (shards, locks, breakers, replica sets): ``add_shard`` always
    returns a brand-new index and ``remove_shard`` retires an index
    without renumbering the survivors — only the ring membership
    changes.  ``all_shards`` therefore returns the *live* indices, not a
    range.

    ``route_override`` / ``clear_override`` maintain the migration
    table: while a record is still streaming to its new owner, lookups
    keep resolving to the shard that actually holds it, so the gateway
    never stops serving mid-move.
    """

    def __init__(
        self, shard_count: int, vnodes: int = DEFAULT_VNODES
    ):
        super().__init__(shard_count)
        self._ring = HashRing(vnodes=vnodes)
        self._node_index: dict[str, int] = {}
        self._next_index = 0
        self._overrides: dict[tuple[str, int], int] = {}
        for _ in range(shard_count):
            self._admit()

    # -- topology ---------------------------------------------------------

    @staticmethod
    def node_name(index: int) -> str:
        return f"shard-{index}"

    def _admit(self) -> int:
        index = self._next_index
        self._next_index += 1
        name = self.node_name(index)
        self._ring.add_node(name)
        self._node_index[name] = index
        self.shard_count = self._next_index
        return index

    def add_shard(self) -> int:
        """Join a new node; returns its (fresh, never-reused) index."""
        with self._lock:
            return self._admit()

    def remove_shard(self, index: int) -> None:
        """Retire one node from the ring (its index is never reused)."""
        name = self.node_name(index)
        with self._lock:
            self._ring.remove_node(name)
            del self._node_index[name]

    @property
    def vnodes(self) -> int:
        return self._ring.vnodes

    # -- lookup -----------------------------------------------------------

    def shard_for(self, entity: str, record_id: int) -> int:
        key = f"{entity}#{record_id}"
        with self._lock:
            override = self._overrides.get((entity, record_id))
            if override is not None:
                return override
            return self._node_index[self._ring.owner_of(key)]

    def ring_owner(self, entity: str, record_id: int) -> int:
        """The ring's answer, ignoring migration overrides."""
        with self._lock:
            return self._node_index[
                self._ring.owner_of(f"{entity}#{record_id}")
            ]

    def all_shards(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._node_index.values()))

    # -- migration overrides ---------------------------------------------

    def route_override(
        self, entity: str, record_id: int, shard_index: int
    ) -> None:
        with self._lock:
            self._overrides[(entity, record_id)] = shard_index

    def clear_override(self, entity: str, record_id: int) -> None:
        with self._lock:
            self._overrides.pop((entity, record_id), None)

    def overrides_active(self) -> int:
        with self._lock:
            return len(self._overrides)

    def __repr__(self) -> str:
        with self._lock:
            live = len(self._node_index)
        return (
            f"<RingRouter {live} live shard(s), "
            f"{self._ring.vnodes} vnode(s)/shard>"
        )


def moved_fraction(
    before: "RingRouter | ShardRouter",
    after: "RingRouter | ShardRouter",
    entity: str,
    count: int,
    start: int = 1,
) -> float:
    """The fraction of ``count`` sequential record ids whose home shard
    differs between two routers — the resharding-cost measure the ring's
    minimal-movement property is stated in."""
    if count < 1:
        raise ValueError("count must be >= 1")
    moved = sum(
        1
        for record_id in range(start, start + count)
        if before.shard_for(entity, record_id)
        != after.shard_for(entity, record_id)
    )
    return moved / count

"""Single-shard vs N-shard throughput comparison harness.

Reused by ``benchmarks/bench_gateway.py`` and the ``repro cluster-bench``
CLI subcommand.  The protocol keeps the two sides strictly comparable:

1. build the **baseline** — one shard, cache disabled: the pre-cluster
   serving path (a thin dispatch over a single ``WebApp``);
2. build the **gateway** — N shards with the read-through cache;
3. preload both with the same records, then replay the *identical*
   seeded read-heavy operation plan against each from ``threads`` client
   threads and compare wall-clock throughput.

Determinism: the plan is fixed by the seed before any request runs; only
wall-clock timings vary between runs.  The default of one client thread
measures the per-request cost ratio with minimal scheduler noise; the
soak tests separately prove the guarantees under many client threads.
"""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.diagrams.ascii import table as render_table

from .gateway import ShardedGateway
from .loadgen import LoadGenerator, LoadReport, READ_HEAVY_MIX
from .resilience import FaultPlan, ResilienceConfig


@dataclass
class ComparisonRow:
    """One measured configuration."""

    label: str
    shard_count: int
    cache_capacity: int
    operations: int
    elapsed: float
    report: LoadReport
    cache_hit_rate: float
    metrics_text: str = ""

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed if self.elapsed else 0.0


@dataclass
class ComparisonResult:
    """Baseline row first; ``speedup`` is gateway vs baseline."""

    rows: list
    preload: int
    threads: int
    seed: int
    has_faulted: bool = False

    @property
    def baseline(self) -> ComparisonRow:
        return self.rows[0]

    @property
    def gateway(self) -> ComparisonRow:
        """The healthy cached N-shard row (never the faulted one)."""
        return self.rows[-2] if self.has_faulted else self.rows[-1]

    @property
    def faulted(self) -> Optional[ComparisonRow]:
        return self.rows[-1] if self.has_faulted else None

    @property
    def speedup(self) -> float:
        base = self.baseline.ops_per_second
        return self.gateway.ops_per_second / base if base else 0.0

    @property
    def degradation(self) -> Optional[float]:
        """Faulted throughput as a fraction of healthy cached throughput."""
        if not self.has_faulted:
            return None
        healthy = self.gateway.ops_per_second
        return self.faulted.ops_per_second / healthy if healthy else 0.0

    def render(self) -> str:
        header = (
            f"gateway throughput, read-heavy mix — {self.preload} records "
            f"preloaded, {self.gateway.operations} operations, "
            f"{self.threads} client thread(s), seed {self.seed}"
        )
        body = render_table(
            ["Configuration", "Ops/s", "Elapsed s", "Cache hit rate"],
            [
                [
                    row.label,
                    f"{row.ops_per_second:,.0f}",
                    f"{row.elapsed:.3f}",
                    f"{row.cache_hit_rate:.1%}"
                    if row.cache_capacity else "—",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"speedup: {self.speedup:.2f}x "
            f"({self.gateway.label} vs {self.baseline.label})"
        )
        if self.has_faulted:
            footer += (
                f"\nunder faults: {self.degradation:.1%} of healthy "
                f"throughput retained ({self.faulted.label})"
            )
        return f"{header}\n{body}\n{footer}"


def _measure(
    gateway: ShardedGateway,
    generator: LoadGenerator,
    plan: Sequence,
    preload: int,
    threads: int,
    label: str,
) -> ComparisonRow:
    from repro.casestudy.easychair import complete_review

    spec = generator.spec
    for _ in range(preload):
        response = gateway.submit(
            spec.form, complete_review(), spec.cleared_users[0]
        )
        if response.status != 201:  # pragma: no cover - preload must land
            raise RuntimeError(f"preload write failed: {response.status}")
    # warm one listing per user so every configuration starts from the
    # same cache state and (when resilient) a last-known-good body exists
    # before any fault window opens
    for user in (*spec.cleared_users, *spec.uncleared_users):
        gateway.list(spec.entity, user)
    # Same discipline as ``_timed_loop``: the previous configuration's
    # teardown garbage (whole gateways of shard stores) must never be
    # collected on this row's clock.
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        report = generator.run(
            gateway, operations=list(plan), threads=threads
        )
        elapsed = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return ComparisonRow(
        label=label,
        shard_count=len(gateway.shards),
        cache_capacity=gateway.cache.capacity,
        operations=len(plan),
        elapsed=elapsed,
        report=report,
        cache_hit_rate=gateway.cache.stats.hit_rate,
        metrics_text=gateway.metrics.render(
            gateway.cache.stats, gateway.validation_stats()
        ),
    )


def run_comparison(
    shard_count: int = 4,
    count: int = 600,
    preload: int = 400,
    seed: int = 23,
    threads: int = 1,
    cache_capacity: int = 512,
    include_uncached: bool = False,
    include_faulted: bool = False,
    design_model=None,
    users: Optional[Sequence[tuple]] = None,
    mix: Optional[dict] = None,
) -> ComparisonResult:
    """Measure the single-shard baseline against the N-shard gateway.

    Returns the result with the baseline as the first row and the cached
    N-shard gateway as the last healthy row; ``include_uncached`` adds an
    uncached N-shard row in between (isolates sharding vs caching), and
    ``include_faulted`` appends a row where shard 0 crashes permanently
    right after warm-up — measuring how much throughput the resilience
    layer (retry, breaker shedding, degraded reads) retains.
    """
    from repro.casestudy import easychair

    if design_model is None:
        design_model = easychair.build_design()
    if users is None:
        users = easychair.USERS
    generator = LoadGenerator(seed=seed, mix=dict(mix or READ_HEAVY_MIX))
    plan = generator.plan(count)
    spec = generator.spec

    configurations = [
        ("1 shard (baseline, uncached)", 1, 0, None),
    ]
    if include_uncached:
        configurations.append(
            (f"{shard_count} shards (uncached)", shard_count, 0, None)
        )
    configurations.append(
        (f"{shard_count} shards (cached)", shard_count, cache_capacity, None)
    )
    if include_faulted:
        # the crash window opens after the preload submits plus the
        # per-user warm listings (each listing touches every shard)
        warm_users = len(spec.cleared_users) + len(spec.uncleared_users)
        fault_start = preload + warm_users * shard_count
        configurations.append((
            f"{shard_count} shards (cached, shard 0 down)",
            shard_count,
            cache_capacity,
            FaultPlan.crash_shard(0, start=fault_start),
        ))

    rows = []
    for label, shards, capacity, fault_plan in configurations:
        gateway = ShardedGateway.from_design(
            design_model,
            shard_count=shards,
            users=users,
            cache_capacity=capacity,
            max_queue_depth=max(512, count),
            workers=shards,
            fault_plan=fault_plan,
            resilience=(
                ResilienceConfig() if fault_plan is not None else None
            ),
        )
        try:
            rows.append(
                _measure(gateway, generator, plan, preload, threads, label)
            )
        finally:
            gateway.close()
    return ComparisonResult(
        rows=rows, preload=preload, threads=threads, seed=seed,
        has_faulted=include_faulted,
    )


# ---------------------------------------------------------------------------
# Hot-path micro-benchmarks (copy-on-write reads, write batching, indexes)
# ---------------------------------------------------------------------------


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 on an empty series)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class HotpathRow:
    """One measured hot-path configuration with its latency profile."""

    name: str
    operations: int
    elapsed: float
    samples: list = field(default_factory=list, repr=False)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed if self.elapsed else 0.0

    @property
    def p50_us(self) -> float:
        return round(_percentile(self.samples, 0.50) * 1e6, 1)

    @property
    def p99_us(self) -> float:
        return round(_percentile(self.samples, 0.99) * 1e6, 1)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "operations": self.operations,
            "elapsed_s": round(self.elapsed, 6),
            "ops_per_second": round(self.ops_per_second, 1),
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
        }


@dataclass
class HotpathResult:
    """Three paired hot-path measurements; each pair slow-row-first.

    The three speedups are exactly the acceptance numbers the hot-path
    overhaul claims: copy-on-write snapshots vs the pre-COW deepcopy
    read path, per-shard write batching vs one-at-a-time submits, and
    hash-indexed field lookups vs the predicate scan.
    """

    shard_count: int
    seed: int
    rows: list

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def _speedup(self, fast: str, slow: str) -> float:
        base = self._row(slow).ops_per_second
        return self._row(fast).ops_per_second / base if base else 0.0

    @property
    def read_speedup(self) -> float:
        """COW-snapshot list/view throughput over the deepcopy baseline."""
        return self._speedup("read cow snapshots", "read deepcopy snapshots")

    @property
    def batch_speedup(self) -> float:
        """Batched write throughput over the unbatched submit loop."""
        return self._speedup("write batched", "write unbatched")

    @property
    def index_speedup(self) -> float:
        """Indexed field-lookup throughput over the full predicate scan."""
        return self._speedup("lookup indexed", "lookup scan")

    def as_dict(self) -> dict:
        return {
            "benchmark": "hotpath",
            "shard_count": self.shard_count,
            "seed": self.seed,
            "rows": [row.as_dict() for row in self.rows],
            "speedups": {
                "cow_read_vs_deepcopy": round(self.read_speedup, 2),
                "batched_vs_unbatched_writes": round(self.batch_speedup, 2),
                "indexed_vs_scan_lookups": round(self.index_speedup, 2),
            },
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_hotpath.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"hot-path microbenchmarks — {self.shard_count} shard(s), "
            f"seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"cow reads: {self.read_speedup:.2f}x deepcopy · "
            f"batched writes: {self.batch_speedup:.2f}x unbatched · "
            f"indexed lookups: {self.index_speedup:.2f}x scan"
        )
        return f"{header}\n{body}\n{footer}"


def _timed_loop(calls) -> tuple[float, list]:
    """Run ``calls`` (an iterable of zero-arg callables) back to back;
    wall-clock total plus the per-call latency series.  The collector is
    drained before and paused during the loop so one pass's garbage is
    never collected on a later pass's clock."""
    samples: list[float] = []
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for call in calls:
            began = time.perf_counter()
            call()
            samples.append(time.perf_counter() - began)
        return time.perf_counter() - start, samples
    finally:
        if was_enabled:
            gc.enable()


def _read_plan(spec, preload: int, reads: int, seed: int) -> list:
    """A seeded half-list, half-view mix over the preloaded id range —
    the listing page is where per-read snapshot cost actually compounds
    (every visible record is snapshotted per request)."""
    rng = random.Random(seed)
    users = (*spec.cleared_users, *spec.uncleared_users)
    plan = []
    for _ in range(reads):
        if rng.random() < 0.6:
            plan.append(("list", rng.choice(users)))
        else:
            plan.append(
                ("view", rng.randint(1, preload), rng.choice(users))
            )
    return plan


def _run_read_plan(gateway: ShardedGateway, spec, plan) -> HotpathRow:
    def call_for(op):
        if op[0] == "list":
            return lambda: gateway.list(spec.entity, op[1])
        return lambda: gateway.view(spec.entity, op[1], op[2])

    elapsed, samples = _timed_loop([call_for(op) for op in plan])
    return HotpathRow("", len(plan), elapsed, samples)


def _best_of(measures: Sequence, rounds: int) -> list:
    """The minimum-elapsed run of each measure over ``rounds`` rounds —
    the ``timeit`` discipline: scheduler and GC noise only ever slows a
    run down, so the fastest round is the least-noisy estimate of each
    path.  Rounds interleave the measures (A B A B …, not A A B B) so a
    noisy stretch of wall-clock cannot bias one side of a comparison."""
    best: list = [None] * len(measures)
    for _ in range(max(1, rounds)):
        for position, measure in enumerate(measures):
            row = measure()
            if best[position] is None or row.elapsed < best[position].elapsed:
                best[position] = row
    return best


def run_hotpath_bench(
    shard_count: int = 4,
    preload: int = 800,
    reads: int = 400,
    writes: int = 384,
    lookups: int = 300,
    seed: int = 23,
    rounds: int = 3,
    json_path=None,
) -> HotpathResult:
    """Measure the three hot paths this overhaul rebuilt, in one run.

    1. **Reads** — the same seeded list/view plan is replayed against the
       same preloaded uncached gateway twice: once with every shard store
       forced through the pre-COW ``deepcopy`` escape hatch
       (``deep_snapshots = True``), once on copy-on-write snapshots.
       The cache is disabled so the store read path is what's measured.
    2. **Writes** — ``writes`` identical payloads go through a fresh
       4-shard gateway one ``submit`` at a time, then through another
       fresh gateway via ``submit_many`` (per-shard coalescing, chunks of
       ``write_batch_max``).  Batched per-op latencies are amortized over
       each ``submit_many`` call.
    3. **Lookups** — one ``WebApp`` preloaded with scored reviews answers
       ``lookups`` equality queries by predicate scan, then the same
       queries again through a hash index on the scored field.

    ``json_path`` additionally writes the machine-readable report.
    """
    from repro.casestudy import easychair

    design_model = easychair.build_design()
    generator = LoadGenerator(seed=seed)
    spec = generator.spec
    rng = random.Random(seed)
    payloads = [spec.clean_payload(rng) for _ in range(max(preload, writes))]
    writer = spec.cleared_users[0]
    rows: list[HotpathRow] = []

    # -- 1. deepcopy vs copy-on-write snapshots on the read path ---------
    gateway = ShardedGateway.from_design(
        design_model, shard_count=shard_count, users=easychair.USERS,
        cache_capacity=0, max_queue_depth=4096, workers=shard_count,
    )
    try:
        for response in gateway.submit_many(
            spec.form, payloads[:preload], writer
        ):
            if response.status != 201:  # pragma: no cover - must land
                raise RuntimeError(f"preload write failed: {response.status}")
        plan = _read_plan(spec, preload, reads, seed)
        warmup = plan[: min(20, len(plan))]

        def read_pass(deep: bool) -> HotpathRow:
            for shard in gateway.shards:
                shard.store.set_deep_snapshots(deep)
            _run_read_plan(gateway, spec, warmup)
            return _run_read_plan(gateway, spec, plan)

        deep_row, cow_row = _best_of(
            [lambda: read_pass(True), lambda: read_pass(False)], rounds
        )
        deep_row.name = "read deepcopy snapshots"
        cow_row.name = "read cow snapshots"
        rows.extend([deep_row, cow_row])
        for shard in gateway.shards:
            shard.store.set_deep_snapshots(False)
    finally:
        gateway.close()

    # -- 2. unbatched vs per-shard batched writes ------------------------
    def write_gateway() -> ShardedGateway:
        return ShardedGateway.from_design(
            design_model, shard_count=shard_count, users=easychair.USERS,
            cache_capacity=0, max_queue_depth=4096, workers=shard_count,
        )

    def unbatched_pass() -> HotpathRow:
        gateway = write_gateway()
        try:
            elapsed, samples = _timed_loop([
                (lambda p=p: gateway.submit(spec.form, p, writer))
                for p in payloads[:writes]
            ])
            return HotpathRow("write unbatched", writes, elapsed, samples)
        finally:
            gateway.close()

    def batched_pass() -> HotpathRow:
        gateway = write_gateway()
        try:
            client_batch = max(1, gateway.write_batch_max) * shard_count
            samples = []
            start = time.perf_counter()
            for begin in range(0, writes, client_batch):
                group = payloads[begin:begin + client_batch]
                began = time.perf_counter()
                responses = gateway.submit_many(spec.form, group, writer)
                per_op = (time.perf_counter() - began) / len(group)
                samples.extend([per_op] * len(group))
                for response in responses:
                    if response.status != 201:  # pragma: no cover
                        raise RuntimeError(
                            f"batched write failed: {response.status}"
                        )
            elapsed = time.perf_counter() - start
            return HotpathRow("write batched", writes, elapsed, samples)
        finally:
            gateway.close()

    rows.extend(_best_of([unbatched_pass, batched_pass], rounds))

    # -- 3. predicate scan vs hash-indexed field lookups -----------------
    # point lookups on a unique field: the scan pays O(records) per query
    # no matter the selectivity, the hash index pays O(matches)
    app = easychair.build_app()
    for index in range(preload):
        review = easychair.complete_review()
        review["email_address"] = f"reviewer{index}@example.org"
        app.submit(spec.form, review, writer)
    store = app.store.entity(spec.entity)
    emails = [
        f"reviewer{rng.randrange(preload)}@example.org"
        for _ in range(lookups)
    ]
    def scan_pass() -> HotpathRow:
        elapsed, samples = _timed_loop([
            (lambda e=e: store.query(
                lambda data: data.get("email_address") == e
            ))
            for e in emails
        ])
        return HotpathRow("lookup scan", lookups, elapsed, samples)

    def indexed_pass() -> HotpathRow:
        elapsed, samples = _timed_loop([
            (lambda e=e: store.find_by("email_address", e))
            for e in emails
        ])
        return HotpathRow("lookup indexed", lookups, elapsed, samples)

    scan_row = _best_of([scan_pass], rounds)[0]
    store.create_index("email_address")
    indexed_row = _best_of([indexed_pass], rounds)[0]
    rows.extend([scan_row, indexed_row])

    result = HotpathResult(shard_count=shard_count, seed=seed, rows=rows)
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# Smoke mode: the acceptance floors, sized for tier-1
# ---------------------------------------------------------------------------


@dataclass
class SmokeResult:
    """Pass/fail verdict of the fast performance floors."""

    comparison: ComparisonResult
    attempts: int
    passed: bool
    failures: list
    min_speedup: float
    min_retention: float
    validation: Optional["ValidationBenchResult"] = None
    dqtelemetry: Optional["DQTelemetryBenchResult"] = None
    durability: Optional["DurabilityBenchResult"] = None
    replication: Optional["ReplicationBenchResult"] = None
    columnar: Optional["ColumnarBenchResult"] = None
    interchange: Optional["InterchangeBenchResult"] = None

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            self.comparison.render(),
            f"smoke floors ({self.attempts} attempt(s)): {verdict} — "
            f"cached >= {self.min_speedup:.1f}x baseline, "
            f"faulted >= {self.min_retention:.0%} of healthy",
        ]
        if self.validation is not None:
            lines.append(
                f"validation floors: fused "
                f"{self.validation.single_speedup:.2f}x legacy "
                f"(>= {self.validation.min_single_speedup:.1f}x), batched "
                f"{self.validation.batch_speedup:.2f}x legacy "
                f"(>= {self.validation.min_batch_speedup:.1f}x), "
                f"{self.validation.equivalence_diffs} behavioural diff(s) "
                f"over {self.validation.equivalence_records} record(s)"
            )
        if self.dqtelemetry is not None:
            lines.append(
                f"dq telemetry floors: scorecard "
                f"{self.dqtelemetry.read_speedup:.1f}x rescan "
                f"(>= {self.dqtelemetry.min_read_speedup:.1f}x), write "
                f"overhead {self.dqtelemetry.write_overhead:+.1%} "
                f"(<= {self.dqtelemetry.max_write_overhead:.0%}), "
                f"{self.dqtelemetry.equivalence_diffs} diff(s) over "
                f"{self.dqtelemetry.equivalence_checks} check(s)"
            )
        if self.durability is not None:
            lines.append(
                f"durability floors: {self.durability.backend} write "
                f"overhead {self.durability.write_overhead:+.1%} "
                f"(<= {self.durability.max_write_overhead:.0%}), recovery "
                f"{self.durability.recovery_seconds:.2f}s for "
                f"{self.durability.records} record(s) "
                f"(<= {self.durability.recovery_budget:.2f}s), "
                f"{self.durability.oracle_diffs} oracle diff(s), storm "
                f"{self.durability.storm.get('restarts', 0)} restart(s) / "
                f"{self.durability.storm.get('violations', 0)} violation(s)"
            )
        if self.replication is not None:
            lines.append(
                f"replication floors: split/merge retention "
                f"{self.replication.split_retention:.1%} "
                f"(>= {self.replication.min_split_retention:.0%}), "
                f"{self.replication.oracle_diffs} oracle diff(s), storm "
                f"max lag {self.replication.storm.get('max_served_lag', 0)} "
                f"(<= {self.replication.staleness_bound}), "
                f"{self.replication.storm.get('migrated', 0)} migrated / "
                f"{self.replication.storm.get('violations', 0)} violation(s)"
            )
        if self.columnar is not None:
            lines.append(
                f"columnar floors: sweep "
                f"{self.columnar.sweep_speedup:.2f}x row oracle "
                f"(>= {self.columnar.min_sweep_speedup:.1f}x, cold "
                f"{self.columnar.cold_sweep_speedup:.2f}x >= "
                f"{self.columnar.min_cold_sweep_speedup:.1f}x), absorb "
                f"{self.columnar.absorb_speedup:.2f}x row walk "
                f"(>= {self.columnar.min_absorb_speedup:.1f}x), scan "
                f"{self.columnar.lookup_speedup:.2f}x dict scan "
                f"(>= {self.columnar.min_scan_speedup:.1f}x), kernels "
                f"{self.columnar.kernels.get('mode', '?')}, "
                f"{self.columnar.equivalence_diffs} diff(s) over "
                f"{self.columnar.equivalence_checks} check(s), "
                f"{self.columnar.state_diffs} state diff(s) over "
                f"{self.columnar.state_checks} drill(s)"
            )
        if self.interchange is not None:
            lines.append(
                f"interchange floors: codec "
                f"{self.interchange.codec_speedup:.2f}x tagged JSON "
                f"(>= {self.interchange.min_codec_speedup:.1f}x), "
                f"catch-up {self.interchange.catchup_speedup:.2f}x "
                f"per-op framed "
                f"(>= {self.interchange.min_catchup_speedup:.1f}x), "
                f"{self.interchange.state_diffs} state diff(s) over "
                f"{self.interchange.state_checks} check(s), "
                f"{self.interchange.equivalence_diffs} equivalence "
                f"diff(s), storm "
                f"{'byte-identical' if self.interchange.storm.get('identical') else 'DIVERGED'}"
                f" on/off"
            )
        lines.extend(f"  floor missed: {failure}" for failure in self.failures)
        return "\n".join(lines)


def run_smoke(
    shard_count: int = 4,
    count: int = 300,
    preload: int = 200,
    seed: int = 23,
    min_speedup: float = 2.0,
    min_retention: float = 0.5,
    attempts: int = 3,
) -> SmokeResult:
    """A fast floor check: cached gateway at least ``min_speedup`` x the
    single-shard baseline, at least ``min_retention`` of healthy
    throughput retained with shard 0 down, the compiled-validation
    floors (:func:`run_validation_bench`, at smoke scale) and the
    streaming-DQ-telemetry floors (:func:`run_dqtelemetry_bench`, at
    smoke scale — the full floors hold there too, with margin) and the
    durability floors (:func:`run_durability_bench`, at smoke scale —
    WAL write overhead, crash recovery, the post-recovery oracle and
    one seeded kill-restart storm) and the typed-buffer interchange
    floors (:func:`run_interchange_bench`, at smoke scale but with the
    catch-up lag kept past the 1k-op line the acceptance names).
    Wall-clock comparisons on a busy machine can flake,
    so a missed floor is retried up to ``attempts`` times and only a
    repeated miss fails."""
    failures: list = []
    result = None
    validation = None
    dqtelemetry = None
    durability = None
    replication = None
    columnar = None
    interchange = None
    for attempt in range(1, attempts + 1):
        result = run_comparison(
            shard_count=shard_count, count=count, preload=preload,
            seed=seed, include_faulted=True,
        )
        failures = []
        if result.speedup < min_speedup:
            failures.append(
                f"cached speedup {result.speedup:.2f}x < "
                f"{min_speedup:.1f}x baseline"
            )
        if result.degradation < min_retention:
            failures.append(
                f"faulted retention {result.degradation:.1%} < "
                f"{min_retention:.0%} of healthy"
            )
        validation = run_validation_bench(
            count=800, equivalence_count=200, seed=seed, rounds=2,
        )
        failures.extend(validation.floor_failures())
        dqtelemetry = run_dqtelemetry_bench(
            shard_count=shard_count, records=2_000, write_records=1_500,
            live_reads=50, rescan_reads=5, suggest_reads=10,
            equivalence_ops=120, seed=seed, rounds=2,
        )
        failures.extend(dqtelemetry.floor_failures())
        durability = run_durability_bench(
            shard_count=shard_count, records=3_000, write_records=2_400,
            storm_count=150, kills=2, seed=seed, rounds=3,
            # at smoke scale the paired ratio is noisy on a loaded
            # machine; the strict 25% floor lives in --durability
            max_write_overhead=0.40,
        )
        failures.extend(durability.floor_failures())
        replication = run_replication_bench(
            shard_count=3, count=150, preload=12, storm_count=150,
            seed=seed, rounds=2,
            # at smoke scale the paired ratio is noisy on a loaded
            # machine; the strict 40% floor lives in --replication
            min_split_retention=0.25,
        )
        failures.extend(replication.floor_failures())
        columnar = run_columnar_bench(
            records=1_200, seed=seed, rounds=2,
            # the state drills (WAL round trip, same-seed chaos reruns)
            # already run at full weight in --columnar; smoke keeps the
            # speedup floors and oracle equivalences only.  Smoke-sized
            # chunks leave the kernels less to amortize and the paired
            # ratios get noisy — the strict mode-aware floors (3x/2x
            # absorb, 1.5x scan) live in --columnar
            drills=False, min_absorb_speedup=1.8, min_scan_speedup=1.2,
        )
        failures.extend(columnar.floor_failures())
        interchange = run_interchange_bench(
            # the lag stays past the 1k-op line so the 3x catch-up
            # floor is measured where the acceptance defines it; the
            # other knobs shrink to smoke scale
            lag=1_200, batches=2, batch_rows=64, column_values=4_096,
            codec_iterations=12, shard_count=3, preload=120,
            scorecard_reads=24, storm_count=100, seed=seed, rounds=2,
        )
        failures.extend(interchange.floor_failures())
        if not failures:
            return SmokeResult(
                result, attempt, True, [], min_speedup, min_retention,
                validation, dqtelemetry, durability, replication, columnar,
                interchange,
            )
    return SmokeResult(
        result, attempts, False, failures, min_speedup, min_retention,
        validation, dqtelemetry, durability, replication, columnar,
        interchange,
    )


# ---------------------------------------------------------------------------
# Validation bench: fused compiled plans vs the legacy interpreted walk
# ---------------------------------------------------------------------------


@dataclass
class ValidationBenchResult:
    """Fused-validation measurements plus the zero-diff equivalence sweep.

    The floors are the compiled-pipeline acceptance numbers: a fused
    single-record ``findings()`` at least ``min_single_speedup`` x the
    legacy interpreted walk, the vectorized prebound batch at least
    ``min_batch_speedup`` x per-record legacy, and **zero** behavioural
    diffs between the two paths across the mixed clean/defective/raw
    EasyChair sweep.  Dirty-mix rows are informational (defective records
    take the exact slow lane, so their margin is structurally smaller).
    """

    seed: int
    count: int
    rows: list
    equivalence_records: int
    equivalence_diffs: int
    plan_cache: dict
    signature: str
    min_single_speedup: float = 3.0
    min_batch_speedup: float = 5.0

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def _speedup(self, fast: str, slow: str) -> float:
        base = self._row(slow).ops_per_second
        return self._row(fast).ops_per_second / base if base else 0.0

    @property
    def single_speedup(self) -> float:
        """Fused single-record ``findings()`` over the legacy walk."""
        return self._speedup("validate fused", "validate legacy")

    @property
    def batch_speedup(self) -> float:
        """Vectorized prebound ``check_batch`` over per-record legacy."""
        return self._speedup("validate fused batch", "validate legacy")

    @property
    def admit_speedup(self) -> float:
        """Fail-fast ``admit()`` over the legacy walk (informational)."""
        return self._speedup("admit fused", "validate legacy")

    @property
    def dirty_speedup(self) -> float:
        """Fused vs legacy on the defective mix (informational)."""
        return self._speedup(
            "validate fused dirty mix", "validate legacy dirty mix"
        )

    def floor_failures(self) -> list:
        """Every missed acceptance floor, as human-readable strings."""
        failures = []
        if self.single_speedup < self.min_single_speedup:
            failures.append(
                f"fused validation {self.single_speedup:.2f}x < "
                f"{self.min_single_speedup:.1f}x legacy"
            )
        if self.batch_speedup < self.min_batch_speedup:
            failures.append(
                f"batched validation {self.batch_speedup:.2f}x < "
                f"{self.min_batch_speedup:.1f}x per-record legacy"
            )
        if self.equivalence_diffs:
            failures.append(
                f"{self.equivalence_diffs} behavioural diff(s) between "
                f"fused and legacy over {self.equivalence_records} record(s)"
            )
        if not self.plan_cache.get("hits"):
            failures.append(
                "plan cache never hit — the bench must exercise the "
                "shared-cache steady state (warm-up regression)"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "validate",
            "seed": self.seed,
            "count": self.count,
            "plan_signature": self.signature,
            "rows": [row.as_dict() for row in self.rows],
            "speedups": {
                "fused_single_vs_legacy": round(self.single_speedup, 2),
                "fused_batch_vs_legacy": round(self.batch_speedup, 2),
                "fused_admit_vs_legacy": round(self.admit_speedup, 2),
                "fused_vs_legacy_dirty_mix": round(self.dirty_speedup, 2),
            },
            "floors": {
                "min_single_speedup": self.min_single_speedup,
                "min_batch_speedup": self.min_batch_speedup,
                "max_equivalence_diffs": 0,
                "met": self.passed,
            },
            "equivalence": {
                "records": self.equivalence_records,
                "diffs": self.equivalence_diffs,
            },
            "plan_cache": dict(self.plan_cache),
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_validate.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"validation pipeline bench — EasyChair chain "
            f"(plan {self.signature}), {self.count} record(s), "
            f"seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"fused: {self.single_speedup:.2f}x legacy · "
            f"batched: {self.batch_speedup:.2f}x legacy · "
            f"admit: {self.admit_speedup:.2f}x legacy · "
            f"dirty mix: {self.dirty_speedup:.2f}x\n"
            f"equivalence: {self.equivalence_diffs} diff(s) over "
            f"{self.equivalence_records} mixed record(s); floors "
            f"{'met' if self.passed else 'MISSED'} "
            f"(>= {self.min_single_speedup:.1f}x single, "
            f">= {self.min_batch_speedup:.1f}x batched, zero diffs)"
        )
        return f"{header}\n{body}\n{footer}"


def run_validation_bench(
    count: int = 2000,
    batch_size: int = 128,
    dirty_fraction: float = 0.25,
    equivalence_count: int = 600,
    seed: int = 23,
    rounds: int = 3,
    min_single_speedup: float = 3.0,
    min_batch_speedup: float = 5.0,
    json_path=None,
) -> ValidationBenchResult:
    """Measure the compiled validation pipeline against its legacy oracle.

    The workload is the paper's own: the EasyChair review form's full
    validator chain (completeness over all ten fields plus precision over
    the five scored fields), compiled once into a fused plan.  Five paths
    run over the identical ``count`` prebound clean records, best-of-
    ``rounds`` with rounds interleaved:

    1. **validate legacy** — the per-record interpreted walk;
    2. **validate fused** — the fused ``findings()`` fast path;
    3. **validate fused batch** — vectorized ``check_batch`` in prebound
       chunks of ``batch_size`` (per-op latencies amortized per chunk);
    4. **admit fused** — the fail-fast boolean admission;
    5. a **dirty mix** pair (``dirty_fraction`` defective records) rides
       along informationally — defective records take the exact slow
       lane, so this bounds the worst-case margin.

    The equivalence sweep then replays ``equivalence_count`` mixed
    clean/defective payloads — bound, raw (unbound layouts), and a few
    adversarial shapes — through both paths, single and batched, and
    counts behavioural diffs; the floor is zero.

    ``json_path`` additionally writes ``BENCH_validate.json``.
    """
    from repro.casestudy import easychair
    from repro.runtime.vpipeline import PlanCache

    app = easychair.build_app()
    generator = LoadGenerator(seed=seed)
    spec = generator.spec
    form = app.form(spec.form)
    cache = PlanCache()
    form.use_plan_cache(cache)
    plan = form.compiled_plan()
    legacy = form._validate_legacy

    # Warm the cache the way a sharded gateway does: every shard's
    # replica of the form resolves the same structural signature through
    # the one shared cache — a single compile (the miss above), hits
    # thereafter.  The bench measures that steady state, so the reported
    # profile must show the hits, not a perpetually cold hits-0 cache.
    for _ in range(3):
        replica = easychair.build_app().form(spec.form)
        replica.use_plan_cache(cache)
        if replica.compiled_plan() is not plan:  # pragma: no cover
            raise AssertionError("shared plan cache returned a new plan")

    rng = random.Random(seed)
    clean = [form.bind(spec.clean_payload(rng)) for _ in range(count)]
    mixed = [
        form.bind(
            spec.defective_payload(rng)
            if rng.random() < dirty_fraction
            else spec.clean_payload(rng)
        )
        for _ in range(count)
    ]

    def legacy_pass(records, name) -> HotpathRow:
        elapsed, samples = _timed_loop(
            [(lambda r=r: legacy(r)) for r in records]
        )
        return HotpathRow(name, len(records), elapsed, samples)

    def fused_pass(records, name) -> HotpathRow:
        findings = plan.findings
        elapsed, samples = _timed_loop(
            [(lambda r=r: findings(r)) for r in records]
        )
        return HotpathRow(name, len(records), elapsed, samples)

    def batch_pass() -> HotpathRow:
        check_batch = plan.check_batch
        samples = []
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for begin in range(0, count, batch_size):
                chunk = clean[begin:begin + batch_size]
                began = time.perf_counter()
                check_batch(chunk, True)
                per_op = (time.perf_counter() - began) / len(chunk)
                samples.extend([per_op] * len(chunk))
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        return HotpathRow("validate fused batch", count, elapsed, samples)

    def admit_pass() -> HotpathRow:
        admit = plan.admit
        elapsed, samples = _timed_loop(
            [(lambda r=r: admit(r)) for r in clean]
        )
        return HotpathRow("admit fused", count, elapsed, samples)

    rows = _best_of(
        [
            lambda: legacy_pass(clean, "validate legacy"),
            lambda: fused_pass(clean, "validate fused"),
            batch_pass,
            admit_pass,
            lambda: legacy_pass(mixed, "validate legacy dirty mix"),
            lambda: fused_pass(mixed, "validate fused dirty mix"),
        ],
        rounds,
    )

    # -- zero-behavioural-diff sweep: fused must equal legacy exactly ----
    eq_rng = random.Random(seed + 1)
    sweep: list[dict] = []
    for _ in range(equivalence_count):
        payload = (
            spec.defective_payload(eq_rng)
            if eq_rng.random() < 0.5
            else spec.clean_payload(eq_rng)
        )
        # alternate bound records (the fast layout) with raw payloads
        # (extra/missing keys — the layout guard must reroute these)
        sweep.append(form.bind(payload) if eq_rng.random() < 0.5 else payload)
    sweep.extend([
        {},  # everything missing
        {"overall_evaluation": "not-a-number", "unknown_key": object()},
        {field: "" for field in form.fields},  # all blank strings
        {field: 2.5 for field in form.fields},  # floats take the slow lane
        dict(reversed(list(form.bind(spec.clean_payload(eq_rng)).items()))),
    ])
    diffs = 0
    for record in sweep:
        if plan.findings(record) != legacy(record):
            diffs += 1  # pragma: no cover - would be a compiler bug
    batched = plan.check_batch(sweep)
    for per_batch, record in zip(batched, sweep):
        if per_batch != legacy(record):
            diffs += 1  # pragma: no cover - would be a compiler bug
        if plan.admit(record) != (not legacy(record)):
            diffs += 1  # pragma: no cover - would be a compiler bug

    result = ValidationBenchResult(
        seed=seed,
        count=count,
        rows=rows,
        equivalence_records=len(sweep),
        equivalence_diffs=diffs,
        plan_cache=cache.stats(),
        signature=plan.digest,
        min_single_speedup=min_single_speedup,
        min_batch_speedup=min_batch_speedup,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# DQ telemetry bench: streaming accumulators vs the full-rescan oracle
# ---------------------------------------------------------------------------


@dataclass
class DQTelemetryBenchResult:
    """Streaming-telemetry measurements plus the zero-diff equivalence sweep.

    The floors are the incremental-telemetry acceptance numbers: a live
    cluster scorecard read at least ``min_read_speedup`` x the full
    rescan at ``records`` preloaded records, the telemetry-on write path
    within ``max_write_overhead`` of telemetry-off, and **zero**
    score/suggestion diffs between the live accumulators and the rescan
    oracle across the seeded EasyChair create/reject/modify/delete
    sweep.  The profiler-suggestion rows are informational.
    """

    seed: int
    shard_count: int
    records: int
    write_records: int
    rows: list
    equivalence_checks: int
    equivalence_diffs: int
    telemetry: dict
    min_read_speedup: float = 10.0
    max_write_overhead: float = 0.10

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    @property
    def read_speedup(self) -> float:
        """Live cluster scorecard over the full rescan."""
        base = self._row("scorecard rescan").ops_per_second
        return (
            self._row("scorecard live").ops_per_second / base if base else 0.0
        )

    @property
    def suggest_speedup(self) -> float:
        """Live profiler suggestions over the rescan profiler
        (informational)."""
        base = self._row("suggest rescan").ops_per_second
        return (
            self._row("suggest live").ops_per_second / base if base else 0.0
        )

    @property
    def write_overhead(self) -> float:
        """Relative write-path cost of keeping the accumulators fresh:
        0.04 means telemetry-on writes ran 4% slower than telemetry-off."""
        on = self._row("write telemetry on").ops_per_second
        if not on:
            return float("inf")
        return self._row("write telemetry off").ops_per_second / on - 1.0

    def floor_failures(self) -> list:
        failures = []
        if self.read_speedup < self.min_read_speedup:
            failures.append(
                f"live scorecard {self.read_speedup:.2f}x < "
                f"{self.min_read_speedup:.1f}x rescan "
                f"at {self.records} record(s)"
            )
        if self.write_overhead > self.max_write_overhead:
            failures.append(
                f"telemetry write overhead {self.write_overhead:.1%} > "
                f"{self.max_write_overhead:.0%}"
            )
        if self.equivalence_diffs:
            failures.append(
                f"{self.equivalence_diffs} live-vs-rescan diff(s) over "
                f"{self.equivalence_checks} equivalence check(s)"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "dqtelemetry",
            "seed": self.seed,
            "shard_count": self.shard_count,
            "records": self.records,
            "write_records": self.write_records,
            "rows": [row.as_dict() for row in self.rows],
            "speedups": {
                "scorecard_live_vs_rescan": round(self.read_speedup, 2),
                "suggest_live_vs_rescan": round(self.suggest_speedup, 2),
            },
            "write_overhead": round(self.write_overhead, 4),
            "floors": {
                "min_read_speedup": self.min_read_speedup,
                "max_write_overhead": self.max_write_overhead,
                "max_equivalence_diffs": 0,
                "met": self.passed,
            },
            "equivalence": {
                "checks": self.equivalence_checks,
                "diffs": self.equivalence_diffs,
            },
            "telemetry": dict(self.telemetry),
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_dqtelemetry.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"dq telemetry bench — EasyChair entity, "
            f"{self.records} record(s) preloaded over "
            f"{self.shard_count} shard(s), seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"scorecard: {self.read_speedup:.1f}x rescan · "
            f"suggest: {self.suggest_speedup:.1f}x rescan · "
            f"write overhead: {self.write_overhead:+.1%}\n"
            f"equivalence: {self.equivalence_diffs} diff(s) over "
            f"{self.equivalence_checks} check(s); floors "
            f"{'met' if self.passed else 'MISSED'} "
            f"(>= {self.min_read_speedup:.0f}x read, "
            f"<= {self.max_write_overhead:.0%} write overhead, zero diffs)"
        )
        return f"{header}\n{body}\n{footer}"


def _scorecard_diffs(oracle_lines, live_lines) -> int:
    """Count disagreements between two score-line lists under the
    documented tolerance: Precision/Traceability/Confidentiality and all
    evidence strings must match exactly, Completeness/Currentness to
    float tolerance."""
    from repro.dq.streaming import scores_close

    exact = {"Precision", "Traceability", "Confidentiality"}
    diffs = 0
    if live_lines is None or len(oracle_lines) != len(live_lines):
        return 1
    for oracle, live in zip(oracle_lines, live_lines):
        if (
            oracle.characteristic != live.characteristic
            or oracle.evidence != live.evidence
        ):
            diffs += 1
        elif oracle.characteristic in exact:
            if oracle.score != live.score:
                diffs += 1
        elif not scores_close(oracle.score, live.score):
            diffs += 1
    return diffs


def run_dqtelemetry_bench(
    shard_count: int = 4,
    records: int = 50_000,
    write_records: int = 10_000,
    live_reads: int = 200,
    rescan_reads: int = 5,
    suggest_reads: int = 50,
    equivalence_ops: int = 400,
    seed: int = 23,
    rounds: int = 2,
    min_read_speedup: float = 10.0,
    max_write_overhead: float = 0.10,
    json_path=None,
) -> DQTelemetryBenchResult:
    """Measure streaming DQ telemetry against the full-rescan oracle.

    Three phases, all over the EasyChair review workload:

    1. **Write overhead** — ``write_records`` identical payloads go
       through two fresh gateways via ``submit_many`` (per-shard
       coalescing), one with the accumulators live, one with telemetry
       disabled, best-of-``rounds`` interleaved.  Floor: the telemetry
       gateway keeps within ``max_write_overhead`` of the other.
    2. **Reads at scale** — one gateway preloaded with ``records``
       records answers ``live_reads`` cluster scorecards from merged
       accumulator snapshots and ``rescan_reads`` from the O(records)
       rescan twin.  Floor: live at least ``min_read_speedup`` x rescan.
       Live vs rescan profiler suggestions ride along informationally.
    3. **Equivalence sweep** — a fresh small gateway replays
       ``equivalence_ops`` seeded operations (batched clean creates,
       DQ-rejected defectives, direct store modifies and deletes) and
       after every burst compares live vs rescan score lines, overall
       score, and profiler suggestions.  Floor: zero diffs.

    ``json_path`` additionally writes ``BENCH_dqtelemetry.json``.
    """
    from repro.casestudy import easychair
    from repro.dq.metrics import Measurement, weighted_score
    from repro.dq.profiling import DataProfiler
    from repro.dq.streaming import LiveProfile

    generator = LoadGenerator(seed=seed)
    spec = generator.spec
    writer = spec.cleared_users[0]
    design_model = easychair.build_design()
    rng = random.Random(seed)
    rows: list[HotpathRow] = []

    def fresh_gateway() -> ShardedGateway:
        return ShardedGateway.from_design(
            design_model, shard_count=shard_count, users=easychair.USERS,
            cache_capacity=0, max_queue_depth=4096, workers=shard_count,
        )

    def drive_writes(gateway, payloads) -> HotpathRow:
        client_batch = max(1, gateway.write_batch_max) * shard_count
        samples = []
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for begin in range(0, len(payloads), client_batch):
                group = payloads[begin:begin + client_batch]
                began = time.perf_counter()
                responses = gateway.submit_many(spec.form, group, writer)
                per_op = (time.perf_counter() - began) / len(group)
                samples.extend([per_op] * len(group))
                for response in responses:
                    if response.status != 201:  # pragma: no cover
                        raise RuntimeError(
                            f"bench write failed: {response.status}"
                        )
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        return HotpathRow("write", len(payloads), elapsed, samples)

    # -- 1. write-path overhead: telemetry on vs off ---------------------
    write_payloads = [spec.clean_payload(rng) for _ in range(write_records)]

    # One throwaway pass warms every code path (allocator arenas, method
    # caches, lazy imports) so first-touch costs do not land entirely on
    # whichever measured pass happens to run first.
    warmup_gateway = fresh_gateway()
    try:
        drive_writes(warmup_gateway, write_payloads[:512])
    finally:
        warmup_gateway.close()

    def write_pass(telemetry_on: bool) -> HotpathRow:
        gateway = fresh_gateway()
        try:
            if not telemetry_on:
                for shard in gateway.shards:
                    shard.store.set_telemetry(False)
            row = drive_writes(gateway, write_payloads)
            row.name = (
                "write telemetry on" if telemetry_on
                else "write telemetry off"
            )
            return row
        finally:
            gateway.close()

    rows.extend(_best_of(
        [lambda: write_pass(True), lambda: write_pass(False)], rounds
    ))

    # -- 2. live vs rescan reads at scale --------------------------------
    read_payloads = [spec.clean_payload(rng) for _ in range(records)]
    gateway = fresh_gateway()
    try:
        drive_writes(gateway, read_payloads)
        fields = easychair.ALL_REVIEW_FIELDS
        bounds = easychair.SCORE_BOUNDS
        entity = spec.entity

        def live_pass() -> HotpathRow:
            elapsed, samples = _timed_loop([
                (lambda: gateway.live_scorecard(
                    entity, fields, bounds, max_age=records
                ))
            ] * live_reads)
            return HotpathRow("scorecard live", live_reads, elapsed, samples)

        def rescan_pass() -> HotpathRow:
            elapsed, samples = _timed_loop([
                (lambda: gateway.rescan_scorecard(
                    entity, fields, bounds, max_age=records
                ))
            ] * rescan_reads)
            return HotpathRow(
                "scorecard rescan", rescan_reads, elapsed, samples
            )

        def suggest_live_pass() -> HotpathRow:
            elapsed, samples = _timed_loop([
                (lambda: LiveProfile(gateway.dq_telemetry(entity)).suggest())
            ] * suggest_reads)
            return HotpathRow("suggest live", suggest_reads, elapsed, samples)

        def suggest_rescan_pass() -> HotpathRow:
            def rescan_suggest():
                profiler = DataProfiler()
                for shard in gateway.shards:
                    profiler.add_records(
                        stored.data
                        for stored in shard.store.entity(entity).all()
                    )
                return profiler.suggest()

            elapsed, samples = _timed_loop([rescan_suggest] * 2)
            return HotpathRow("suggest rescan", 2, elapsed, samples)

        rows.extend(_best_of(
            [live_pass, rescan_pass, suggest_live_pass, suggest_rescan_pass],
            rounds,
        ))

        # the at-scale readings must agree before speed means anything
        equivalence_checks = 1
        equivalence_diffs = _scorecard_diffs(
            gateway.rescan_scorecard(entity, fields, bounds, max_age=records),
            gateway.live_scorecard(entity, fields, bounds, max_age=records),
        )
        telemetry_stats = gateway.telemetry_stats()
    finally:
        gateway.close()

    # -- 3. seeded equivalence sweep: creates / rejects / modifies /
    #       deletes, live == rescan after every burst -------------------
    sweep_rng = random.Random(seed + 7)
    gateway = fresh_gateway()
    try:
        entity = spec.entity
        fields = easychair.ALL_REVIEW_FIELDS
        bounds = easychair.SCORE_BOUNDS
        live_ids: list[tuple[int, int]] = []  # (shard_index, record_id)
        applied = 0
        while applied < equivalence_ops:
            burst = min(equivalence_ops - applied, 40)
            payloads = [
                spec.defective_payload(sweep_rng)
                if sweep_rng.random() < 0.25
                else spec.clean_payload(sweep_rng)
                for _ in range(burst)
            ]
            responses = gateway.submit_many(spec.form, payloads, writer)
            for response in responses:
                if response.status == 201:
                    live_ids.append(
                        (response.body["shard"], response.body["id"])
                    )
            applied += burst
            # a few direct modifies and deletes against random shards:
            # the paths submit_many never exercises
            sweep_rng.shuffle(live_ids)
            for _ in range(min(6, len(live_ids) // 4)):
                shard_index, record_id = live_ids.pop()
                shard = gateway.shards[shard_index]
                if sweep_rng.random() < 0.5:
                    shard.store.modify(
                        entity, record_id,
                        {"overall_evaluation": sweep_rng.randint(-3, 3)},
                        writer,
                    )
                    live_ids.insert(0, (shard_index, record_id))
                else:
                    shard.store.entity(entity).delete(record_id)
            max_age = max(1, sweep_rng.randrange(50, 500))
            oracle_lines = gateway.rescan_scorecard(
                entity, fields, bounds, max_age=max_age
            )
            live_lines = gateway.live_scorecard(
                entity, fields, bounds, max_age=max_age
            )
            equivalence_checks += 1
            equivalence_diffs += _scorecard_diffs(oracle_lines, live_lines)
            if live_lines is not None:
                oracle_overall = weighted_score([
                    Measurement(line.characteristic, line.score)
                    for line in oracle_lines
                ])
                live_overall = weighted_score([
                    Measurement(line.characteristic, line.score)
                    for line in live_lines
                ])
                from repro.dq.streaming import scores_close

                equivalence_checks += 1
                if not scores_close(oracle_overall, live_overall):
                    equivalence_diffs += 1
            profiler = DataProfiler()
            for shard in gateway.shards:
                profiler.add_records(
                    stored.data
                    for stored in shard.store.entity(entity).all()
                )
            live_suggestions = LiveProfile(
                gateway.dq_telemetry(entity)
            ).suggest()
            equivalence_checks += 1
            if profiler.suggest() != live_suggestions:
                equivalence_diffs += 1
    finally:
        gateway.close()

    result = DQTelemetryBenchResult(
        seed=seed,
        shard_count=shard_count,
        records=records,
        write_records=write_records,
        rows=rows,
        equivalence_checks=equivalence_checks,
        equivalence_diffs=equivalence_diffs,
        telemetry=telemetry_stats,
        min_read_speedup=min_read_speedup,
        max_write_overhead=max_write_overhead,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# Columnar bench: spine sweeps, zone maps, column absorption vs row oracles
# ---------------------------------------------------------------------------


@dataclass
class ColumnarBenchResult:
    """Columnar-spine measurements plus the row-oracle equivalence sweeps.

    The floors are the columnar-refactor acceptance numbers: the
    store-resident DQ sweep (:meth:`EntityStore.revalidate` down the
    column spine with warm zone maps) at least ``min_sweep_speedup`` x
    the row-oriented ``check_batch`` oracle over the same records,
    telemetry column absorption at least ``min_absorb_speedup`` x the
    row walk, the cold sweep (first sweep after a mutation — the
    incremental zone-map/buffer maintenance means no rebuild) at least
    ``min_cold_sweep_speedup`` x, the column equality scan at least
    ``min_scan_speedup`` x the dict scan, **zero** equivalence diffs
    against every retained row oracle (sweep vs ``check_batch``,
    column/indexed ``find_by`` vs the predicate scan,
    ``readable_snapshots`` vs ``select_snapshots``, column vs row
    absorption state), and **zero** state diffs across the WAL
    kill-recover drill and the same-seed chaos/topology reruns
    (``capture_state`` and the cluster checksums must be byte-equal).
    The absorb and scan floors are mode-aware (``kernels["mode"]``):
    the numpy lanes carry higher floors than the stdlib fallback.
    """

    seed: int
    records: int
    rows: list
    equivalence_checks: int
    equivalence_diffs: int
    state_checks: int
    state_diffs: int
    zone_maps: dict
    kernels: dict = field(default_factory=dict)
    min_sweep_speedup: float = 2.0
    min_absorb_speedup: float = 2.0
    min_cold_sweep_speedup: float = 1.0
    min_scan_speedup: float = 1.0

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def _speedup(self, fast: str, slow: str) -> float:
        base = self._row(slow).ops_per_second
        return self._row(fast).ops_per_second / base if base else 0.0

    @property
    def sweep_speedup(self) -> float:
        """Warm columnar sweep over the row ``check_batch`` oracle."""
        return self._speedup("columnar sweep (warm)", "row sweep (oracle)")

    @property
    def cold_sweep_speedup(self) -> float:
        """First sweep after a mutation — the kernels are maintained
        incrementally at write time, so no rebuild happens here."""
        return self._speedup("columnar sweep (cold)", "row sweep (oracle)")

    @property
    def absorb_speedup(self) -> float:
        """Column absorption over the row-walk oracle."""
        return self._speedup(
            "telemetry absorb columns", "telemetry absorb rows"
        )

    @property
    def lookup_speedup(self) -> float:
        """Column equality scan over the dict scan."""
        return self._speedup("lookup column scan", "lookup dict scan")

    def floor_failures(self) -> list:
        failures = []
        if self.sweep_speedup < self.min_sweep_speedup:
            failures.append(
                f"columnar sweep {self.sweep_speedup:.2f}x < "
                f"{self.min_sweep_speedup:.1f}x row oracle"
            )
        if self.cold_sweep_speedup < self.min_cold_sweep_speedup:
            failures.append(
                f"cold columnar sweep {self.cold_sweep_speedup:.2f}x < "
                f"{self.min_cold_sweep_speedup:.1f}x row oracle"
            )
        if self.absorb_speedup < self.min_absorb_speedup:
            failures.append(
                f"column absorption {self.absorb_speedup:.2f}x < "
                f"{self.min_absorb_speedup:.1f}x row walk"
            )
        if self.lookup_speedup < self.min_scan_speedup:
            failures.append(
                f"column scan {self.lookup_speedup:.2f}x < "
                f"{self.min_scan_speedup:.1f}x dict scan"
            )
        if self.equivalence_diffs:
            failures.append(
                f"{self.equivalence_diffs} columnar-vs-row-oracle diff(s) "
                f"over {self.equivalence_checks} check(s)"
            )
        if self.state_diffs:
            failures.append(
                f"{self.state_diffs} state diff(s) over "
                f"{self.state_checks} recovery/determinism drill(s)"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "columnar",
            "seed": self.seed,
            "records": self.records,
            "rows": [row.as_dict() for row in self.rows],
            "speedups": {
                "columnar_sweep_warm_vs_row_oracle": round(
                    self.sweep_speedup, 2
                ),
                "columnar_sweep_cold_vs_row_oracle": round(
                    self.cold_sweep_speedup, 2
                ),
                "column_absorb_vs_row_walk": round(self.absorb_speedup, 2),
                "column_scan_vs_dict_scan": round(self.lookup_speedup, 2),
            },
            "floors": {
                "min_sweep_speedup": self.min_sweep_speedup,
                "min_cold_sweep_speedup": self.min_cold_sweep_speedup,
                "min_absorb_speedup": self.min_absorb_speedup,
                "min_scan_speedup": self.min_scan_speedup,
                "max_equivalence_diffs": 0,
                "max_state_diffs": 0,
                "met": self.passed,
            },
            "equivalence": {
                "checks": self.equivalence_checks,
                "diffs": self.equivalence_diffs,
            },
            "state": {
                "checks": self.state_checks,
                "diffs": self.state_diffs,
            },
            "zone_maps": self.zone_maps,
            "kernels": self.kernels,
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_columnar.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"columnar spine bench — EasyChair review entity, "
            f"{self.records} record(s), seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        mode = self.kernels.get("mode", "list")
        promoted = self.kernels.get("promotions", 0)
        footer = (
            f"kernels: {mode} ({promoted} column(s) promoted, "
            f"{self.kernels.get('demotions', 0)} demotion(s))\n"
            f"sweep: {self.sweep_speedup:.2f}x row oracle (cold "
            f"{self.cold_sweep_speedup:.2f}x) · absorb: "
            f"{self.absorb_speedup:.2f}x row walk · column scan: "
            f"{self.lookup_speedup:.2f}x dict scan\n"
            f"equivalence: {self.equivalence_diffs} diff(s) over "
            f"{self.equivalence_checks} check(s) · state: "
            f"{self.state_diffs} diff(s) over {self.state_checks} "
            f"drill(s); floors {'met' if self.passed else 'MISSED'} "
            f"(>= {self.min_sweep_speedup:.1f}x sweep, cold >= "
            f"{self.min_cold_sweep_speedup:.1f}x, absorb >= "
            f"{self.min_absorb_speedup:.1f}x, scan >= "
            f"{self.min_scan_speedup:.1f}x, zero diffs)"
        )
        return f"{header}\n{body}\n{footer}"


def run_columnar_bench(
    records: int = 4_000,
    seed: int = 23,
    rounds: int = 3,
    min_sweep_speedup: float = 2.0,
    min_absorb_speedup: Optional[float] = None,
    min_cold_sweep_speedup: float = 1.0,
    min_scan_speedup: Optional[float] = None,
    drills: bool = True,
    json_path=None,
) -> ColumnarBenchResult:
    """Measure the columnar spine against its retained row oracles.

    Four phases, all over the EasyChair review workload:

    1. **Store-resident DQ sweep** — ``records`` clean bound records go
       into one :class:`EntityStore`; :meth:`EntityStore.revalidate`
       re-runs the compiled plan down the columns (zone maps usually
       prove whole columns clean without touching a cell), against the
       row oracle ``check_batch`` over the same pre-materialized dicts,
       best-of-``rounds``.  Floors: warm sweep at least
       ``min_sweep_speedup`` x, cold sweep (first sweep after a
       mutation) at least ``min_cold_sweep_speedup`` x — the kernels
       are maintained incrementally at write time, so the cold sweep
       no longer pays a zone-map rebuild.  Zero diffs required — also
       checked on a mutated mixed store (defects, updates, deletes,
       tombstones), where the sweep demotes itself to the exact path.
    2. **Telemetry absorption** — the same chunks absorb through the
       column path (``absorb`` transposing layout-uniform chunks) and
       the row walk; both accumulators must report bit-equal stats.
       Floor: ``min_absorb_speedup`` x, zero diffs.
    3. **Column scans** — ``find_by`` (column equality scan, then
       indexed) and ``readable_snapshots`` against their predicate-scan
       oracles: identical results, timing informational.
    4. **State drills** (``drills=True``) — a WAL kill-recover round
       trip must keep ``capture_state`` byte-identical, and same-seed
       :func:`run_chaos` / :func:`run_topology_chaos` reruns must
       reproduce their reports and state checksums exactly.

    ``min_absorb_speedup`` and ``min_scan_speedup`` default by kernel
    mode — the numpy lanes carry 3.0x absorb / 1.5x scan, the stdlib
    fallback 2.0x / 1.0x (``array`` equality has no vector lane, so the
    scan rides the exact ``list.index`` walk there).

    ``json_path`` additionally writes ``BENCH_columnar.json``.
    """
    import os
    import tempfile

    from repro import colkernels

    if min_absorb_speedup is None:
        min_absorb_speedup = 3.0 if colkernels.numpy_active() else 2.0
    if min_scan_speedup is None:
        min_scan_speedup = 1.5 if colkernels.numpy_active() else 1.0

    from repro.casestudy import easychair
    from repro.dq.metadata import Clock
    from repro.dq.streaming import EntityAccumulator
    from repro.persistence import (
        FileWALBackend,
        capture_state,
        recover_app,
    )
    from repro.runtime.dqengine import build_app as build_design_app
    from repro.runtime.storage import ContentStore, EntityStore
    from repro.runtime.vpipeline import PlanCache

    generator = LoadGenerator(seed=seed)
    spec = generator.spec
    app = easychair.build_app()
    form = app.form(spec.form)
    cache = PlanCache()
    form.use_plan_cache(cache)
    plan = form.compiled_plan()

    rng = random.Random(seed)
    bound = [form.bind(spec.clean_payload(rng)) for _ in range(records)]

    store = EntityStore(spec.entity)
    for begin in range(0, records, 512):
        store.insert_many(bound[begin:begin + 512])

    rows: list[HotpathRow] = []
    equivalence_checks = 0
    equivalence_diffs = 0
    state_checks = 0
    state_diffs = 0

    # -- 1. store-resident DQ sweep: spine + zone maps vs row oracle ------
    snapshots = store.all()
    ids = [stored.record_id for stored in snapshots]
    data_rows = [stored.data for stored in snapshots]

    def cold_pass() -> HotpathRow:
        # one throwaway insert+delete dirties the spine, so this sweep
        # pays whatever post-write kernel work is left (with the
        # incremental maintenance: folding the mutated tail, not a
        # rebuild)
        probe = store.insert({name: None for name in store.fields}
                             if store.fields else dict(data_rows[0]))
        store.delete(probe.record_id)
        elapsed, samples = _timed_loop([lambda: store.revalidate(plan)])
        return HotpathRow("columnar sweep (cold)", records, elapsed, samples)

    def warm_pass() -> HotpathRow:
        store.revalidate(plan)  # memoize the zone maps
        elapsed, samples = _timed_loop([lambda: store.revalidate(plan)])
        return HotpathRow("columnar sweep (warm)", records, elapsed, samples)

    def oracle_pass() -> HotpathRow:
        elapsed, samples = _timed_loop(
            [lambda: plan.check_batch(data_rows, False)]
        )
        return HotpathRow("row sweep (oracle)", records, elapsed, samples)

    rows.extend(_best_of([cold_pass, warm_pass, oracle_pass], rounds))

    expected = dict(zip(ids, plan.check_batch(data_rows, False)))
    equivalence_checks += 1
    if store.revalidate(plan) != expected:
        equivalence_diffs += 1  # pragma: no cover - columnar bug

    # the mutated mixed store must agree too (defects, updates, deletes,
    # tombstones and the demoted exact path)
    mixed_store = EntityStore(spec.entity)
    mixed = [
        form.bind(
            spec.defective_payload(rng)
            if rng.random() < 0.3
            else spec.clean_payload(rng)
        )
        for _ in range(400)
    ]
    mixed_store.insert_many(mixed)
    mixed_ids = [stored.record_id for stored in mixed_store.all()]
    for record_id in mixed_ids[:40]:
        mixed_store.update(
            record_id, {"overall_evaluation": rng.randint(-3, 3)}
        )
    for record_id in mixed_ids[40:60]:
        mixed_store.delete(record_id)
    survivors = mixed_store.all()
    oracle = dict(zip(
        [stored.record_id for stored in survivors],
        plan.check_batch([stored.data for stored in survivors], False),
    ))
    equivalence_checks += 1
    if mixed_store.revalidate(plan) != oracle:
        equivalence_diffs += 1  # pragma: no cover - columnar bug

    # -- 2. telemetry absorption: column chunks vs the row walk -----------
    # The column side absorbs exactly what the production write path
    # captures: ``observe_inserted`` emits per-column spine slices
    # (``cols`` ops — no absorb-side transpose) for chunks that landed
    # contiguously, which these did.  The row walk absorbs the same
    # chunks as ``(id, data, metadata)`` triples.
    chunk = 256
    store.pending_telemetry_ops()  # drop anything already queued
    for begin in range(0, records, chunk):
        store.observe_inserted(snapshots[begin:begin + chunk])
    ops = store.pending_telemetry_ops()
    row_chunks = [
        [
            (stored.record_id, stored.data, stored.metadata)
            for stored in snapshots[begin:begin + chunk]
        ]
        for begin in range(0, records, chunk)
    ]

    def absorb_columns_pass() -> HotpathRow:
        accumulator = EntityAccumulator(spec.entity)
        elapsed, samples = _timed_loop([lambda: accumulator.absorb(ops)])
        return HotpathRow(
            "telemetry absorb columns", records, elapsed, samples
        )

    def absorb_rows_pass() -> HotpathRow:
        accumulator = EntityAccumulator(spec.entity)

        def walk():
            for triples in row_chunks:
                accumulator.observe_rows(triples)

        elapsed, samples = _timed_loop([walk])
        return HotpathRow("telemetry absorb rows", records, elapsed, samples)

    rows.extend(_best_of([absorb_columns_pass, absorb_rows_pass], rounds))

    column_acc = EntityAccumulator(spec.entity)
    column_acc.absorb(ops)
    row_acc = EntityAccumulator(spec.entity)
    for triples in row_chunks:
        row_acc.observe_rows(triples)
    equivalence_checks += 1
    if column_acc.stats() != row_acc.stats():
        equivalence_diffs += 1  # pragma: no cover - absorption bug

    # -- 3. column scans and confidentiality reads vs their oracles -------
    lookup_field = "overall_evaluation"
    # Domain-audit shape: probe every score across twice the live
    # range — the classic DQ bounds sweep phrased as equality lookups.
    # Present scores pay the match materialization on both sides; the
    # absent majority is where the zone map earns its keep — the
    # column scan answers those without touching a single cell while
    # the dict scan still walks every record.
    probes = list(range(-10, 11))
    lookups = probes * max(1, 60 // len(probes))

    def dict_scan_pass() -> HotpathRow:
        elapsed, samples = _timed_loop([
            (lambda s=s: store.query(
                lambda data, score=s: data.get(lookup_field) == score
            ))
            for s in lookups
        ])
        return HotpathRow("lookup dict scan", len(lookups), elapsed, samples)

    def column_scan_pass() -> HotpathRow:
        elapsed, samples = _timed_loop([
            (lambda s=s: store.find_by(lookup_field, s)) for s in lookups
        ])
        return HotpathRow(
            "lookup column scan", len(lookups), elapsed, samples
        )

    rows.extend(_best_of([dict_scan_pass, column_scan_pass], rounds))

    for score in probes:
        scanned = sorted(
            record.record_id
            for record in store.query(
                lambda data, s=score: data.get(lookup_field) == s
            )
        )
        by_column = sorted(
            record.record_id
            for record in store.find_by(lookup_field, score)
        )
        equivalence_checks += 1
        if by_column != scanned:
            equivalence_diffs += 1  # pragma: no cover - scan bug
    store.create_index(lookup_field)
    for score in probes:
        indexed = sorted(
            record.record_id
            for record in store.find_by(lookup_field, score)
        )
        scanned = sorted(
            record.record_id
            for record in store.query(
                lambda data, s=score: data.get(lookup_field) == s
            )
        )
        equivalence_checks += 1
        if indexed != scanned:
            equivalence_diffs += 1  # pragma: no cover - index bug

    content = ContentStore(Clock())
    content.define(spec.entity)
    conf_rng = random.Random(seed + 7)
    for payload in bound[:300]:
        content.store(
            spec.entity, payload, "ada",
            security_level=conf_rng.randint(0, 2),
            available_to=(("eve",) if conf_rng.random() < 0.2 else ()),
        )
    conf_store = content.entity(spec.entity)
    for user, level in (("ada", 2), ("bob", 1), ("eve", 0)):
        via_index = sorted(
            record.record_id
            for record in conf_store.readable_snapshots(user, level)
        )
        via_scan = sorted(
            record.record_id
            for record in conf_store.select_snapshots(
                lambda s, u=user, l=level: s.metadata.accessible_by(u, l)
            )
        )
        equivalence_checks += 1
        if via_index != via_scan:
            equivalence_diffs += 1  # pragma: no cover - confidentiality bug

    zone_maps = store.columnar_stats()
    kernels = zone_maps.pop("kernels")

    # -- 4. state drills: WAL round trip and same-seed determinism --------
    if drills:
        from .resilience import run_chaos
        from .topology import run_topology_chaos

        design_model = easychair.build_design()
        writer = spec.cleared_users[0]
        with tempfile.TemporaryDirectory(prefix="repro-columnar-") as root:

            def durable_app(backend):
                durable = build_design_app(
                    design_model, persistence=backend
                )
                for name, level, roles in easychair.USERS:
                    durable.add_user(name, level, roles)
                return durable

            backend = FileWALBackend(os.path.join(root, "wal"))
            drill_app = durable_app(backend)
            drill_payloads = [spec.clean_payload(rng) for _ in range(600)]
            stored_ids: list[int] = []
            for begin in range(0, len(drill_payloads), 256):
                batch = drill_app.submit_batch(
                    spec.form, drill_payloads[begin:begin + 256], writer
                )
                if batch.rejected or batch.unauthorized:  # pragma: no cover
                    raise RuntimeError("columnar drill preload must land")
                stored_ids.extend(
                    record_id for _index, record_id in batch.accepted
                )
            for record_id in stored_ids[:24]:
                drill_app.store.modify(
                    spec.entity, record_id,
                    {"overall_evaluation": rng.randint(-3, 3)}, writer,
                )
            for record_id in stored_ids[-12:]:
                drill_app.store.entity(spec.entity).delete(record_id)
            drill_app.commit()
            oracle_state = capture_state(drill_app)
            backend.kill()

            recovered_backend = FileWALBackend(os.path.join(root, "wal"))
            recovered = durable_app(recovered_backend)
            recover_app(recovered, recovered_backend)
            state_checks += 1
            if capture_state(recovered) != oracle_state:
                state_diffs += 1  # pragma: no cover - recovery bug
            recovered_backend.kill()

        first = run_chaos(seed, shard_count=2, count=120, preload=12)
        second = run_chaos(seed, shard_count=2, count=120, preload=12)
        state_checks += 1
        if first.render() != second.render():
            state_diffs += 1  # pragma: no cover - determinism bug

        topology_a = run_topology_chaos(
            seed, shard_count=3, count=120, preload=12
        )
        topology_b = run_topology_chaos(
            seed, shard_count=3, count=120, preload=12
        )
        state_checks += 1
        if topology_a.checksum != topology_b.checksum:
            state_diffs += 1  # pragma: no cover - determinism bug

    result = ColumnarBenchResult(
        seed=seed,
        records=records,
        rows=rows,
        equivalence_checks=equivalence_checks,
        equivalence_diffs=equivalence_diffs,
        state_checks=state_checks,
        state_diffs=state_diffs,
        zone_maps=zone_maps,
        kernels=kernels,
        min_sweep_speedup=min_sweep_speedup,
        min_absorb_speedup=min_absorb_speedup,
        min_cold_sweep_speedup=min_cold_sweep_speedup,
        min_scan_speedup=min_scan_speedup,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# Durability bench: WAL write overhead, recovery time, post-recovery oracle
# ---------------------------------------------------------------------------


@dataclass
class DurabilityBenchResult:
    """Durable-backend measurements plus the post-recovery oracle sweep.

    The floors are the persistence-subsystem acceptance numbers: the
    WAL-backed write path within ``max_write_overhead`` of the pure
    in-memory gateway, a crash recovery of ``records`` records within
    ``max(0.5, recovery_budget_per_100k * records / 100_000)`` seconds,
    **zero** post-recovery oracle diffs (recovered state byte-identical
    to the pre-crash capture, rebuilt field indexes agreeing with the
    predicate-scan oracle), and a seeded kill-restart chaos storm that
    passes the full DQ-guarantee verifier.
    """

    seed: int
    shard_count: int
    backend: str
    records: int
    write_records: int
    rows: list
    oracle_checks: int
    oracle_diffs: int
    recovery: dict
    storm: dict
    backend_stats: dict
    max_write_overhead: float = 0.25
    recovery_budget_per_100k: float = 5.0

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    @property
    def write_overhead(self) -> float:
        """Relative write-path cost of the durable backend: 0.10 means
        WAL-backed writes ran 10% slower than the in-memory gateway."""
        durable = self._row(f"write {self.backend} backend").ops_per_second
        if not durable:
            return float("inf")
        memory = self._row("write memory backend").ops_per_second
        return memory / durable - 1.0

    @property
    def recovery_seconds(self) -> float:
        """Wall-clock of the best timed snapshot+WAL replay."""
        return self._row(f"recover {self.backend}").elapsed

    @property
    def recovery_budget(self) -> float:
        """The scaled recovery floor (never below half a second — tiny
        data sets would otherwise demand sub-scheduler-tick recovery)."""
        return max(
            0.5, self.recovery_budget_per_100k * self.records / 100_000
        )

    def floor_failures(self) -> list:
        """Every missed acceptance floor, as human-readable strings."""
        failures = []
        if self.write_overhead > self.max_write_overhead:
            failures.append(
                f"{self.backend} write overhead {self.write_overhead:.1%} > "
                f"{self.max_write_overhead:.0%} of in-memory"
            )
        if self.recovery_seconds > self.recovery_budget:
            failures.append(
                f"recovery of {self.records} record(s) took "
                f"{self.recovery_seconds:.2f}s > "
                f"{self.recovery_budget:.2f}s budget"
            )
        if self.oracle_diffs:
            failures.append(
                f"{self.oracle_diffs} post-recovery oracle diff(s) over "
                f"{self.oracle_checks} check(s)"
            )
        if not self.storm.get("ok", False):
            failures.append(
                f"kill-restart storm: "
                f"{self.storm.get('violations', '?')} guarantee violation(s)"
            )
        if self.storm.get("kills_planned", 0) and not self.storm.get(
            "restarts", 0
        ):
            failures.append(
                "kill-restart storm injected no shard restarts"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "durability",
            "seed": self.seed,
            "shard_count": self.shard_count,
            "backend": self.backend,
            "records": self.records,
            "write_records": self.write_records,
            "rows": [row.as_dict() for row in self.rows],
            "write_overhead": round(self.write_overhead, 4),
            "recovery_seconds": round(self.recovery_seconds, 4),
            "recovery": dict(self.recovery),
            "floors": {
                "max_write_overhead": self.max_write_overhead,
                "recovery_budget_s": round(self.recovery_budget, 3),
                "max_oracle_diffs": 0,
                "storm_ok": True,
                "met": self.passed,
            },
            "oracle": {
                "checks": self.oracle_checks,
                "diffs": self.oracle_diffs,
            },
            "storm": dict(self.storm),
            "backend_stats": dict(self.backend_stats),
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_durability.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"durability bench — {self.backend} backend, "
            f"{self.records} record(s) recovered, "
            f"{self.write_records} write(s) measured, seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"write overhead: {self.write_overhead:+.1%} of in-memory · "
            f"recovery: {self.recovery_seconds:.3f}s for "
            f"{self.records} record(s) "
            f"(budget {self.recovery_budget:.2f}s)\n"
            f"oracle: {self.oracle_diffs} diff(s) over "
            f"{self.oracle_checks} check(s) · storm: "
            f"{self.storm.get('restarts', 0)} restart(s), "
            f"{self.storm.get('violations', 0)} violation(s); floors "
            f"{'met' if self.passed else 'MISSED'} "
            f"(<= {self.max_write_overhead:.0%} overhead, "
            f"<= {self.recovery_budget:.2f}s recovery, zero diffs, "
            f"clean storm)"
        )
        return f"{header}\n{body}\n{footer}"


def run_durability_bench(
    shard_count: int = 4,
    records: int = 20_000,
    write_records: int = 8_000,
    backend: str = "file",
    storm_count: int = 300,
    kills: int = 3,
    seed: int = 23,
    rounds: int = 3,
    max_write_overhead: Optional[float] = None,
    recovery_budget_per_100k: float = 5.0,
    json_path=None,
) -> DurabilityBenchResult:
    """Measure the durable backends against the in-memory serving path.

    Three phases, all over the EasyChair review workload:

    1. **Write overhead** — ``write_records`` identical payloads go
       through two fresh gateways via ``submit_many`` (per-shard
       coalescing, group commit per acknowledged batch), one purely
       in-memory, one on the durable ``backend``, best-of-``rounds``
       interleaved with a fresh data directory per durable pass.
       Floor: the durable gateway keeps within ``max_write_overhead``
       of in-memory — by default 25% for the file WAL and 40% for
       sqlite, whose per-commit B-tree insert and WAL-frame checksums
       buy SQL queryability at a small flat cost per acknowledged
       batch.
    2. **Recovery** — one ``WebApp`` on the durable backend is loaded
       with ``records`` records (plus updates and deletes, so the WAL
       replays every op kind), its state captured, the process "killed"
       (the backend abandons its handles), and a fresh app recovered
       from disk, best-of-``rounds``.  Floors: recovery within
       ``max(0.5, recovery_budget_per_100k * records / 100_000)``
       seconds and **zero** oracle diffs — the recovered capture must be
       byte-identical (records, metadata, versions, allocator watermark,
       audit trail) and the rebuilt hash indexes must agree with both
       the pre-crash index and the predicate-scan oracle.
    3. **Kill-restart storm** — one seeded chaos run
       (:func:`run_chaos`) on the durable backend with ``kills`` kill
       faults layered over crashes, latency, drops and duplicates.
       Floor: every DQ guarantee holds and at least one kill actually
       restarted a shard.

    ``json_path`` additionally writes ``BENCH_durability.json``.
    """
    import os
    import tempfile

    from repro.casestudy import easychair
    from repro.persistence import (
        FileWALBackend,
        SQLiteBackend,
        capture_state,
        persistence_factory,
        recover_app,
    )
    from repro.runtime.dqengine import build_app as build_design_app

    from .resilience import run_chaos

    if max_write_overhead is None:
        max_write_overhead = 0.25 if backend == "file" else 0.40
    generator = LoadGenerator(seed=seed)
    spec = generator.spec
    writer = spec.cleared_users[0]
    design_model = easychair.build_design()
    rng = random.Random(seed)
    rows: list[HotpathRow] = []

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as root:
        durable_dirs = iter(range(1_000_000))

        def fresh_gateway(durable: bool) -> ShardedGateway:
            factory = None
            if durable:
                base = os.path.join(
                    root, f"write-pass-{next(durable_dirs)}"
                )
                factory = persistence_factory(base, kind=backend)
            return ShardedGateway.from_design(
                design_model, shard_count=shard_count,
                users=easychair.USERS, cache_capacity=0,
                max_queue_depth=4096, workers=shard_count,
                persistence=factory,
            )

        def drive_writes(gateway, payloads) -> HotpathRow:
            client_batch = max(1, gateway.write_batch_max) * shard_count
            samples = []
            gc.collect()
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for begin in range(0, len(payloads), client_batch):
                    group = payloads[begin:begin + client_batch]
                    began = time.perf_counter()
                    responses = gateway.submit_many(spec.form, group, writer)
                    per_op = (time.perf_counter() - began) / len(group)
                    samples.extend([per_op] * len(group))
                    for response in responses:
                        if response.status != 201:  # pragma: no cover
                            raise RuntimeError(
                                f"bench write failed: {response.status}"
                            )
                elapsed = time.perf_counter() - start
            finally:
                if was_enabled:
                    gc.enable()
            return HotpathRow("write", len(payloads), elapsed, samples)

        # -- 1. write-path overhead: in-memory vs durable backend --------
        write_payloads = [
            spec.clean_payload(rng) for _ in range(write_records)
        ]
        warmup_gateway = fresh_gateway(durable=True)
        try:
            drive_writes(warmup_gateway, write_payloads[:256])
        finally:
            warmup_gateway.close()

        def write_pass(durable: bool) -> HotpathRow:
            gateway = fresh_gateway(durable)
            try:
                row = drive_writes(gateway, write_payloads)
                row.name = (
                    f"write {backend} backend" if durable
                    else "write memory backend"
                )
                return row
            finally:
                gateway.close()

        # The floor is a *ratio*, so the pair from the same round is the
        # honest sample: adjacent passes see the same machine, and the
        # round with the lowest durable/memory ratio is the least-noisy
        # estimate of the backend's real overhead (min-elapsed of
        # independently chosen rounds would instead compare a lucky
        # memory round against an unlucky durable one).
        best_pair = None
        for _ in range(max(1, rounds)):
            memory_row = write_pass(False)
            durable_row = write_pass(True)
            ratio = durable_row.elapsed / memory_row.elapsed
            if best_pair is None or ratio < best_pair[0]:
                best_pair = (ratio, memory_row, durable_row)
        rows.extend(best_pair[1:])

        # -- 2. recovery: load, mutate, kill, replay, compare -------------
        def make_backend():
            if backend == "sqlite":
                return SQLiteBackend(os.path.join(root, "recovery.db"))
            return FileWALBackend(os.path.join(root, "recovery"))

        def make_app(recovery_backend):
            app = build_design_app(
                design_model, persistence=recovery_backend
            )
            for name, level, roles in easychair.USERS:
                app.add_user(name, level, roles)
            return app

        primary = make_backend()
        app = make_app(primary)
        recovery_payloads = [
            spec.clean_payload(rng) for _ in range(records)
        ]
        stored_ids: list[int] = []
        for begin in range(0, records, 512):
            batch = app.submit_batch(
                spec.form, recovery_payloads[begin:begin + 512], writer
            )
            if batch.rejected or batch.unauthorized:  # pragma: no cover
                raise RuntimeError("durability preload must land cleanly")
            stored_ids.extend(
                record_id for _index, record_id in batch.accepted
            )
        # exercise the update and retire op kinds in the replayed WAL
        entity = spec.entity
        for record_id in stored_ids[: min(32, len(stored_ids))]:
            app.store.modify(
                entity, record_id,
                {"overall_evaluation": rng.randint(-3, 3)}, writer,
            )
        retired = stored_ids[-min(16, len(stored_ids)):]
        for record_id in retired:
            app.store.entity(entity).delete(record_id)
        app.commit()
        oracle = capture_state(app)
        store = app.store.entity(entity)
        sample_scores = sorted(
            {rng.randint(-3, 3) for _ in range(6)}
        )
        expected_ids = {
            score: sorted(
                record.record_id
                for record in store.find_by("overall_evaluation", score)
            )
            for score in sample_scores
        }
        primary.kill()

        recovery_info: dict = {}
        oracle_diffs = 0
        oracle_checks = 0

        def recovery_pass() -> HotpathRow:
            nonlocal oracle_diffs, oracle_checks
            recovered_backend = make_backend()
            recovered_app = make_app(recovered_backend)
            began = time.perf_counter()
            report = recover_app(recovered_app, recovered_backend)
            elapsed = time.perf_counter() - began
            checks = 0
            diffs = 0
            checks += 1
            if capture_state(recovered_app) != oracle:
                diffs += 1  # pragma: no cover - would be a recovery bug
            recovered_store = recovered_app.store.entity(entity)
            for score in sample_scores:
                indexed = sorted(
                    record.record_id
                    for record in recovered_store.find_by(
                        "overall_evaluation", score
                    )
                )
                scanned = sorted(
                    record.record_id
                    for record in recovered_store.query(
                        lambda data, s=score:
                        data.get("overall_evaluation") == s
                    )
                )
                checks += 2
                if indexed != expected_ids[score]:
                    diffs += 1  # pragma: no cover - recovery bug
                if indexed != scanned:
                    diffs += 1  # pragma: no cover - recovery bug
            checks += 1
            if any(
                record_id in recovered_store for record_id in retired
            ):
                diffs += 1  # pragma: no cover - recovery bug
            oracle_checks = checks
            oracle_diffs = max(oracle_diffs, diffs)
            recovery_info.update({
                "snapshot_records": report.snapshot_records,
                "replayed_ops": report.replayed_ops,
                "torn_bytes": report.torn_bytes,
                "tick": report.tick,
            })
            recovered_backend.kill()
            return HotpathRow(
                f"recover {backend}", records, elapsed, [elapsed]
            )

        rows.extend(_best_of([recovery_pass], rounds))
        backend_stats = primary.stats()

        # -- 3. seeded kill-restart storm over the durable backend --------
        storm_result = run_chaos(
            seed=seed,
            shard_count=shard_count,
            count=storm_count,
            preload=16,
            kills=kills,
            persistence=backend,
            data_dir=os.path.join(root, "storm"),
        )
        storm = {
            "ok": storm_result.ok,
            "violations": len(storm_result.violations),
            "restarts": storm_result.restarts,
            "backend": storm_result.backend,
            "kills_planned": kills,
            "applied": dict(storm_result.applied),
        }

    result = DurabilityBenchResult(
        seed=seed,
        shard_count=shard_count,
        backend=backend,
        records=records,
        write_records=write_records,
        rows=rows,
        oracle_checks=oracle_checks,
        oracle_diffs=oracle_diffs,
        recovery=recovery_info,
        storm=storm,
        backend_stats=backend_stats,
        max_write_overhead=max_write_overhead,
        recovery_budget_per_100k=recovery_budget_per_100k,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# Replication bench: ring serving under live resharding and failover
# ---------------------------------------------------------------------------


@dataclass
class ReplicationBenchResult:
    """Replicated-ring measurements plus the topology oracle sweeps.

    The floors are the replication-subsystem acceptance numbers: serving
    throughput during a live split + merge within ``min_split_retention``
    of the steady ring, **zero** oracle diffs (a faultless resharded run
    byte-identical — report and cluster-state checksum — to its fixed-
    topology twin, and failing over every primary preserving the exact
    acknowledged cluster state), every follower read within the declared
    staleness bound, and a seeded topology storm (replica lag, failover,
    kill-restart, live split/merge) that passes the full DQ-guarantee
    verifier.
    """

    seed: int
    shard_count: int
    replicas: int
    staleness_bound: int
    rows: list
    oracle_checks: int
    oracle_diffs: int
    drill: dict
    storm: dict
    min_split_retention: float = 0.4

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    @property
    def split_retention(self) -> float:
        """Throughput while resharding live as a fraction of the steady
        ring: 0.8 means the split + merge cost one fifth of throughput."""
        steady = self._row("serve steady ring").ops_per_second
        moving = self._row("serve during split/merge").ops_per_second
        return moving / steady if steady else 0.0

    def floor_failures(self) -> list:
        """Every missed acceptance floor, as human-readable strings."""
        failures = []
        if self.split_retention < self.min_split_retention:
            failures.append(
                f"split/merge retention {self.split_retention:.1%} < "
                f"{self.min_split_retention:.0%} of steady ring"
            )
        if self.oracle_diffs:
            failures.append(
                f"{self.oracle_diffs} topology oracle diff(s) over "
                f"{self.oracle_checks} check(s)"
            )
        if not self.drill.get("state_preserved", False):
            failures.append(
                "failover drill lost acknowledged state "
                f"({self.drill.get('failovers', 0)} failover(s))"
            )
        if not self.storm.get("ok", False):
            failures.append(
                f"topology storm: "
                f"{self.storm.get('violations', '?')} guarantee violation(s)"
            )
        if self.storm.get("max_served_lag", 0) > self.staleness_bound:
            failures.append(
                f"served follower lag {self.storm.get('max_served_lag')} > "
                f"staleness bound {self.staleness_bound}"
            )
        if not self.storm.get("migrated", 0):
            failures.append("topology storm migrated no records")
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "replication",
            "seed": self.seed,
            "shard_count": self.shard_count,
            "replicas": self.replicas,
            "staleness_bound": self.staleness_bound,
            "rows": [row.as_dict() for row in self.rows],
            "split_retention": round(self.split_retention, 4),
            "floors": {
                "min_split_retention": self.min_split_retention,
                "max_oracle_diffs": 0,
                "max_served_lag": self.staleness_bound,
                "storm_ok": True,
                "met": self.passed,
            },
            "oracle": {
                "checks": self.oracle_checks,
                "diffs": self.oracle_diffs,
            },
            "drill": dict(self.drill),
            "storm": dict(self.storm),
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_replication.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"replication bench — {self.shard_count} shard(s) x "
            f"{self.replicas} follower(s), staleness bound "
            f"{self.staleness_bound}, seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"split/merge retention: {self.split_retention:.1%} of steady "
            f"ring (floor {self.min_split_retention:.0%}) · oracle: "
            f"{self.oracle_diffs} diff(s) over {self.oracle_checks} "
            f"check(s)\n"
            f"failover drill: {self.drill.get('failovers', 0)} primary "
            f"loss(es), state "
            f"{'preserved' if self.drill.get('state_preserved') else 'LOST'} "
            f"· storm: {self.storm.get('violations', 0)} violation(s), "
            f"max served lag {self.storm.get('max_served_lag', 0)}, "
            f"{self.storm.get('migrated', 0)} record(s) migrated live; "
            f"floors {'met' if self.passed else 'MISSED'}"
        )
        return f"{header}\n{body}\n{footer}"


def run_replication_bench(
    shard_count: int = 3,
    count: int = 240,
    preload: int = 16,
    replicas: int = 1,
    staleness_bound: int = 16,
    vnodes: int = 64,
    storm_count: int = 240,
    seed: int = 23,
    rounds: int = 2,
    min_split_retention: float = 0.4,
    json_path=None,
) -> ReplicationBenchResult:
    """Measure the replicated ring gateway against its own guarantees.

    Four phases, all over the EasyChair review workload:

    1. **Topology oracle** — one faultless seeded run with a live split
       at one third and a live merge at two thirds, against its fixed-
       topology twin: the client-visible report must render
       byte-identically and the final cluster-state checksums must be
       equal.  Floor: zero diffs — clients cannot tell a reshard
       happened.
    2. **Split/merge retention** — the identical operation plan is
       served twice on fresh fleets, once on a steady ring and once with
       the split + merge performed mid-run (their cost on the serving
       clock).  Floor: at least ``min_split_retention`` of steady
       throughput, paired per round like the durability bench.
    3. **Failover drill** — every live primary is deliberately killed
       and its most caught-up follower promoted; the acknowledged
       cluster state before and after must be identical.  Floor: zero
       state diffs.
    4. **Topology storm** — one seeded chaos run
       (:func:`~repro.cluster.topology.run_topology_chaos`) layering
       replica lag, failover and kill-restart faults over the live
       split/merge.  Floors: every DQ guarantee holds, every follower
       read stayed within the staleness bound, and records actually
       migrated live.

    ``json_path`` additionally writes ``BENCH_replication.json``.
    """
    from repro.casestudy import easychair

    from .topology import RingGateway, cluster_state, run_topology_chaos

    design_model = easychair.build_design()
    spec = LoadGenerator(seed=seed).spec
    writer = spec.cleared_users[0]
    rows: list[HotpathRow] = []

    # -- 1. faultless resharded run vs fixed-topology twin ----------------
    oracle_checks = 0
    oracle_diffs = 0
    resharded = run_topology_chaos(
        seed=seed, shard_count=shard_count, count=count, preload=preload,
        replicas=replicas, staleness_bound=staleness_bound, vnodes=vnodes,
        plan=FaultPlan(), topology=True,
    )
    fixed = run_topology_chaos(
        seed=seed, shard_count=shard_count, count=count, preload=preload,
        replicas=replicas, staleness_bound=staleness_bound, vnodes=vnodes,
        plan=FaultPlan(), topology=False,
    )
    oracle_checks += 2
    if resharded.report.render() != fixed.report.render():
        oracle_diffs += 1  # pragma: no cover - would be a topology bug
    if resharded.checksum != fixed.checksum:
        oracle_diffs += 1  # pragma: no cover - would be a topology bug

    # -- 2. serving throughput while resharding live ----------------------
    def ring_gateway() -> RingGateway:
        return RingGateway.from_design(
            design_model, shard_count=shard_count, users=easychair.USERS,
            replicas=replicas, staleness_bound=staleness_bound,
            vnodes=vnodes, cache_capacity=0, max_queue_depth=4096,
            workers=shard_count,
        )

    def serve_pass(topology: bool) -> HotpathRow:
        generator = LoadGenerator(seed=seed)
        gateway = ring_gateway()
        rng = random.Random(seed)
        try:
            for _ in range(preload):
                response = gateway.submit(
                    spec.form, spec.clean_payload(rng), writer
                )
                if response.status != 201:  # pragma: no cover
                    raise RuntimeError(
                        f"bench preload failed: {response.status}"
                    )
            operations = generator.plan(count)
            report = LoadReport(spec=spec)
            gc.collect()
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                if topology:
                    first = count // 3
                    second = (2 * count) // 3
                    generator.run(
                        gateway, operations=operations[:first], report=report
                    )
                    gateway.split_shard()
                    generator.run(
                        gateway, operations=operations[first:second],
                        report=report,
                    )
                    gateway.merge_shard(0)
                    generator.run(
                        gateway, operations=operations[second:], report=report
                    )
                else:
                    generator.run(
                        gateway, operations=operations, report=report
                    )
                elapsed = time.perf_counter() - start
            finally:
                if was_enabled:
                    gc.enable()
            name = (
                "serve during split/merge" if topology
                else "serve steady ring"
            )
            return HotpathRow(name, count, elapsed, [elapsed])
        finally:
            gateway.close()

    # the floor is a ratio, so the pair from the same round is the honest
    # sample (see the durability bench's write-overhead note)
    best_pair = None
    for _ in range(max(1, rounds)):
        steady_row = serve_pass(False)
        moving_row = serve_pass(True)
        ratio = moving_row.elapsed / steady_row.elapsed
        if best_pair is None or ratio < best_pair[0]:
            best_pair = (ratio, steady_row, moving_row)
    rows.extend(best_pair[1:])

    # -- 3. failover drill: lose every primary, compare acked state -------
    drill_gateway = ring_gateway()
    try:
        rng = random.Random(seed)
        drill_ids = []
        for _ in range(max(8, preload)):
            response = drill_gateway.submit(
                spec.form, spec.clean_payload(rng), writer
            )
            drill_ids.append(response.body["id"])
        before = cluster_state(drill_gateway)
        live = drill_gateway.router.all_shards()
        for index in live:
            drill_gateway.fail_over(index)
        after = cluster_state(drill_gateway)
        probe = drill_gateway.view(spec.entity, drill_ids[0], writer)
        drill = {
            "failovers": len(live),
            "records": len(before),
            "state_preserved": before == after,
            "follower_probe_status": probe.status,
        }
        oracle_checks += 1
        if not drill["state_preserved"]:
            oracle_diffs += 1  # pragma: no cover - would be a failover bug
    finally:
        drill_gateway.close()

    # -- 4. seeded topology storm over the replicated ring ----------------
    # on the file WAL: injected kills must restart from durable state
    # (on a memory backend a kill genuinely loses acked writes — that
    # negative control lives in the chaos test battery, not here)
    storm_result = run_topology_chaos(
        seed=seed, shard_count=shard_count, count=storm_count,
        preload=preload, replicas=replicas,
        staleness_bound=staleness_bound, vnodes=vnodes,
        persistence="file", kills=1, replica_lags=2, failovers=1,
    )
    storm = {
        "ok": storm_result.ok,
        "violations": len(storm_result.violations),
        "applied": dict(storm_result.applied),
        "max_served_lag": storm_result.max_served_lag,
        "replica_reads": storm_result.replica_reads,
        "failovers": storm_result.failovers,
        "restarts": storm_result.restarts,
        "splits": storm_result.splits,
        "merges": storm_result.merges,
        "migrated": storm_result.migrated,
        "final_shards": storm_result.final_shards,
    }

    result = ReplicationBenchResult(
        seed=seed,
        shard_count=shard_count,
        replicas=replicas,
        staleness_bound=staleness_bound,
        rows=rows,
        oracle_checks=oracle_checks,
        oracle_diffs=oracle_diffs,
        drill=drill,
        storm=storm,
        min_split_retention=min_split_retention,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result


# ---------------------------------------------------------------------------
# Interchange bench: zero-copy typed-buffer batches vs the per-op paths
# ---------------------------------------------------------------------------


@dataclass
class InterchangeBenchResult:
    """Typed-buffer interchange measurements plus the zero-diff oracles.

    The floors are the interchange acceptance numbers: encode+decode of
    numeric columns at least ``min_codec_speedup`` x the tagged-JSON
    codec, batched replication catch-up at least ``min_catchup_speedup``
    x the per-op apply under the same codec discipline (each op
    individually framed, decoded and applied — the non-batched
    interchange wire) at ``lag`` acked ops of follower lag, **zero**
    state diffs (every catch-up lane lands ``capture_state``
    byte-identical), zero equivalence diffs (scorecard reduce and
    telemetry shipping bit-identical with the gate on and off), and the
    same-seed topology storm byte-identical either way.  A third
    informational catch-up row, ``catch-up per-op in-memory``, is the
    legacy gate-off lane that hands live dict references per op without
    any wire at all.
    """

    seed: int
    lag: int
    lag_records: int
    column_values: int
    rows: list
    state_checks: int
    state_diffs: int
    equivalence_checks: int
    equivalence_diffs: int
    storm: dict
    min_codec_speedup: float = 5.0
    min_catchup_speedup: float = 3.0

    def _row(self, name: str) -> HotpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def _speedup(self, fast: str, slow: str) -> float:
        base = self._row(fast).elapsed
        return self._row(slow).elapsed / base if base else 0.0

    @property
    def codec_speedup(self) -> float:
        """Numeric-column encode+decode, raw buffers over tagged JSON."""
        return self._speedup("codec typed buffers", "codec tagged JSON")

    @property
    def catchup_speedup(self) -> float:
        """Follower catch-up, batched frame over the per-op framed
        apply (both lanes pay the codec; batching is the variable)."""
        return self._speedup(
            "catch-up batched frame", "catch-up per-op framed"
        )

    @property
    def scorecard_speedup(self) -> float:
        """Cluster scorecard, encoded reduce over locked readings
        (informational — the hard floor lives in the dq telemetry
        bench's rescan ratio)."""
        return self._speedup(
            "scorecard encoded reduce", "scorecard locked readings"
        )

    def floor_failures(self) -> list:
        """Every missed acceptance floor, as human-readable strings."""
        failures = []
        if self.codec_speedup < self.min_codec_speedup:
            failures.append(
                f"column codec {self.codec_speedup:.2f}x < "
                f"{self.min_codec_speedup:.1f}x tagged JSON"
            )
        if self.catchup_speedup < self.min_catchup_speedup:
            failures.append(
                f"batched catch-up {self.catchup_speedup:.2f}x < "
                f"{self.min_catchup_speedup:.1f}x per-op framed at "
                f"{self.lag}-op lag"
            )
        if self.state_diffs:
            failures.append(
                f"{self.state_diffs} capture_state diff(s) over "
                f"{self.state_checks} cross-lane catch-up check(s)"
            )
        if self.equivalence_diffs:
            failures.append(
                f"{self.equivalence_diffs} interchange equivalence "
                f"diff(s) over {self.equivalence_checks} check(s)"
            )
        if not self.storm.get("identical", False):
            failures.append(
                "same-seed topology storm not byte-identical with "
                "interchange on and off"
            )
        if not self.storm.get("ok", False):
            failures.append(
                f"topology storm under interchange: "
                f"{self.storm.get('violations', '?')} guarantee "
                f"violation(s)"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.floor_failures()

    def as_dict(self) -> dict:
        return {
            "benchmark": "interchange",
            "seed": self.seed,
            "lag": self.lag,
            "lag_records": self.lag_records,
            "column_values": self.column_values,
            "rows": [row.as_dict() for row in self.rows],
            "codec_speedup": round(self.codec_speedup, 3),
            "catchup_speedup": round(self.catchup_speedup, 3),
            "scorecard_speedup": round(self.scorecard_speedup, 3),
            "floors": {
                "min_codec_speedup": self.min_codec_speedup,
                "min_catchup_speedup": self.min_catchup_speedup,
                "max_state_diffs": 0,
                "max_equivalence_diffs": 0,
                "storm_identical": True,
                "met": self.passed,
            },
            "oracle": {
                "state_checks": self.state_checks,
                "state_diffs": self.state_diffs,
                "equivalence_checks": self.equivalence_checks,
                "equivalence_diffs": self.equivalence_diffs,
            },
            "storm": dict(self.storm),
        }

    def write_json(self, path) -> None:
        """Emit the machine-readable report (``BENCH_interchange.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        header = (
            f"interchange bench — {self.column_values} value(s)/column, "
            f"{self.lag}-op catch-up lag ({self.lag_records} record(s)), "
            f"seed {self.seed}"
        )
        body = render_table(
            ["Path", "Ops", "Ops/s", "p50 µs", "p99 µs"],
            [
                [
                    row.name,
                    str(row.operations),
                    f"{row.ops_per_second:,.0f}",
                    f"{row.p50_us}",
                    f"{row.p99_us}",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"column codec: {self.codec_speedup:.2f}x tagged JSON "
            f"(floor {self.min_codec_speedup:.1f}x) · catch-up: "
            f"{self.catchup_speedup:.2f}x per-op framed "
            f"(floor {self.min_catchup_speedup:.1f}x) · scorecard "
            f"reduce: {self.scorecard_speedup:.2f}x locked readings\n"
            f"oracles: {self.state_diffs} state diff(s) over "
            f"{self.state_checks} catch-up(s), {self.equivalence_diffs} "
            f"equivalence diff(s) over {self.equivalence_checks} "
            f"check(s), storm "
            f"{'byte-identical' if self.storm.get('identical') else 'DIVERGED'}"
            f" on/off; floors {'met' if self.passed else 'MISSED'}"
        )
        return f"{header}\n{body}\n{footer}"


def run_interchange_bench(
    lag: int = 2_000,
    batch_rows: int = 128,
    batches: int = 4,
    column_values: int = 8_192,
    codec_iterations: int = 40,
    shard_count: int = 3,
    preload: int = 180,
    scorecard_reads: int = 40,
    storm_count: int = 120,
    seed: int = 23,
    rounds: int = 3,
    min_codec_speedup: float = 5.0,
    min_catchup_speedup: float = 3.0,
    json_path=None,
) -> InterchangeBenchResult:
    """Measure the typed-buffer interchange against its per-op twins.

    Four phases:

    1. **Column codec** — ``codec_iterations`` encode+decode round
       trips of one int64 and one float64 column (``column_values``
       values each), raw-buffer lanes (:func:`repro.interchange
       .encode_column`) vs the tagged-JSON codec
       (:func:`repro.persistence.encode_payload`) on the same values.
       Floor: ``min_codec_speedup``.
    2. **Batched catch-up** — a primary accrues ``lag`` single-insert
       ops plus ``batches`` compact ``rows`` ops (``batch_rows`` records
       each); the identical acked tail then replays into a fresh
       follower three ways.  The floored pair keeps the codec
       discipline constant and varies only batching: *per-op framed*
       (each op individually framed, CRC-checked, decoded, applied and
       clock-advanced — the non-batched interchange wire) vs *batched
       frame* (real ``ReplicaSet.catch_up`` under the gate: coalesced
       insert runs, one frame, contiguous admissions through
       ``restore_records`` in one lock trip).  The *per-op in-memory*
       lane (gate off — live dict references, zero serialization) rides
       along as an informational row.  Every lane ends scan-ready
       (``columnar_stats`` folds the kernels) so eager chunked kernel
       sync is not billed against the per-op lanes.  Floor:
       ``min_catchup_speedup``; oracle: ``capture_state``
       byte-equality across all three lanes on every round.
    3. **Scorecard reduce** — ``scorecard_reads`` ``live_scorecard``
       reads against a preloaded gateway, locked per-shard readings vs
       the encoded-frame reduce (informational row) with score-line
       equality checked both ways, plus one telemetry op-stream
       ship/absorb fingerprint check.
    4. **Storm oracle** — the same seeded topology storm (live
       split/merge, replica lag, failover, kill-restart on the file
       WAL) with the gate forced on and off: report render and
       cluster-state checksum must be byte-identical.

    ``json_path`` additionally writes ``BENCH_interchange.json``.
    """
    from array import array

    from repro import interchange
    from repro.casestudy import easychair
    from repro.dq.metadata import Clock
    from repro.interchange import forced_interchange
    from repro.persistence import (
        apply_op,
        capture_state,
        encode_payload,
        op_tick,
    )
    from repro.runtime.dqengine import build_app

    from .replication import ReplicaSet, ReplicationLog
    from .topology import run_topology_chaos

    design_model = easychair.build_design()
    spec = LoadGenerator(seed=seed).spec
    writer = spec.cleared_users[0]
    rows: list[HotpathRow] = []

    def make_app(persistence=None):
        app = build_app(design_model, clock=Clock(), persistence=persistence)
        for name, level, roles in easychair.USERS:
            app.add_user(name, level, roles)
        return app

    # -- 1. column codec: raw buffers vs tagged JSON ----------------------
    rng = random.Random(seed)
    ints = [rng.randrange(-(10 ** 12), 10 ** 12) for _ in range(column_values)]
    floats = [rng.random() * 1e6 - 5e5 for _ in range(column_values)]
    int_column = array("q", ints)
    float_column = array("d", floats)

    def typed_round_trip():
        interchange.decode_column(interchange.encode_column(int_column))
        interchange.decode_column(interchange.encode_column(float_column))

    def json_round_trip():
        from repro.persistence import decode_payload

        decode_payload(encode_payload(ints))
        decode_payload(encode_payload(floats))

    def typed_pass() -> HotpathRow:
        elapsed, samples = _timed_loop(
            [typed_round_trip] * codec_iterations
        )
        return HotpathRow(
            "codec typed buffers", codec_iterations, elapsed, samples
        )

    def json_pass() -> HotpathRow:
        elapsed, samples = _timed_loop(
            [json_round_trip] * codec_iterations
        )
        return HotpathRow(
            "codec tagged JSON", codec_iterations, elapsed, samples
        )

    # equivalence: the typed lane round-trips the exact values
    equivalence_checks = 0
    equivalence_diffs = 0
    equivalence_checks += 2
    if list(interchange.decode_column(
        interchange.encode_column(int_column)
    )) != ints:
        equivalence_diffs += 1  # pragma: no cover - would be a codec bug
    decoded_floats = interchange.decode_column(
        interchange.encode_column(float_column)
    )
    if float_column.tobytes() != array("d", decoded_floats).tobytes():
        equivalence_diffs += 1  # pragma: no cover - would be a codec bug

    rows.extend(_best_of([json_pass, typed_pass], rounds))

    # -- 2. batched catch-up vs per-op apply ------------------------------
    seed_log = ReplicationLog()
    primary = make_app(seed_log)
    entity = primary.store.entity(spec.entity)
    payload_rng = random.Random(seed)
    for _ in range(lag):
        entity.insert(spec.clean_payload(payload_rng))
    for _ in range(batches):
        entity.insert_many(
            [spec.clean_payload(payload_rng) for _ in range(batch_rows)]
        )
    seed_log.sync()
    tail_ops = [op for _seq, op in seed_log.ship(0)]
    lag_records = lag + batches * batch_rows
    state_checks = 0
    state_diffs = 0
    lane_states: dict[str, bytes] = {}

    def _note_state(name: str, follower) -> None:
        # every lane must land the follower in byte-identical state —
        # compare each fresh capture against every other lane's latest
        nonlocal state_checks, state_diffs
        state = encode_payload(capture_state(follower))
        for other_name, other in lane_states.items():
            if other_name != name:
                state_checks += 1
                if state != other:
                    state_diffs += 1  # pragma: no cover - equivalence bug
        lane_states[name] = state

    def per_op_framed_lane() -> HotpathRow:
        # per-op apply under the same codec discipline: each tail op is
        # individually framed, CRC-checked, decoded and applied — what a
        # non-batched interchange wire pays per op
        follower = make_app()
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for op in tail_ops:
                blob = interchange.frame(interchange.encode_op(op))
                decoded = interchange.decode_value(
                    interchange.unframe(blob)
                )
                apply_op(follower, decoded)
                follower.clock.advance_to(op_tick(decoded))
            # scan-ready: fold the admitted tail into the kernels, as
            # the chunked admission path does eagerly
            follower.store.entity(spec.entity).columnar_stats()
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        _note_state("catch-up per-op framed", follower)
        return HotpathRow(
            "catch-up per-op framed", len(tail_ops), elapsed, [elapsed]
        )

    def catchup_lane(batched: bool) -> HotpathRow:
        log = ReplicationLog()
        for op in tail_ops:
            log.append(op)
        log.sync()
        replica_set = ReplicaSet(make_app, log, count=1)
        name = (
            "catch-up batched frame"
            if batched
            else "catch-up per-op in-memory"
        )
        with forced_interchange(batched):
            gc.collect()
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                replica_set.catch_up()
                replica_set.follower(0).store.entity(
                    spec.entity
                ).columnar_stats()
                elapsed = time.perf_counter() - start
            finally:
                if was_enabled:
                    gc.enable()
        _note_state(name, replica_set.follower(0))
        return HotpathRow(name, len(tail_ops), elapsed, [elapsed])

    rows.extend(_best_of(
        [
            per_op_framed_lane,
            lambda: catchup_lane(False),
            lambda: catchup_lane(True),
        ],
        rounds,
    ))

    # -- 3. scorecard reduce + telemetry shipping -------------------------
    gateway = ShardedGateway.from_design(
        design_model, shard_count=shard_count, users=easychair.USERS,
        cache_capacity=0, max_queue_depth=4096, workers=shard_count,
    )
    try:
        payload_rng = random.Random(seed)
        responses = gateway.submit_many(
            spec.form,
            [spec.clean_payload(payload_rng) for _ in range(preload)],
            writer,
        )
        if any(r.status != 201 for r in responses):  # pragma: no cover
            raise RuntimeError("interchange bench preload failed")
        bounds = {}
        entity_fields = tuple(
            gateway.shards[0].store.entity(spec.entity).fields
        )

        def scorecard_lane(encoded: bool) -> HotpathRow:
            with forced_interchange(encoded):
                elapsed, samples = _timed_loop([
                    (lambda: gateway.live_scorecard(spec.entity))
                ] * scorecard_reads)
            name = (
                "scorecard encoded reduce" if encoded
                else "scorecard locked readings"
            )
            return HotpathRow(name, scorecard_reads, elapsed, samples)

        rows.extend(_best_of(
            [lambda: scorecard_lane(False), lambda: scorecard_lane(True)],
            rounds,
        ))
        with forced_interchange(True):
            lines_on = gateway.live_scorecard(spec.entity)
        with forced_interchange(False):
            lines_off = gateway.live_scorecard(spec.entity)
        equivalence_checks += 1
        if [
            (line.characteristic, line.score, line.evidence)
            for line in lines_on
        ] != [
            (line.characteristic, line.score, line.evidence)
            for line in lines_off
        ]:
            equivalence_diffs += 1  # pragma: no cover - equivalence bug

        # telemetry op-stream shipping: encode one shard's pending queue
        # on a fresh write burst, absorb it into a mirror accumulator
        gateway.submit_many(
            spec.form,
            [spec.clean_payload(payload_rng) for _ in range(64)],
            writer,
        )
        shard_store = gateway.shards[0].store.entity(spec.entity)
        mirror = make_app()
        mirror_store = mirror.store.entity(spec.entity)
        # prime the mirror to the shard's pre-burst state so only the
        # shipped delta separates the two accumulators
        baseline_frame = shard_store.telemetry_frame()
        ops_frame = shard_store.ship_telemetry_ops()
        equivalence_checks += 1
        if ops_frame is None and baseline_frame is None:
            equivalence_diffs += 1  # pragma: no cover - telemetry off
        else:
            shard_fp = interchange.accumulator_fingerprint(
                shard_store.telemetry
            )
            decoded = interchange.decode_accumulator(baseline_frame[1])
            if ops_frame is not None:
                decoded.absorb(interchange.decode_telemetry_ops(ops_frame))
            if interchange.accumulator_fingerprint(decoded) != shard_fp:
                equivalence_diffs += 1  # pragma: no cover
        del entity_fields, bounds, mirror, mirror_store
    finally:
        gateway.close()

    # -- 4. same-seed topology storm, gate on vs off ----------------------
    with forced_interchange(True):
        storm_on = run_topology_chaos(
            seed=seed, shard_count=shard_count, count=storm_count,
            preload=12, replicas=1, staleness_bound=16,
            persistence="file", kills=1, replica_lags=2, failovers=1,
        )
    with forced_interchange(False):
        storm_off = run_topology_chaos(
            seed=seed, shard_count=shard_count, count=storm_count,
            preload=12, replicas=1, staleness_bound=16,
            persistence="file", kills=1, replica_lags=2, failovers=1,
        )
    storm = {
        "ok": storm_on.ok,
        "violations": len(storm_on.violations),
        "identical": (
            storm_on.checksum == storm_off.checksum
            and storm_on.report.render() == storm_off.report.render()
        ),
        "checksum_equal": storm_on.checksum == storm_off.checksum,
        "render_equal": (
            storm_on.report.render() == storm_off.report.render()
        ),
        "migrated": storm_on.migrated,
        "restarts": storm_on.restarts,
        "failovers": storm_on.failovers,
    }

    result = InterchangeBenchResult(
        seed=seed,
        lag=len(tail_ops),
        lag_records=lag_records,
        column_values=column_values,
        rows=rows,
        state_checks=state_checks,
        state_diffs=state_diffs,
        equivalence_checks=equivalence_checks,
        equivalence_diffs=equivalence_diffs,
        storm=storm,
        min_codec_speedup=min_codec_speedup,
        min_catchup_speedup=min_catchup_speedup,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result

"""Single-shard vs N-shard throughput comparison harness.

Reused by ``benchmarks/bench_gateway.py`` and the ``repro cluster-bench``
CLI subcommand.  The protocol keeps the two sides strictly comparable:

1. build the **baseline** — one shard, cache disabled: the pre-cluster
   serving path (a thin dispatch over a single ``WebApp``);
2. build the **gateway** — N shards with the read-through cache;
3. preload both with the same records, then replay the *identical*
   seeded read-heavy operation plan against each from ``threads`` client
   threads and compare wall-clock throughput.

Determinism: the plan is fixed by the seed before any request runs; only
wall-clock timings vary between runs.  The default of one client thread
measures the per-request cost ratio with minimal scheduler noise; the
soak tests separately prove the guarantees under many client threads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.diagrams.ascii import table as render_table

from .gateway import ShardedGateway
from .loadgen import LoadGenerator, LoadReport, READ_HEAVY_MIX
from .resilience import FaultPlan, ResilienceConfig


@dataclass
class ComparisonRow:
    """One measured configuration."""

    label: str
    shard_count: int
    cache_capacity: int
    operations: int
    elapsed: float
    report: LoadReport
    cache_hit_rate: float
    metrics_text: str = ""

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed if self.elapsed else 0.0


@dataclass
class ComparisonResult:
    """Baseline row first; ``speedup`` is gateway vs baseline."""

    rows: list
    preload: int
    threads: int
    seed: int
    has_faulted: bool = False

    @property
    def baseline(self) -> ComparisonRow:
        return self.rows[0]

    @property
    def gateway(self) -> ComparisonRow:
        """The healthy cached N-shard row (never the faulted one)."""
        return self.rows[-2] if self.has_faulted else self.rows[-1]

    @property
    def faulted(self) -> Optional[ComparisonRow]:
        return self.rows[-1] if self.has_faulted else None

    @property
    def speedup(self) -> float:
        base = self.baseline.ops_per_second
        return self.gateway.ops_per_second / base if base else 0.0

    @property
    def degradation(self) -> Optional[float]:
        """Faulted throughput as a fraction of healthy cached throughput."""
        if not self.has_faulted:
            return None
        healthy = self.gateway.ops_per_second
        return self.faulted.ops_per_second / healthy if healthy else 0.0

    def render(self) -> str:
        header = (
            f"gateway throughput, read-heavy mix — {self.preload} records "
            f"preloaded, {self.gateway.operations} operations, "
            f"{self.threads} client thread(s), seed {self.seed}"
        )
        body = render_table(
            ["Configuration", "Ops/s", "Elapsed s", "Cache hit rate"],
            [
                [
                    row.label,
                    f"{row.ops_per_second:,.0f}",
                    f"{row.elapsed:.3f}",
                    f"{row.cache_hit_rate:.1%}"
                    if row.cache_capacity else "—",
                ]
                for row in self.rows
            ],
            max_width=60,
        )
        footer = (
            f"speedup: {self.speedup:.2f}x "
            f"({self.gateway.label} vs {self.baseline.label})"
        )
        if self.has_faulted:
            footer += (
                f"\nunder faults: {self.degradation:.1%} of healthy "
                f"throughput retained ({self.faulted.label})"
            )
        return f"{header}\n{body}\n{footer}"


def _measure(
    gateway: ShardedGateway,
    generator: LoadGenerator,
    plan: Sequence,
    preload: int,
    threads: int,
    label: str,
) -> ComparisonRow:
    from repro.casestudy.easychair import complete_review

    spec = generator.spec
    for _ in range(preload):
        response = gateway.submit(
            spec.form, complete_review(), spec.cleared_users[0]
        )
        if response.status != 201:  # pragma: no cover - preload must land
            raise RuntimeError(f"preload write failed: {response.status}")
    # warm one listing per user so every configuration starts from the
    # same cache state and (when resilient) a last-known-good body exists
    # before any fault window opens
    for user in (*spec.cleared_users, *spec.uncleared_users):
        gateway.list(spec.entity, user)
    start = time.perf_counter()
    report = generator.run(gateway, operations=list(plan), threads=threads)
    elapsed = time.perf_counter() - start
    return ComparisonRow(
        label=label,
        shard_count=len(gateway.shards),
        cache_capacity=gateway.cache.capacity,
        operations=len(plan),
        elapsed=elapsed,
        report=report,
        cache_hit_rate=gateway.cache.stats.hit_rate,
        metrics_text=gateway.metrics.render(gateway.cache.stats),
    )


def run_comparison(
    shard_count: int = 4,
    count: int = 600,
    preload: int = 400,
    seed: int = 23,
    threads: int = 1,
    cache_capacity: int = 512,
    include_uncached: bool = False,
    include_faulted: bool = False,
    design_model=None,
    users: Optional[Sequence[tuple]] = None,
    mix: Optional[dict] = None,
) -> ComparisonResult:
    """Measure the single-shard baseline against the N-shard gateway.

    Returns the result with the baseline as the first row and the cached
    N-shard gateway as the last healthy row; ``include_uncached`` adds an
    uncached N-shard row in between (isolates sharding vs caching), and
    ``include_faulted`` appends a row where shard 0 crashes permanently
    right after warm-up — measuring how much throughput the resilience
    layer (retry, breaker shedding, degraded reads) retains.
    """
    from repro.casestudy import easychair

    if design_model is None:
        design_model = easychair.build_design()
    if users is None:
        users = easychair.USERS
    generator = LoadGenerator(seed=seed, mix=dict(mix or READ_HEAVY_MIX))
    plan = generator.plan(count)
    spec = generator.spec

    configurations = [
        ("1 shard (baseline, uncached)", 1, 0, None),
    ]
    if include_uncached:
        configurations.append(
            (f"{shard_count} shards (uncached)", shard_count, 0, None)
        )
    configurations.append(
        (f"{shard_count} shards (cached)", shard_count, cache_capacity, None)
    )
    if include_faulted:
        # the crash window opens after the preload submits plus the
        # per-user warm listings (each listing touches every shard)
        warm_users = len(spec.cleared_users) + len(spec.uncleared_users)
        fault_start = preload + warm_users * shard_count
        configurations.append((
            f"{shard_count} shards (cached, shard 0 down)",
            shard_count,
            cache_capacity,
            FaultPlan.crash_shard(0, start=fault_start),
        ))

    rows = []
    for label, shards, capacity, fault_plan in configurations:
        gateway = ShardedGateway.from_design(
            design_model,
            shard_count=shards,
            users=users,
            cache_capacity=capacity,
            max_queue_depth=max(512, count),
            workers=shards,
            fault_plan=fault_plan,
            resilience=(
                ResilienceConfig() if fault_plan is not None else None
            ),
        )
        try:
            rows.append(
                _measure(gateway, generator, plan, preload, threads, label)
            )
        finally:
            gateway.close()
    return ComparisonResult(
        rows=rows, preload=preload, threads=threads, seed=seed,
        has_faulted=include_faulted,
    )

"""Elastic topology: the replicated ring gateway and its chaos harness.

:class:`RingGateway` upgrades the fixed-N :class:`ShardedGateway` along
three axes at once, each riding the machinery an earlier layer already
proved out:

* **Placement** moves from ``fnv1a mod N`` to the consistent-hash ring
  (:class:`~repro.cluster.ring.RingRouter`), so the fleet can grow and
  shrink while roughly ``1/N`` of the keys move instead of ``(N-1)/N``.
* **Replication** gives every shard a set of followers fed by the
  primary's op log (:class:`~repro.cluster.replication.ReplicaSet` over
  the PR-6 WAL stream).  Reads are served from followers as **203
  Non-Authoritative** responses carrying the observed lag and the
  configured staleness bound — the same explicit-degradation idiom the
  resilience layer already uses, so stale data is never silent.  A read
  never serves lag beyond the bound: past it the follower is forcibly
  caught up first.
* **Elasticity** adds live ``split_shard`` / ``merge_shard``: records
  stream donor→recipient in WAL ``adopt``/``retire`` ops while the
  gateway keeps serving, with per-record routing overrides pinning each
  record to whichever shard actually holds it mid-move.

Failover (the new ``FAILOVER`` fault) promotes the most caught-up
follower under the dead primary's shard lock: the follower drains every
*acked* op, takes over the durable log via
:meth:`~repro.cluster.replication.ReplicationLog.successor`, and serves
— no acknowledged write is lost, by construction (acked ⇒ synced ⇒
shipped).  Without replication the fault degrades to the kill-restart
semantics, which is the negative control the chaos battery checks.

:func:`run_topology_chaos` is the seeded harness: one planned workload
executed in segments with a live split at one third and a live merge at
two thirds, under the full fault plan (crashes, kills, replica lag,
failovers).  With ``threads=1`` the whole run — report, applied faults,
final cluster state checksum — is a pure function of the seed, and a
faultless topology run is byte-for-byte equal (report and checksum) to
its fixed-topology twin: clients cannot tell a reshard happened.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import AuthorizationError
from repro.dq.metadata import Clock
from repro.persistence import op_tick
from repro.runtime import audit as audit_events
from repro.runtime.http import (
    forbidden,
    not_found,
    ok,
    replica_read,
    unavailable,
)

from .gateway import ShardedGateway
from .replication import ReplicaSet, ReplicationLog
from .resilience import CircuitBreaker, FaultPlan, ShardUnavailable
from .ring import DEFAULT_VNODES, HashRing, RingRouter
from .sharding import fnv1a

#: Default follower-read staleness bound (acked-but-unapplied ops).
DEFAULT_STALENESS_BOUND = 16


class RingGateway(ShardedGateway):
    """A :class:`ShardedGateway` with ring placement, follower reads and
    live split/merge.

    ``replicas`` followers per shard serve reads (0 disables replication
    entirely — ring routing only); ``staleness_bound`` caps the
    acked-ops lag a follower read may serve.  Build through
    :meth:`from_design`, which wraps every shard's persistence in a
    :class:`ReplicationLog` so the op stream exists even on otherwise
    memory-backed fleets.
    """

    def __init__(
        self,
        shards,
        replicas: int = 1,
        staleness_bound: int = DEFAULT_STALENESS_BOUND,
        vnodes: int = DEFAULT_VNODES,
        **gateway_options,
    ):
        super().__init__(shards, **gateway_options)
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be >= 0")
        self.router = RingRouter(len(self.shards), vnodes=vnodes)
        self.replicas = replicas
        self.staleness_bound = staleness_bound
        self.replica_sets: list[Optional[ReplicaSet]] = (
            [None] * len(self.shards)
        )
        self._follower_factory = None
        self._topology_lock = threading.RLock()
        self._lag_lock = threading.Lock()
        self._lag_inhibit = [False] * len(self.shards)
        # deterministic counters the chaos report renders
        self.splits = 0
        self.merges = 0
        self.migrated = 0
        self.failovers = 0
        self.replica_reads = 0
        self.stale_serves = 0
        self.max_served_lag = 0

    # -- assembly ---------------------------------------------------------

    @classmethod
    def from_design(
        cls,
        design_model,
        shard_count: int = 4,
        users: Sequence[tuple] = (),
        persistence=None,
        replicas: int = 1,
        staleness_bound: int = DEFAULT_STALENESS_BOUND,
        vnodes: int = DEFAULT_VNODES,
        **gateway_options,
    ) -> "RingGateway":
        """Build a replicated ring fleet from a design model.

        ``persistence`` is the same per-shard durable-backend factory the
        base gateway takes; every shard's backend (or, without one, a
        pure in-memory log) is wrapped in a :class:`ReplicationLog`, so
        followers always have an op stream to pull.
        """
        from repro.runtime.dqengine import build_app
        from repro.runtime.vpipeline import PlanCache

        def wrapped(index: int) -> ReplicationLog:
            if persistence is None:
                return ReplicationLog()
            return ReplicationLog(
                persistence(index), lambda index=index: persistence(index)
            )

        gateway = super().from_design(
            design_model,
            shard_count=shard_count,
            users=users,
            baseline=False,
            persistence=wrapped,
            replicas=replicas,
            staleness_bound=staleness_bound,
            vnodes=vnodes,
            **gateway_options,
        )
        if replicas > 0:
            # followers are structurally identical apps with no durable
            # backend of their own — they replay the primary's log, so
            # confidentiality buckets, indexes and telemetry are rebuilt
            # by the same restore paths crash recovery uses
            follower_cache = PlanCache()

            def make_follower():
                app = build_app(
                    design_model, clock=Clock(), plan_cache=follower_cache
                )
                for name, level, roles in users:
                    app.add_user(name, level, roles)
                return app

            gateway._follower_factory = make_follower
            for index, shard in enumerate(gateway.shards):
                replica_set = ReplicaSet(
                    make_follower, shard.persistence, count=replicas
                )
                # covers the recovered-from-disk case: followers start
                # from the primary's snapshot at the acked watermark
                replica_set.seed_from(shard)
                gateway.replica_sets[index] = replica_set
        return gateway

    @property
    def _replicated(self) -> bool:
        return self._follower_factory is not None

    def _make_breaker(self, shard_index: int) -> CircuitBreaker:
        clock = (
            self.fault_injector.clock
            if self.fault_injector is not None else None
        )
        return CircuitBreaker(
            failure_threshold=self.resilience.breaker_failure_threshold,
            cooldown=self.resilience.breaker_cooldown,
            clock=clock,
            on_transition=(
                lambda origin, to, shard=shard_index:
                self.metrics.observe_breaker(shard, origin, to)
            ),
        )

    # -- follower reads ---------------------------------------------------

    def _refresh_followers(self, shard_index: int, primary) -> int:
        """Catch the shard's followers up (honoring one pending injected
        lag window) and return the lag a read may serve.

        The staleness bound is enforced here by construction: a lag
        window only survives when the follower is within the bound —
        past it the catch-up happens anyway, so no replica read can ever
        serve more than ``staleness_bound`` acked-but-unapplied ops.
        """
        replica_set = self.replica_sets[shard_index]
        with self._lag_lock:
            inhibited = self._lag_inhibit[shard_index]
            self._lag_inhibit[shard_index] = False
        if inhibited:
            lag = replica_set.lag()
            if lag <= self.staleness_bound:
                with self._lag_lock:
                    self.replica_reads += 1
                    if lag:
                        self.stale_serves += 1
                        if lag > self.max_served_lag:
                            self.max_served_lag = lag
                return lag
        replica_set.catch_up(now=primary.clock.peek())
        with self._lag_lock:
            self.replica_reads += 1
        return replica_set.lag()

    def _on_replica_lag_fault(self, shard_index: int) -> None:
        """Arm one skipped catch-up: the next follower read on this
        shard serves whatever the follower already has (within the
        staleness bound) instead of pulling the log first."""
        if (
            shard_index < len(self.replica_sets)
            and self.replica_sets[shard_index] is not None
        ):
            with self._lag_lock:
                self._lag_inhibit[shard_index] = True

    def _replica_view(self, shard_index, primary, entity, record_id, user):
        """One follower-served record read, audited on the primary."""
        replica_set = self.replica_sets[shard_index]
        lag = self._refresh_followers(shard_index, primary)
        follower = replica_set.follower()
        try:
            stored = follower.store.entity(entity).get(record_id)
        except KeyError:
            # behind the primary (or truly absent): answer authoritatively
            try:
                stored = primary.read_record(entity, record_id, user)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            except KeyError:
                return not_found(f"no record {record_id}")
            return ok({
                "id": stored.record_id,
                "version": stored.version,
                **stored.data,
            })
        account = follower.users.get(user)
        if not stored.metadata.accessible_by(user, account.level):
            primary.audit.record(
                audit_events.REJECT_AUTH, user, entity, record_id,
                detail="read denied by confidentiality policy",
            )
            return forbidden(f"user {user!r} may not read {entity}#{record_id}")
        primary.audit.record(audit_events.READ, user, entity, record_id)
        return replica_read(
            {"id": stored.record_id, "version": stored.version, **stored.data},
            lag=lag,
            bound=self.staleness_bound,
        )

    def view(self, entity: str, record_id: int, user: str):
        if not self._replicated:
            return super().view(entity, record_id, user)
        if self._closed:
            self.metrics.observe_unavailable()
            return unavailable("gateway is closed")
        shard_index = self.router.shard_for(entity, record_id)
        base_key = self.cache.view_key(
            entity, record_id, user, self._clearance(user)
        )

        def work():
            target = shard_index
            for _attempt in range(2):
                try:
                    response = self._call_shard(
                        "view", target,
                        lambda primary, target=target: self._replica_view(
                            target, primary, entity, record_id, user
                        ),
                    )
                except ShardUnavailable as exc:
                    return self._degraded_read("view", entity, base_key, exc)
                if response.status != 404:
                    return response
                # a migration may have moved the record between routing
                # and serving; re-resolve once and retry
                current = self.router.shard_for(entity, record_id)
                if current == target:
                    return response
                target = current
            return response

        return self._dispatch("view", (shard_index,), work)

    def _replica_list(self, shard_index, primary, entity, user):
        """One shard's follower-served listing chunk, audited on the
        primary (same READ event the authoritative path records)."""
        replica_set = self.replica_sets[shard_index]
        lag = self._refresh_followers(shard_index, primary)
        follower = replica_set.follower()
        account = follower.users.get(user)
        visible = follower.store.readable_by(entity, user, account.level)
        primary.audit.record(
            audit_events.READ, user, entity,
            detail=f"{len(visible)} record(s) visible",
        )
        rows = [
            {"id": s.record_id, "version": s.version, **s.data}
            for s in visible
        ]
        return rows, lag

    def list(self, entity: str, user: str):
        if not self._replicated:
            return super().list(entity, user)
        if self._closed:
            self.metrics.observe_unavailable()
            return unavailable("gateway is closed")
        base_key = self.cache.list_key(entity, user, self._clearance(user))

        def work():
            body: list[dict] = []
            max_lag = 0
            try:
                for shard_index in self.router.all_shards():
                    rows, lag = self._call_shard(
                        "list", shard_index,
                        lambda primary, shard_index=shard_index:
                        self._replica_list(shard_index, primary, entity, user),
                    )
                    body.extend(rows)
                    max_lag = max(max_lag, lag)
            except ShardUnavailable as exc:
                return self._degraded_read("list", entity, base_key, exc)
            body.sort(key=lambda row: row["id"])
            # a record mid-migration can briefly exist on two shards
            # (adopted by the recipient, retire not yet replayed on a
            # lagging donor follower) — keep the newest version per id
            deduped: list[dict] = []
            for row in body:
                if deduped and deduped[-1]["id"] == row["id"]:
                    if row["version"] > deduped[-1]["version"]:
                        deduped[-1] = row
                else:
                    deduped.append(row)
            self._remember_good(
                base_key, deduped, self._entity_version(entity)
            )
            return replica_read(
                deduped, lag=max_lag, bound=self.staleness_bound
            )

        return self._dispatch("list", tuple(self.router.all_shards()), work)

    def _scorecard_apps(self):
        """Live scorecards are served from the followers: each one is
        caught up (honoring a pending lag window) and read in place of
        its primary — the cheap path for the expensive question."""
        if not self._replicated:
            return self.shards
        apps = []
        for index, shard in enumerate(self.shards):
            replica_set = (
                self.replica_sets[index]
                if index < len(self.replica_sets) else None
            )
            if replica_set is None:
                apps.append(shard)
            else:
                self._refresh_followers(index, shard)
                apps.append(replica_set.follower())
        return apps

    # -- failover ----------------------------------------------------------

    def _on_failover_fault(self, shard_index: int) -> None:
        """The primary dies mid-fleet: promote the most caught-up
        follower under the shard lock.

        The dead primary's staged-but-unsynced ops are dropped (exactly
        what a crash loses); everything acked was shipped, so the
        follower drains the log tail and takes over the primary's
        durable location with no acknowledged write lost.  Without a
        replica set the fault degrades to the base kill-restart."""
        replica_set = (
            self.replica_sets[shard_index]
            if shard_index < len(self.replica_sets) else None
        )
        if replica_set is None:
            return super()._on_failover_fault(shard_index)
        with self._shard_locks[shard_index]:
            old = self.shards[shard_index]
            log: ReplicationLog = old.persistence
            log.kill()
            replica_set.catch_up()
            promoted, _lead = replica_set.promote()
            successor = log.successor()
            promoted.attach_persistence(successor)
            self.shards[shard_index] = promoted
            replica_set.rebind(successor)
            self.shard_restarts[shard_index] += 1
            with self._lag_lock:
                self.failovers += 1

    def fail_over(self, shard_index: int) -> None:
        """Deliberately lose one primary (failover drills)."""
        self._on_failover_fault(shard_index)

    def _kill_and_restart(self, shard_index: int) -> None:
        super()._kill_and_restart(shard_index)
        replica_set = (
            self.replica_sets[shard_index]
            if shard_index < len(self.replica_sets) else None
        )
        if replica_set is not None:
            with self._shard_locks[shard_index]:
                restarted = self.shards[shard_index]
                replica_set.rebind(restarted.persistence)
                replica_set.seed_from(restarted)

    # -- live topology changes --------------------------------------------

    def split_shard(self) -> int:
        """Join a fresh shard and stream its ring share to it, live.

        Every record the grown ring assigns to the new node is first
        pinned (via a routing override) to the shard that holds it, so
        lookups keep resolving correctly from the instant the ring
        changes until each record finishes streaming."""
        if self._shard_factory is None:
            raise RuntimeError(
                "split_shard needs a shard factory (build via from_design)"
            )
        with self._topology_lock:
            new_index = len(self.shards)
            new_name = RingRouter.node_name(new_index)
            live = self.router.all_shards()
            probe = HashRing(
                [RingRouter.node_name(i) for i in live] + [new_name],
                vnodes=self.router.vnodes,
            )
            for donor in live:
                app = self.shards[donor]
                with self._shard_locks[donor]:
                    for entity_name in app.store.entity_names:
                        for stored in app.store.entity(entity_name).all():
                            key = f"{entity_name}#{stored.record_id}"
                            if probe.owner_of(key) == new_name:
                                self.router.route_override(
                                    entity_name, stored.record_id, donor
                                )
            app = self._shard_factory(new_index)
            self.shards.append(app)
            self._shard_locks.append(threading.RLock())
            self.shard_restarts.append(0)
            if self._breakers is not None:
                self._breakers.append(self._make_breaker(new_index))
            self.metrics.shard_count += 1
            if self._replicated:
                replica_set = ReplicaSet(
                    self._follower_factory, app.persistence,
                    count=self.replicas,
                )
                replica_set.seed_from(app)
                self.replica_sets.append(replica_set)
            else:
                self.replica_sets.append(None)
            with self._lag_lock:
                self._lag_inhibit.append(False)
            admitted = self.router.add_shard()
            assert admitted == new_index
            self._migrate_to_ring()
            self.splits += 1
            return new_index

    def merge_shard(self, victim: int) -> None:
        """Retire one shard, streaming its records to the survivors.

        The victim's index stays a valid (empty) slot — audit history
        and metrics keep their shard identities — but the ring stops
        assigning it keys and ``all_shards`` stops listing it."""
        with self._topology_lock:
            live = self.router.all_shards()
            if victim not in live:
                raise ValueError(f"shard {victim} is not live")
            if len(live) < 2:
                raise ValueError("cannot merge the last live shard")
            app = self.shards[victim]
            with self._shard_locks[victim]:
                for entity_name in app.store.entity_names:
                    for stored in app.store.entity(entity_name).all():
                        self.router.route_override(
                            entity_name, stored.record_id, victim
                        )
            self.router.remove_shard(victim)
            self._migrate_to_ring()
            self.merges += 1

    def _migrate_to_ring(self) -> None:
        """Stream every record to its ring owner until placement settles.

        Sweeps repeatedly because a write can land on a donor between
        the planning scan and the ring change; the loop terminates
        because post-change allocations already route to ring owners."""
        while True:
            moves: list[tuple[str, int, int, int]] = []
            for index in range(len(self.shards)):
                app = self.shards[index]
                with self._shard_locks[index]:
                    for entity_name in app.store.entity_names:
                        for stored in app.store.entity(entity_name).all():
                            owner = self.router.ring_owner(
                                entity_name, stored.record_id
                            )
                            if owner != index:
                                moves.append(
                                    (entity_name, stored.record_id,
                                     index, owner)
                                )
            if not moves:
                return
            for entity_name, record_id, donor, recipient in moves:
                self._stream_record(entity_name, record_id, donor, recipient)

    def _stream_record(
        self, entity_name: str, record_id: int, donor: int, recipient: int
    ) -> None:
        """Move one record donor→recipient under both shard locks.

        The handoff is durable on both sides: the recipient logs an
        ``adopt`` op (data + metadata sidecar + version, id pinned), the
        donor logs a ``retire`` — both group-committed — and each side's
        followers replay the same ops.  The routing override is cleared
        between the two, so the record is always served from a shard
        that holds it: before the clear lookups resolve to the donor,
        after it to the recipient.  Audit history stays on the donor."""
        first, second = sorted((donor, recipient))
        with self._shard_locks[first], self._shard_locks[second]:
            donor_app = self.shards[donor]
            recipient_app = self.shards[recipient]
            try:
                stored = donor_app.store.entity(entity_name).get(record_id)
            except KeyError:  # raced away (already moved): nothing to do
                self.router.clear_override(entity_name, record_id)
                return
            meta_state = stored.metadata.to_state()
            adopt = {
                "op": "adopt",
                "entity": entity_name,
                "id": record_id,
                "data": dict(stored.data),
                "meta": meta_state,
                "version": stored.version,
            }
            recipient_app.store.entity(entity_name).restore_record(
                record_id,
                dict(stored.data),
                metadata_state=meta_state,
                version=stored.version,
                reserve=True,
            )
            # the adopted record's stamps may postdate the recipient's
            # clock; currentness must never see a negative age
            recipient_app.clock.advance_to(op_tick(adopt))
            recipient_app.persistence.append(adopt)
            recipient_app.commit()
            self.router.clear_override(entity_name, record_id)
            donor_app.store.entity(entity_name).restore_delete(record_id)
            donor_app.persistence.append(
                {"op": "retire", "entity": entity_name, "id": record_id}
            )
            donor_app.commit()
            with self._lag_lock:
                self.migrated += 1

    # -- introspection ----------------------------------------------------

    def describe(self) -> str:
        lines = [super().describe()]
        live = self.router.all_shards()
        lines.append(
            f"  ring: {len(live)} live shard(s) x {self.router.vnodes} "
            f"vnode(s), {self.replicas} follower(s)/shard, "
            f"staleness bound {self.staleness_bound}"
        )
        return "\n".join(lines)


# -- cluster-state oracle ----------------------------------------------------


def cluster_state(gateway: ShardedGateway) -> list[tuple]:
    """Every record in the fleet as placement-independent sorted rows.

    ``(entity, id, version, sorted field items)`` across all shards —
    two fleets holding the same data produce equal states no matter how
    the ring scattered the records, so a resharded run can be compared
    row-for-row against its fixed-topology twin."""
    rows = []
    for shard in gateway.shards:
        for entity_name in shard.store.entity_names:
            for stored in shard.store.entity(entity_name).all():
                rows.append((
                    entity_name,
                    stored.record_id,
                    stored.version,
                    tuple(sorted(
                        (key, repr(value))
                        for key, value in stored.data.items()
                    )),
                ))
    rows.sort()
    return rows


def state_checksum(rows: list[tuple]) -> int:
    """A 64-bit FNV-1a digest of a :func:`cluster_state` dump."""
    return fnv1a(repr(rows))


# -- the topology-chaos harness ----------------------------------------------


@dataclass
class TopologyChaosResult:
    """Everything one seeded topology-chaos run produced."""

    seed: int
    plan: FaultPlan
    report: object  # LoadReport
    violations: list
    applied: Counter
    preloaded: frozenset
    backend: str
    replicas: int
    staleness_bound: int
    initial_shards: int
    final_shards: int
    splits: int
    merges: int
    migrated: int
    failovers: int
    restarts: int
    max_served_lag: int
    replica_reads: int
    records: int
    checksum: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """Counters only — a same-seed single-threaded run re-renders
        byte-for-byte (the chaos determinism contract)."""
        sections = [
            f"topology chaos run — seed {self.seed}, "
            f"{len(self.preloaded)} record(s) preloaded",
            self.plan.render(),
            self.report.render(),
        ]
        if self.applied:
            sections.append(
                "faults applied: " + ", ".join(
                    f"{kind}×{count}"
                    for kind, count in sorted(self.applied.items())
                )
            )
        sections.append(
            f"topology: {self.initial_shards} -> {self.final_shards} live "
            f"shard(s), {self.splits} split(s), {self.merges} merge(s), "
            f"{self.migrated} record(s) migrated"
        )
        sections.append(
            f"replication: {self.replicas} follower(s)/shard on "
            f"{self.backend}, staleness bound {self.staleness_bound}, "
            f"max served lag {self.max_served_lag}, "
            f"{self.failovers} failover(s), {self.restarts} restart(s)"
        )
        sections.append(
            f"cluster state: {self.records} record(s), "
            f"checksum {self.checksum:016x}"
        )
        if self.violations:
            sections.append(
                f"guarantee report: {len(self.violations)} VIOLATION(S)"
            )
            sections.extend(f"  !! {v}" for v in self.violations)
        else:
            sections.append(
                "guarantee report: zero violations (no lost acknowledged "
                "writes, no double-applied retries, no confidentiality "
                "leaks, no untagged stale reads)"
            )
        return "\n".join(sections)


def run_topology_chaos(
    seed: int = 0,
    *,
    shard_count: int = 3,
    count: int = 300,
    preload: int = 24,
    threads: int = 1,
    replicas: int = 1,
    staleness_bound: int = DEFAULT_STALENESS_BOUND,
    vnodes: int = 64,
    mix: Optional[dict] = None,
    design_model=None,
    users: Optional[Sequence[tuple]] = None,
    config=None,
    plan: Optional[FaultPlan] = None,
    persistence: Optional[str] = None,
    data_dir=None,
    kills: int = 0,
    replica_lags: int = 2,
    failovers: int = 1,
    topology: bool = True,
) -> TopologyChaosResult:
    """One seeded chaos run over a replicated ring fleet with a live
    split at one third of the workload and a live merge (of shard 0) at
    two thirds.

    Mirrors :func:`repro.cluster.resilience.run_chaos` — preload clean,
    inject the seeded plan over the mixed workload, verify every DQ
    guarantee — plus the topology storm.  ``topology=False`` runs the
    identical plan against a fixed ring: the faultless oracle twin, whose
    report and state checksum a faultless topology run must reproduce
    exactly.  With ``threads=1`` the result is a pure function of the
    arguments.
    """
    import tempfile

    from repro.casestudy import easychair
    from repro.persistence import persistence_factory

    from .loadgen import (
        CHAOS_MIX,
        LoadGenerator,
        LoadReport,
        verify_guarantees,
    )
    from .resilience import ResilienceConfig

    if design_model is None:
        design_model = easychair.build_design()
    if users is None:
        users = easychair.USERS
    if config is None:
        config = ResilienceConfig()
    if plan is None:
        horizon = preload + count * 2
        plan = FaultPlan.seeded(
            seed,
            shard_count=shard_count,
            horizon=horizon,
            start=preload,
            operation_timeout=config.operation_timeout,
            kills=kills,
            replica_lags=replica_lags,
            failovers=failovers,
        )
    factory = None
    tempdir = None
    if persistence is not None:
        if data_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-topology-")
            data_dir = tempdir.name
        factory = persistence_factory(data_dir, kind=persistence)
    generator = LoadGenerator(seed=seed, mix=dict(mix or CHAOS_MIX))
    gateway = RingGateway.from_design(
        design_model,
        shard_count=shard_count,
        users=users,
        fault_plan=plan,
        resilience=config,
        max_queue_depth=max(512, count),
        workers=shard_count,
        persistence=factory,
        replicas=replicas,
        staleness_bound=staleness_bound,
        vnodes=vnodes,
    )
    try:
        spec = generator.spec
        import random as _random

        rng = _random.Random(seed)
        preloaded = set()
        for _ in range(preload):
            response = gateway.submit(
                spec.form, spec.clean_payload(rng), spec.cleared_users[0]
            )
            if response.status != 201:  # pragma: no cover - preload is clean
                raise RuntimeError(f"preload write failed: {response.status}")
            preloaded.add(response.body["id"])
        operations = generator.plan(count)
        report = LoadReport(spec=spec)
        if topology and count >= 3:
            first_cut = count // 3
            second_cut = (2 * count) // 3
            generator.run(
                gateway, operations=operations[:first_cut],
                threads=threads, report=report,
            )
            gateway.split_shard()
            generator.run(
                gateway, operations=operations[first_cut:second_cut],
                threads=threads, report=report,
            )
            gateway.merge_shard(0)
            generator.run(
                gateway, operations=operations[second_cut:],
                threads=threads, report=report,
            )
        else:
            generator.run(
                gateway, operations=operations,
                threads=threads, report=report,
            )
        violations = verify_guarantees(
            gateway, report, ignore_ids=frozenset(preloaded)
        )
        if gateway.router.overrides_active():
            violations.append(
                f"{gateway.router.overrides_active()} unresolved migration "
                f"override(s) after the run"
            )
        applied = Counter(
            gateway.fault_injector.applied
        ) if gateway.fault_injector else Counter()
        rows = cluster_state(gateway)
        result = TopologyChaosResult(
            seed=seed,
            plan=plan,
            report=report,
            violations=violations,
            applied=applied,
            preloaded=frozenset(preloaded),
            backend=gateway.shards[0].persistence.name,
            replicas=replicas,
            staleness_bound=staleness_bound,
            initial_shards=shard_count,
            final_shards=len(gateway.router.all_shards()),
            splits=gateway.splits,
            merges=gateway.merges,
            migrated=gateway.migrated,
            failovers=gateway.failovers,
            restarts=sum(gateway.shard_restarts),
            max_served_lag=gateway.max_served_lag,
            replica_reads=gateway.replica_reads,
            records=len(rows),
            checksum=state_checksum(rows),
        )
    finally:
        gateway.close()
        if tempdir is not None:
            tempdir.cleanup()
    return result

"""The sharded DQ gateway: N ``WebApp`` shards behind one serving facade.

``ShardedGateway`` is the serving layer the ROADMAP's scale goal needs and
the paper's case study never had to build: every DQSR guarantee the
single-threaded :class:`~repro.runtime.app.WebApp` enforces (completeness
and precision validation, confidentiality filtering, traceability and
audit, optimistic concurrency) is preserved while requests fan out across
shards from a worker thread pool.

Design in one breath:

* **Placement** — the gateway allocates global record ids and routes every
  keyed operation with :class:`~repro.cluster.sharding.ShardRouter`
  (``fnv1a(entity#id) mod N``); listing reads scatter to all shards and
  gather a merged, id-sorted body.
* **Isolation** — each shard is guarded by its own re-entrant lock, so a
  shard's ``WebApp`` only ever sees one request at a time and stays
  internally consistent; different shards serve concurrently.
* **Backpressure** — admitted-but-unfinished dispatches are counted; past
  ``max_queue_depth`` the gateway answers **429** immediately instead of
  queueing without bound, and **503** once closed.
* **Caching** — reads go through a confidentiality-aware
  :class:`~repro.cluster.cache.ReadThroughCache`; accepted writes bump a
  per-entity data version (and drop the entity's entries), so a stale body
  can never be served after the write was acknowledged.

Cross-shard listing is *per-shard consistent*, not a cross-shard snapshot:
a scatter-gather that races a write may see the write on one shard and not
another — the same contract most production sharded stores offer.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import (
    AuthorizationError,
    DataQualityViolation,
    VersionConflictError,
)
from repro.dq.metadata import Clock
from repro.interchange import interchange_active
from repro.runtime.app import WebApp
from repro.runtime.http import (
    Request,
    Response,
    bad_request,
    conflict,
    created,
    degraded,
    forbidden,
    method_not_allowed,
    not_found,
    ok,
    too_many_requests,
    unavailable,
    unprocessable,
)

from .cache import LastGoodStore, ReadThroughCache
from .metrics import GatewayMetrics
from .resilience import (
    CACHE_FILL,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    IdempotencyRegistry,
    OperationTimeout,
    ResilienceConfig,
    ShardCrashed,
    ShardFailedOver,
    ShardKilled,
    ShardUnavailable,
    TaskDropped,
    TransientShardFault,
)
from .sharding import ShardRouter


@dataclass(frozen=True)
class GatewayRoute:
    """One exposed HTTP-facade route: kind + path pattern + target."""

    kind: str  # "create" | "update" | "list" | "view"
    method: str
    path: str
    target: str  # form name (create/update) or entity name (list/view)

    @property
    def parameterized(self) -> bool:
        return "<" in self.path

    def match(self, path: str) -> Optional[dict]:
        pattern = [s for s in self.path.split("/") if s]
        segments = [s for s in path.split("/") if s]
        if len(pattern) != len(segments):
            return None
        params: dict = {}
        for expected, actual in zip(pattern, segments):
            if expected.startswith("<") and expected.endswith(">"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class ShardedGateway:
    """A thread-parallel, sharded, caching front for N ``WebApp`` shards.

    ``shards`` must be built identically (same entities, forms, policies
    and registered users) — :meth:`from_design` does exactly that from a
    design model.  ``cache_capacity=0`` disables the read cache;
    ``max_queue_depth`` bounds admitted-but-unfinished dispatches before
    429s start; ``workers`` sizes the dispatch pool (default: one per
    shard).
    """

    def __init__(
        self,
        shards: Sequence[WebApp],
        cache_capacity: int = 256,
        max_queue_depth: int = 64,
        workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        write_batch_max: int = 32,
    ):
        if not shards:
            raise ValueError("a gateway needs at least one shard")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if write_batch_max < 1:
            raise ValueError("write_batch_max must be >= 1")
        self.shards = list(shards)
        self.write_batch_max = write_batch_max
        # form→entity and user→clearance are static once the shards are
        # built; memoize them so the hot paths stop re-resolving through
        # shard 0 (and do so without that shard's lock) on every request.
        # Late registrations are absorbed lazily by the accessors.
        self._form_entities: dict[str, str] = {
            form.name: form.entity for form in self.shards[0].forms
        }
        self._user_levels: dict[str, int] = {
            account.name: account.level
            for account in self.shards[0].users.accounts()
        }
        self.router = ShardRouter(len(self.shards))
        self.cache = ReadThroughCache(cache_capacity)
        self.metrics = GatewayMetrics(len(self.shards))
        self.max_queue_depth = max_queue_depth
        self._shard_locks = [threading.RLock() for _ in self.shards]
        self._pool = ThreadPoolExecutor(
            max_workers=workers or len(self.shards),
            thread_name_prefix="gateway",
        )
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._entity_versions: dict[str, int] = {}
        self._version_lock = threading.Lock()
        self._routes: list[GatewayRoute] = []
        self._closed = False
        # Encoded scorecard reduce (repro.interchange): per-(entity,
        # shard-index) decoded accumulator snapshots and the merged
        # reduction, each keyed by the producing store's frame cache key
        # so any absorbed mutation invalidates them.
        self._frame_decode_cache: dict[tuple, tuple] = {}
        self._frame_merge_cache: dict[str, tuple] = {}
        self._frame_lock = threading.Lock()
        # Durability: ``_shard_factory(index)`` rebuilds shard ``index``
        # from its durable state after a kill (set by ``from_design``);
        # without one, injected kills degrade to plain crashes.
        self._shard_factory = None
        self.shard_restarts = [0] * len(self.shards)
        # -- resilience layer: injected faults must be survivable --------
        if fault_plan is not None and resilience is None:
            resilience = ResilienceConfig()
        self.resilience = resilience
        self.fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._op_tokens = itertools.count(1)
        if resilience is not None:
            clock = (
                self.fault_injector.clock
                if self.fault_injector is not None else None
            )
            self._breakers: Optional[list[CircuitBreaker]] = [
                CircuitBreaker(
                    failure_threshold=resilience.breaker_failure_threshold,
                    cooldown=resilience.breaker_cooldown,
                    clock=clock,
                    on_transition=(
                        lambda origin, to, shard=index:
                        self.metrics.observe_breaker(shard, origin, to)
                    ),
                )
                for index in range(len(self.shards))
            ]
            self._idempotency: Optional[IdempotencyRegistry] = (
                IdempotencyRegistry(resilience.idempotency_capacity)
            )
            self._last_good: Optional[LastGoodStore] = LastGoodStore(
                resilience.last_good_capacity
            )
        else:
            self._breakers = None
            self._idempotency = None
            self._last_good = None

    # -- assembly ---------------------------------------------------------

    @classmethod
    def from_design(
        cls,
        design_model,
        shard_count: int = 4,
        users: Sequence[tuple] = (),
        baseline: bool = False,
        persistence=None,
        **gateway_options,
    ) -> "ShardedGateway":
        """Build ``shard_count`` identical shards from a design model.

        ``users`` are ``(name, level, roles)`` triples registered on every
        shard (reads broadcast, so each shard must know every account).
        ``baseline=True`` builds no-DQ shards — the comparison harness.
        ``persistence`` is a per-shard backend factory
        (:func:`repro.persistence.persistence_factory`): each shard gets
        ``persistence(index)`` as its durable store and is **recovered
        from it** at build time, so constructing a gateway over an
        existing data directory resumes where the last process stopped.
        """
        from repro.persistence import recover_app
        from repro.runtime.dqengine import build_app, build_baseline_app
        from repro.runtime.vpipeline import PlanCache

        if baseline:
            def make_shard(index: int) -> WebApp:
                app = build_baseline_app(design_model, clock=Clock())
                for name, level, roles in users:
                    app.add_user(name, level, roles)
                return app
        else:
            # all shards run identical chains: one shared plan cache
            # means each chain compiles exactly once fleet-wide
            plan_cache = PlanCache()

            def make_shard(index: int) -> WebApp:
                backend = (
                    persistence(index) if persistence is not None else None
                )
                app = build_app(
                    design_model, clock=Clock(), plan_cache=plan_cache,
                    persistence=backend,
                )
                for name, level, roles in users:
                    app.add_user(name, level, roles)
                if backend is not None and backend.durable:
                    recover_app(app, backend)
                return app

        shards = [make_shard(index) for index in range(shard_count)]
        gateway = cls(shards, **gateway_options)
        gateway._shard_factory = make_shard
        if persistence is not None:
            # the router's global id counters must resume past every
            # recovered (or reserved) id, or the first post-restart
            # create would re-allocate an id a shard already holds
            for shard in shards:
                for entity_name in shard.store.entity_names:
                    top = shard.store.entity(entity_name).high_water_id()
                    if top:
                        gateway.router.observe_id(entity_name, top)
        for route in design_model.routes:
            if route.kind == "create":
                gateway.expose_create(route.path, route.form.name)
                entity = route.form.entity.name
                gateway.expose_view(f"{route.path}/<id>", entity)
                gateway.expose_update(f"{route.path}/<id>", route.form.name)
            elif route.kind == "update":
                gateway.expose_update(route.path, route.form.name)
            elif route.kind == "list":
                gateway.expose_list(route.path, route.entity.name)
            elif route.kind == "view":
                gateway.expose_view(route.path, route.entity.name)
        return gateway

    def expose_create(self, path: str, form_name: str) -> "ShardedGateway":
        self._routes.append(GatewayRoute("create", "POST", path, form_name))
        return self

    def expose_update(self, path: str, form_name: str) -> "ShardedGateway":
        self._routes.append(GatewayRoute("update", "PUT", path, form_name))
        return self

    def expose_list(self, path: str, entity: str) -> "ShardedGateway":
        self._routes.append(GatewayRoute("list", "GET", path, entity))
        return self

    def expose_view(self, path: str, entity: str) -> "ShardedGateway":
        self._routes.append(GatewayRoute("view", "GET", path, entity))
        return self

    @property
    def routes(self) -> list[GatewayRoute]:
        return list(self._routes)

    def validation_stats(self) -> dict:
        """Aggregated validator-pipeline counters across every shard.

        Shards built by :meth:`from_design` share one plan cache, which
        :meth:`~repro.runtime.vpipeline.ValidationStats.merge` counts
        exactly once.
        """
        from repro.runtime.vpipeline import ValidationStats

        return ValidationStats.merge(
            (shard.validation.as_dict() for shard in self.shards),
            (shard.plan_cache for shard in self.shards),
        )

    def telemetry_stats(self) -> dict:
        """Aggregated streaming-DQ-telemetry counters across every shard
        (counts only — safe for the byte-identical chaos report)."""
        stats = {
            "records": 0,
            "updates": 0,
            "tracked_fields": 0,
            "spilled_fields": 0,
            "rebuilds": 0,
            "disabled_entities": 0,
        }
        for shard in self.shards:
            for name in shard.store.entity_names:
                store = shard.store.entity(name)
                per_entity = store.measure_telemetry(
                    lambda accumulator: accumulator.stats()
                )
                if per_entity is None:
                    stats["disabled_entities"] += 1
                    continue
                stats["records"] += per_entity["records"]
                stats["updates"] += per_entity["updates"]
                stats["tracked_fields"] += per_entity["tracked_fields"]
                stats["spilled_fields"] += per_entity["spilled_fields"]
                stats["rebuilds"] += store.telemetry_rebuilds
        return stats

    def dq_telemetry(self, entity: str):
        """The cluster-wide accumulator for one entity: per-shard
        snapshots merged shard-0-first (``None`` when telemetry is
        disabled on any shard — a partial merge would under-count)."""
        from repro.dq.streaming import merge_accumulators

        return merge_accumulators(
            shard.store.entity(entity).telemetry_snapshot()
            for shard in self.shards
        )

    def _scorecard_apps(self) -> Sequence[WebApp]:
        """The apps :meth:`live_scorecard` reads from — the shards here;
        the replicated gateway overrides this to serve scorecards from
        caught-up followers instead of the primaries."""
        return self.shards

    def live_scorecard(
        self,
        entity: str,
        required_fields: Sequence[str] = (),
        bounds=None,
        max_age: int = 100,
    ):
        """Cluster-wide DQ score lines served from streaming telemetry —
        O(shards × fields) instead of a rescan of every shard's records.

        Each shard contributes one reduced reading (per-field present
        and in-bounds counts, provenance / protection tallies and its
        own clock's Currentness total) gathered under its entity lock —
        no snapshot copies, so a read costs the same whether the shard
        holds ten records or a million.  Line-for-line equivalent to
        :meth:`rescan_scorecard` — exactly for Precision, Traceability
        and Confidentiality, to float tolerance for Completeness and
        Currentness.  ``None`` when telemetry is disabled on any shard.
        """
        from repro.dq.metrics import in_bounds
        from repro.dq.scorecard import ScoreLine

        bounds = dict(bounds or {})
        fields = tuple(required_fields) or tuple(
            self.shards[0].store.entity(entity).fields
        )
        policy = self.shards[0].policies.for_entity(entity)
        level = policy.security_level
        apps = self._scorecard_apps()
        if interchange_active():
            # encoded reduce: per-shard accumulator frames decoded once
            # (cached on the stores' frame keys) and merged cluster-wide
            # — shards serialize their state exactly once per mutation
            # epoch instead of once per scorecard read.
            aggregate = self._reduce_from_frames(
                entity, apps, fields, bounds, level, max_age
            )
            if aggregate is None:
                return None
        else:
            readings = []
            for shard in apps:
                now = shard.clock.peek()

                def read(accumulator, now=now):
                    valid = []
                    for name, (lower, upper) in bounds.items():
                        field = accumulator.field_or_none(name)
                        valid.append(
                            field.count_in_bounds(lower, upper)
                            if field is not None else 0
                        )
                    return (
                        accumulator.records,
                        sum(accumulator.present_of(name) for name in fields),
                        valid,
                        accumulator.currentness_total(now, max_age)
                        if accumulator.records else 0.0,
                        accumulator.traced,
                        accumulator.protected_count(level) if level else 0,
                    )

                reading = shard.store.entity(entity).measure_telemetry(read)
                if reading is None:
                    return None
                readings.append(reading)
            valid_list = []
            for index in range(len(bounds)):
                per_shard = [reading[2][index] for reading in readings]
                valid_list.append(
                    None if any(count is None for count in per_shard)
                    else sum(per_shard)
                )
            aggregate = (
                sum(reading[0] for reading in readings),
                sum(reading[1] for reading in readings),
                valid_list,
                sum(reading[3] for reading in readings),
                sum(reading[4] for reading in readings),
                sum(reading[5] for reading in readings),
            )
        total, present_sum, valid_list, decayed, traced, protected = (
            aggregate
        )
        lines = []
        if total == 0 or not fields:
            completeness = 1.0
        else:
            completeness = present_sum / (total * len(fields))
        lines.append(ScoreLine(
            "Completeness", completeness,
            f"{total} record(s) x {len(fields)} required field(s)",
        ))
        if not bounds:
            lines.append(ScoreLine("Precision", 1.0, "no bounds declared"))
        else:
            ratios = []
            for index, (name, (lower, upper)) in enumerate(bounds.items()):
                if total == 0:
                    ratios.append(1.0)
                    continue
                valid = valid_list[index]
                if valid is None:
                    # spilled past exact tracking: only a rescan of this
                    # field is exact
                    valid = sum(
                        1
                        for shard in apps
                        for stored in shard.store.entity(entity).all()
                        if in_bounds(stored.data.get(name), lower, upper)
                    )
                ratios.append(valid / total)
            lines.append(ScoreLine(
                "Precision", sum(ratios) / len(ratios),
                f"{len(bounds)} bounded field(s)",
            ))
        if total == 0:
            lines.append(ScoreLine("Currentness", 1.0, "no records"))
        else:
            lines.append(ScoreLine(
                "Currentness", decayed / total, f"max age {max_age} ticks"
            ))
        if total == 0:
            lines.append(ScoreLine("Traceability", 1.0, "no records"))
        else:
            lines.append(ScoreLine(
                "Traceability", traced / total,
                f"{traced}/{total} record(s) with provenance",
            ))
        if level == 0:
            lines.append(ScoreLine(
                "Confidentiality", 1.0, "entity is unrestricted"
            ))
        elif total == 0:
            lines.append(ScoreLine("Confidentiality", 1.0, "no records"))
        else:
            lines.append(ScoreLine(
                "Confidentiality", protected / total,
                f"policy level {policy.security_level}",
            ))
        return lines

    def _reduce_from_frames(
        self, entity, apps, fields, bounds, level, max_age
    ):
        """One cluster-wide scorecard aggregate ``(total, present_sum,
        valid_list, decayed, traced, protected)`` reduced from encoded
        accumulator frames.

        Every shard serializes its accumulator once per mutation epoch
        (:meth:`EntityStore.telemetry_frame` caches on the updates
        counter); the gateway decodes each frame once (cache keyed on
        the producing app and frame key, so follower swaps and absorbed
        mutations both invalidate) and folds the decoded snapshots
        through :func:`merge_accumulators` — KMV sketches, M2 moments
        and count tables merge without rehashing.  Currentness cannot
        compose cluster-wide (each shard decays against its own clock),
        so it sums per-shard totals off the decoded snapshots in shard
        order, exactly like the locked reading path.  ``None`` when any
        shard has telemetry disabled.  A bounded field whose merged
        tracker spilled reports ``None`` in ``valid_list``; the caller
        rescans that field exactly as the legacy path does.
        """
        from repro import interchange
        from repro.dq.streaming import merge_accumulators

        with self._frame_lock:
            snapshots = []
            keys = []
            for index, app in enumerate(apps):
                now = app.clock.peek()
                frame = app.store.entity(entity).telemetry_frame()
                if frame is None:
                    return None
                key, payload = frame
                cache_key = (entity, index)
                cached = self._frame_decode_cache.get(cache_key)
                if (
                    cached is None
                    or cached[0] is not app
                    or cached[1] != key
                ):
                    cached = (
                        app, key, interchange.decode_accumulator(payload)
                    )
                    self._frame_decode_cache[cache_key] = cached
                snapshots.append((now, cached[2]))
                keys.append(key)
            merge_key = (len(keys), tuple(keys))
            merged_entry = self._frame_merge_cache.get(entity)
            if merged_entry is None or merged_entry[0] != merge_key:
                merged_entry = (
                    merge_key,
                    merge_accumulators(acc for _now, acc in snapshots),
                )
                self._frame_merge_cache[entity] = merged_entry
            merged = merged_entry[1]
            valid_list = []
            for name, (lower, upper) in bounds.items():
                field = merged.field_or_none(name)
                valid_list.append(
                    field.count_in_bounds(lower, upper)
                    if field is not None else 0
                )
            decayed = sum(
                acc.currentness_total(now, max_age)
                if acc.records else 0.0
                for now, acc in snapshots
            )
            return (
                merged.records,
                sum(merged.present_of(name) for name in fields),
                valid_list,
                decayed,
                merged.traced,
                merged.protected_count(level) if level else 0,
            )

    def rescan_scorecard(
        self,
        entity: str,
        required_fields: Sequence[str] = (),
        bounds=None,
        max_age: int = 100,
    ):
        """The full-rescan twin of :meth:`live_scorecard` — O(records),
        identical composition.  Retained as the equivalence oracle and
        the fallback when telemetry is off."""
        from repro.dq import metrics as dq_metrics
        from repro.dq.scorecard import ScoreLine

        per_shard = [
            shard.store.entity(entity).all() for shard in self.shards
        ]
        stored = [record for chunk in per_shard for record in chunk]
        total = len(stored)
        bounds = dict(bounds or {})
        fields = tuple(required_fields) or tuple(
            self.shards[0].store.entity(entity).fields
        )
        data = [record.data for record in stored]
        lines = [ScoreLine(
            "Completeness",
            dq_metrics.dataset_completeness(data, fields),
            f"{total} record(s) x {len(fields)} required field(s)",
        )]
        if not bounds:
            lines.append(ScoreLine("Precision", 1.0, "no bounds declared"))
        else:
            ratios = [
                dq_metrics.precision_ratio(data, name, lower, upper)
                for name, (lower, upper) in bounds.items()
            ]
            lines.append(ScoreLine(
                "Precision", sum(ratios) / len(ratios),
                f"{len(bounds)} bounded field(s)",
            ))
        if total == 0:
            lines.append(ScoreLine("Currentness", 1.0, "no records"))
        else:
            decayed = sum(
                dq_metrics.currentness_score(
                    record.metadata.age(shard.clock), max_age
                )
                for shard, chunk in zip(self.shards, per_shard)
                for record in chunk
            )
            lines.append(ScoreLine(
                "Currentness", decayed / total, f"max age {max_age} ticks"
            ))
        if total == 0:
            lines.append(ScoreLine("Traceability", 1.0, "no records"))
        else:
            traced = sum(
                1 for record in stored
                if record.metadata.stored_by
                and record.metadata.stored_date is not None
            )
            lines.append(ScoreLine(
                "Traceability", traced / total,
                f"{traced}/{total} record(s) with provenance",
            ))
        policy = self.shards[0].policies.for_entity(entity)
        if policy.security_level == 0:
            lines.append(ScoreLine(
                "Confidentiality", 1.0, "entity is unrestricted"
            ))
        elif total == 0:
            lines.append(ScoreLine("Confidentiality", 1.0, "no records"))
        else:
            protected = sum(
                1 for record in stored
                if record.metadata.security_level >= policy.security_level
            )
            lines.append(ScoreLine(
                "Confidentiality", protected / total,
                f"policy level {policy.security_level}",
            ))
        return lines

    def close(self) -> None:
        """Stop accepting requests; in-flight dispatches drain first.

        Durable shard backends are closed cleanly (pending WAL appends
        synced), so a closed gateway's data directory always recovers."""
        self._closed = True
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            persistence = getattr(shard, "persistence", None)
            if persistence is not None:
                persistence.close()

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch machinery ----------------------------------------------

    def _dispatch(self, operation: str, shards: tuple, work) -> Response:
        if self._closed:
            self.metrics.observe_unavailable()
            return unavailable("gateway is closed")
        with self._pending_lock:
            if self._pending >= self.max_queue_depth:
                self.metrics.observe_backpressure()
                return too_many_requests(
                    f"queue depth {self.max_queue_depth} exceeded",
                    retry_after=1,
                )
            self._pending += 1
        start = time.perf_counter()
        try:
            try:
                response = self._pool.submit(work).result()
            except RuntimeError:  # pool shut down between check and submit
                self.metrics.observe_unavailable()
                return unavailable("gateway is closed")
        finally:
            with self._pending_lock:
                self._pending -= 1
        self.metrics.observe(
            operation, shards, response.status, time.perf_counter() - start
        )
        return response

    def _entity_of_form(self, form_name: str) -> str:
        entity = self._form_entities.get(form_name)
        if entity is None:  # registered after construction: memoize now
            entity = self.shards[0].form(form_name).entity
            self._form_entities[form_name] = entity
        return entity

    def _clearance(self, user: str) -> int:
        level = self._user_levels.get(user)
        if level is None:
            directory = self.shards[0].users
            level = directory.get(user).level
            if directory.known(user):  # anonymous users are never cached
                self._user_levels[user] = level
        return level

    def _entity_version(self, entity: str) -> int:
        with self._version_lock:
            return self._entity_versions.get(entity, 0)

    def _bump_entity_version(self, entity: str) -> None:
        """Write-path invalidation: retire every cached read of ``entity``."""
        with self._version_lock:
            self._entity_versions[entity] = (
                self._entity_versions.get(entity, 0) + 1
            )
        self.cache.invalidate_entity(entity)

    # -- resilient shard calls -------------------------------------------

    def breaker_states(self) -> Optional[list[str]]:
        """Every shard breaker's current state (None when disabled)."""
        if self._breakers is None:
            return None
        return [breaker.state for breaker in self._breakers]

    def _call_shard(
        self,
        operation: str,
        shard_index: int,
        apply,
        idempotency_key=None,
    ):
        """Run ``apply(shard_app)`` under the shard lock, surviving faults.

        Without a resilience config this is a plain locked call.  With
        one, the call flows through the per-shard circuit breaker (open =
        shed immediately), the fault injector, and the bounded-backoff
        retry loop; keyed calls are applied at most once no matter how
        often they are retried or duplicated.  Raises
        :class:`ShardUnavailable` when the shard cannot serve.
        """
        if self.resilience is None:
            with self._shard_locks[shard_index]:
                return apply(self.shards[shard_index])
        policy = self.resilience.retry
        breaker = self._breakers[shard_index]
        last_fault: Optional[TransientShardFault] = None
        for attempt in range(1, policy.max_attempts + 1):
            if not breaker.allow():
                if self.fault_injector is not None:
                    self.fault_injector.tick()  # shed calls still age the
                return self._shed(              # breaker's cooldown clock
                    shard_index, f"circuit {breaker.state}"
                )
            if attempt > 1:
                self.metrics.observe_retry(operation)
                delay = policy.backoff(attempt - 1)
                self.metrics.observe_backoff(delay)
                if self.resilience.sleeper is not None:
                    self.resilience.sleeper(delay)
            try:
                result = self._apply_once(shard_index, apply, idempotency_key)
            except TransientShardFault as fault:
                last_fault = fault
                breaker.record_failure()
                self.metrics.observe_fault(fault.kind)
                continue
            breaker.record_success()
            return result
        return self._shed(
            shard_index,
            f"retries exhausted after {policy.max_attempts} attempt(s): "
            f"{last_fault}",
        )

    @staticmethod
    def _shed(shard_index: int, reason: str):
        raise ShardUnavailable(shard_index, reason)

    def _kill_and_restart(self, shard_index: int) -> None:
        """Kill -9 one shard and bring a replacement up from durable state.

        The shard lock is taken first, so no call is mid-apply when the
        process "dies": everything already acknowledged was group-committed
        and survives; whatever sat unsynced in the WAL buffer is lost,
        exactly like a real crash.  With no shard factory the kill cannot
        be followed by a restart, so it degrades to a plain crash fault.
        """
        if self._shard_factory is None:
            raise ShardCrashed(
                shard_index, "injected kill (no shard factory to restart)"
            )
        with self._shard_locks[shard_index]:
            app = self.shards[shard_index]
            persistence = getattr(app, "persistence", None)
            if persistence is not None:
                persistence.kill()
            self.shards[shard_index] = self._shard_factory(shard_index)
            self.shard_restarts[shard_index] += 1

    def restart_shard(self, shard_index: int) -> None:
        """Deliberately kill-and-restart one shard (durability drills)."""
        self._kill_and_restart(shard_index)

    # -- topology-fault hooks (overridden by the replicated gateway) ------

    def _on_failover_fault(self, shard_index: int) -> None:
        """An injected primary loss.  Without a replication layer there
        is no follower to promote, so the fault degrades to the kill
        semantics: restart from durable state (losing unsynced writes),
        or a plain crash when no shard factory exists."""
        self._kill_and_restart(shard_index)

    def _on_replica_lag_fault(self, shard_index: int) -> None:
        """An injected replica-lag window.  Without followers there is
        nothing to lag; the replicated gateway overrides this to inhibit
        the shard's next follower catch-up."""

    def _apply_once(self, shard_index: int, apply, idempotency_key):
        """One attempt: consult the injector, then apply exactly once.

        Injected faults fire *before* the shard is touched, so a failed
        attempt is never half-applied; the ambiguous-outcome case (did my
        task run?) is modelled by DUPLICATE faults, which replay the task
        and must be absorbed by the idempotency registry.
        """
        injection = None
        if self.fault_injector is not None:
            injection = self.fault_injector.next_call(shard_index)
            if injection.kill:
                # fires before the shard is touched, so the killed task
                # was never half-applied; the retry loop re-runs it
                # against the restarted shard
                self._kill_and_restart(shard_index)
                raise ShardKilled(
                    shard_index, "injected kill -9 (shard restarted)"
                )
            if injection.failover:
                # fires before the shard is touched, like a kill: the
                # task was never half-applied, and the retry loop
                # re-runs it against the promoted (or restarted) shard
                self._on_failover_fault(shard_index)
                raise ShardFailedOver(
                    shard_index, "injected primary loss (failover)"
                )
            if injection.lag:
                self._on_replica_lag_fault(shard_index)
            if injection.crash:
                raise ShardCrashed(shard_index, "injected shard crash")
            if injection.latency > self.resilience.operation_timeout:
                raise OperationTimeout(
                    shard_index,
                    f"injected latency {injection.latency * 1000:.1f}ms "
                    f"exceeds the "
                    f"{self.resilience.operation_timeout * 1000:.1f}ms budget",
                )
            if injection.drop:
                raise TaskDropped(shard_index, "injected task drop")

        def run():
            with self._shard_locks[shard_index]:
                return apply(self.shards[shard_index])

        if idempotency_key is not None and self._idempotency is not None:
            result = self._idempotency.run_once(idempotency_key, run)
            if injection is not None and injection.duplicate:
                # the duplicated task replays; the registry must dedupe it
                self._idempotency.run_once(idempotency_key, run)
        else:
            result = run()
            if injection is not None and injection.duplicate:
                run()  # reads are naturally idempotent: a replay is harmless
        return result

    def _degraded_read(
        self, operation: str, entity: str, base_key: tuple,
        exc: ShardUnavailable,
    ) -> Response:
        """Serve the last known good body, explicitly tagged — or 503.

        Never silent: a degraded body always arrives as 203 with the
        served-vs-current data versions in the headers, so the
        Traceability DQSR survives the outage.
        """
        if self._last_good is not None:
            remembered = self._last_good.lookup(base_key)
            if remembered is not None:
                body, served_version = remembered
                self.metrics.observe_degraded(operation)
                return degraded(
                    body,
                    served_version=served_version,
                    current_version=self._entity_version(entity),
                )
        self.metrics.observe_shed(operation)
        return unavailable(str(exc))

    def _cache_fill(self, key: tuple, body) -> None:
        """A read-through fill, subject to injected cache-fill failures
        (a failed fill loses only performance, never correctness)."""
        if (
            self.fault_injector is not None
            and self.fault_injector.cache_fill_fails()
        ):
            self.metrics.observe_fault(CACHE_FILL)
            return
        self.cache.fill(key, body)

    def _remember_good(self, base_key: tuple, body, version: int) -> None:
        if self._last_good is not None:
            self._last_good.remember(base_key, body, version)

    # -- operations -------------------------------------------------------

    def submit(self, form_name: str, data: dict, user: str) -> Response:
        """Create: allocate a global id, route by hash, run the shard's
        full DQ write pipeline, invalidate cached reads on acceptance."""
        entity = self._entity_of_form(form_name)
        record_id, shard_index = self.router.placement(entity)

        def apply(app: WebApp) -> Response:
            try:
                stored = app.submit(form_name, data, user, record_id=record_id)
            except DataQualityViolation as exc:
                return unprocessable(exc.findings)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            self._bump_entity_version(entity)
            return created({"id": stored.record_id, "shard": shard_index})

        def work() -> Response:
            try:
                # record ids are globally unique, so (submit, entity, id)
                # identifies this task across retries and duplicate replays
                return self._call_shard(
                    "submit", shard_index, apply,
                    idempotency_key=("submit", entity, record_id),
                )
            except ShardUnavailable as exc:
                self.metrics.observe_shed("submit")
                return unavailable(str(exc))

        return self._dispatch("submit", (shard_index,), work)

    def submit_many(
        self, form_name: str, payloads: Sequence[dict], user: str
    ) -> list[Response]:
        """Batched create: coalesce same-shard writes into one lock trip.

        Every payload gets a global id and a home shard exactly as
        :meth:`submit` would assign them; payloads bound for the same
        shard are then grouped into chunks of at most ``write_batch_max``
        and applied through :meth:`WebApp.submit_batch` under a **single**
        shard-lock acquisition (and a single idempotency registration,
        retry loop and cache invalidation) per chunk.  Chunks for
        different shards run concurrently on the dispatch pool.

        The response list is positional — ``responses[i]`` answers
        ``payloads[i]`` with the same statuses the unbatched path
        produces (201/422/403, 429 under backpressure, 503 when a shard
        is unavailable past retries) — so batching changes throughput,
        never outcomes.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self._closed:
            for _ in payloads:
                self.metrics.observe_unavailable()
            return [unavailable("gateway is closed") for _ in payloads]
        entity = self._entity_of_form(form_name)
        placements = [self.router.placement(entity) for _ in payloads]
        responses: list[Optional[Response]] = [None] * len(payloads)
        by_shard: dict[int, list[int]] = {}
        for position, (_, shard_index) in enumerate(placements):
            by_shard.setdefault(shard_index, []).append(position)
        chunks: list[tuple[int, list[int]]] = []
        for shard_index in sorted(by_shard):
            positions = by_shard[shard_index]
            for start in range(0, len(positions), self.write_batch_max):
                chunks.append(
                    (shard_index, positions[start:start + self.write_batch_max])
                )

        pending_futures = []
        for shard_index, positions in chunks:
            with self._pending_lock:
                admitted = self._pending < self.max_queue_depth
                if admitted:
                    self._pending += 1
            if not admitted:
                for position in positions:
                    self.metrics.observe_backpressure()
                    responses[position] = too_many_requests(
                        f"queue depth {self.max_queue_depth} exceeded",
                        retry_after=1,
                    )
                continue
            work = self._batch_work(
                form_name, entity, payloads, placements, shard_index,
                positions, user,
            )
            started = time.perf_counter()
            try:
                future = self._pool.submit(work)
            except RuntimeError:  # pool shut down between check and submit
                with self._pending_lock:
                    self._pending -= 1
                for position in positions:
                    self.metrics.observe_unavailable()
                    responses[position] = unavailable("gateway is closed")
                continue
            pending_futures.append((shard_index, positions, started, future))

        for shard_index, positions, started, future in pending_futures:
            try:
                outcome = future.result()
            finally:
                with self._pending_lock:
                    self._pending -= 1
            statuses = []
            for position in positions:
                responses[position] = outcome[position]
                statuses.append(outcome[position].status)
            self.metrics.observe_batch("submit-batch", len(positions))
            self.metrics.observe(
                "submit-batch",
                (shard_index,),
                max(statuses),
                time.perf_counter() - started,
            )
        return responses

    def _batch_work(
        self, form_name, entity, payloads, placements, shard_index,
        positions, user,
    ):
        """Build the pooled callable applying one same-shard write chunk."""
        record_ids = [placements[position][0] for position in positions]
        rows = [payloads[position] for position in positions]

        def apply(app: WebApp) -> dict:
            result = app.submit_batch(
                form_name, rows, user, record_ids=record_ids
            )
            outcome: dict[int, Response] = {}
            for row, record_id in result.accepted:
                outcome[positions[row]] = created(
                    {"id": record_id, "shard": shard_index}
                )
            for row, findings in result.rejected:
                outcome[positions[row]] = unprocessable(findings)
            for row, reason in result.unauthorized:
                outcome[positions[row]] = forbidden(reason)
            if result.accepted:
                # one invalidation per chunk, not per accepted write
                self._bump_entity_version(entity)
            return outcome

        def work() -> dict:
            try:
                # record ids are globally unique, so the chunk's id tuple
                # identifies this task across retries and duplicate replays
                return self._call_shard(
                    "submit-batch", shard_index, apply,
                    idempotency_key=("submit-batch", entity, tuple(record_ids)),
                )
            except ShardUnavailable as exc:
                self.metrics.observe_shed("submit-batch")
                return {
                    position: unavailable(str(exc)) for position in positions
                }

        return work

    def modify(
        self,
        form_name: str,
        record_id: int,
        data: dict,
        user: str,
        expected_version: Optional[int] = None,
    ) -> Response:
        """Update: route to the record's home shard; optimistic-concurrency
        conflicts surface as 409 — never a lost update."""
        entity = self._entity_of_form(form_name)
        shard_index = self.router.shard_for(entity, record_id)
        # each modify call is its own task: a fresh token makes retries of
        # THIS call idempotent without collapsing distinct updates to one
        op_token = next(self._op_tokens)

        def apply(app: WebApp) -> Response:
            try:
                stored = app.modify(
                    form_name, record_id, data, user,
                    expected_version=expected_version,
                )
            except KeyError:
                return not_found(f"no record {record_id}")
            except DataQualityViolation as exc:
                return unprocessable(exc.findings)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            except VersionConflictError as exc:
                return conflict(str(exc))
            self._bump_entity_version(entity)
            return ok({"id": stored.record_id, "version": stored.version})

        def work() -> Response:
            try:
                return self._call_shard(
                    "modify", shard_index, apply,
                    idempotency_key=("modify", op_token),
                )
            except ShardUnavailable as exc:
                self.metrics.observe_shed("modify")
                return unavailable(str(exc))

        return self._dispatch("modify", (shard_index,), work)

    def list(self, entity: str, user: str) -> Response:
        """Confidentiality-filtered listing: cache hit or scatter-gather."""
        if self._closed:
            self.metrics.observe_unavailable()
            return unavailable("gateway is closed")
        base_key = self.cache.list_key(entity, user, self._clearance(user))
        version = self._entity_version(entity)
        key = base_key + (version,)
        start = time.perf_counter()
        cached = self.cache.lookup(key)
        if cached is not None:
            self.metrics.observe(
                "list", (), 200, time.perf_counter() - start
            )
            return ok(cached)

        def work() -> Response:
            body: list[dict] = []
            try:
                for shard_index in self.router.all_shards():
                    visible = self._call_shard(
                        "list", shard_index,
                        lambda app: app.read(entity, user),
                    )
                    body.extend(
                        {"id": s.record_id, "version": s.version, **s.data}
                        for s in visible
                    )
            except ShardUnavailable as exc:
                # any shard missing means the gather is incomplete; a
                # silently partial listing would violate Completeness, so
                # degrade the WHOLE read (tagged) rather than serve a hole
                return self._degraded_read("list", entity, base_key, exc)
            body.sort(key=lambda row: row["id"])
            self._cache_fill(key, body)
            self._remember_good(base_key, body, version)
            return ok(body)

        return self._dispatch("list", tuple(self.router.all_shards()), work)

    def view(self, entity: str, record_id: int, user: str) -> Response:
        """Single-record read from the record's home shard, cache-assisted."""
        if self._closed:
            self.metrics.observe_unavailable()
            return unavailable("gateway is closed")
        base_key = self.cache.view_key(
            entity, record_id, user, self._clearance(user)
        )
        version = self._entity_version(entity)
        key = base_key + (version,)
        start = time.perf_counter()
        cached = self.cache.lookup(key)
        if cached is not None:
            self.metrics.observe(
                "view", (), 200, time.perf_counter() - start
            )
            return ok(cached)
        shard_index = self.router.shard_for(entity, record_id)

        def apply(app: WebApp) -> Response:
            try:
                stored = app.read_record(entity, record_id, user)
            except AuthorizationError as exc:
                return forbidden(str(exc))
            except KeyError:
                return not_found(f"no record {record_id}")
            body = {
                "id": stored.record_id,
                "version": stored.version,
                **stored.data,
            }
            self._cache_fill(key, body)
            self._remember_good(base_key, body, version)
            return ok(body)

        def work() -> Response:
            try:
                return self._call_shard("view", shard_index, apply)
            except ShardUnavailable as exc:
                return self._degraded_read("view", entity, base_key, exc)

        return self._dispatch("view", (shard_index,), work)

    # -- HTTP facade ------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch one simulated HTTP request through the facade routes."""
        path_matched = False
        exact_first = sorted(self._routes, key=lambda r: r.parameterized)
        for route in exact_first:
            params = route.match(request.path)
            if params is None:
                continue
            path_matched = True
            if route.method != request.method:
                continue
            merged = {**request.params, **params}
            return self._perform(route, request, merged)
        if path_matched:
            return method_not_allowed(
                f"{request.method} not allowed on {request.path}"
            )
        return not_found(f"no route for {request.path}")

    def _perform(
        self, route: GatewayRoute, request: Request, params: dict
    ) -> Response:
        if route.kind == "create":
            return self.submit(route.target, request.data, request.user)
        if route.kind == "list":
            return self.list(route.target, request.user)
        raw_id = params.get("id")
        if raw_id is None:
            return bad_request("missing record id")
        try:
            record_id = int(raw_id)
        except (TypeError, ValueError):
            return bad_request(f"bad record id {raw_id!r}")
        if route.kind == "view":
            return self.view(route.target, record_id, request.user)
        payload = dict(request.data)
        expected_version = payload.pop("expected_version", None)
        return self.modify(
            route.target, record_id, payload, request.user,
            expected_version=expected_version,
        )

    def get(self, path: str, user: str = "anonymous") -> Response:
        return self.handle(Request("GET", path, user=user))

    def post(self, path: str, data: dict, user: str = "anonymous") -> Response:
        return self.handle(Request("POST", path, user=user, data=data))

    def put(self, path: str, data: dict, user: str = "anonymous") -> Response:
        return self.handle(Request("PUT", path, user=user, data=data))

    # -- introspection ----------------------------------------------------

    def total_records(self) -> int:
        return sum(shard.store.total_records() for shard in self.shards)

    def describe(self) -> str:
        lines = [
            f"ShardedGateway over {len(self.shards)} shard(s), "
            f"cache capacity {self.cache.capacity}, "
            f"queue depth {self.max_queue_depth}"
        ]
        if self.resilience is not None:
            lines.append(
                f"  resilience: {self.resilience.retry.max_attempts} "
                f"attempt(s), breaker threshold "
                f"{self.resilience.breaker_failure_threshold}, "
                f"fault plan "
                + (
                    self.fault_injector.plan.signature()
                    if self.fault_injector is not None else "none"
                )
            )
        for route in self._routes:
            lines.append(
                f"  {route.method} {route.path} -> {route.kind} "
                f"{route.target!r}"
            )
        return "\n".join(lines)

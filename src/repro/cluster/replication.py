"""Per-shard replication: log shipping, bounded-staleness followers,
failover promotion.

PR 6 gave every shard a durable op log (WAL + snapshots); replication is
the same op stream pointed at a second consumer.  Each primary's
persistence is wrapped in a :class:`ReplicationLog` — a
:class:`~repro.persistence.backend.PersistenceBackend` that forwards to
the real (optional) durable backend and additionally retains every
**acknowledged** op in an in-memory ship buffer.  The acknowledged
watermark is the group-commit boundary: ``append`` only stages an op,
``sync`` (called once per acknowledged operation by
:meth:`~repro.runtime.app.WebApp.commit`) promotes everything staged to
shippable.  A ``kill`` drops whatever was staged but never synced —
exactly the writes a real crash loses — so a follower can never apply
an op the client was not yet promised.

A follower is a structurally identical :class:`WebApp` (same entities,
forms, policies, users — confidentiality is enforced by the same code
path, not re-implemented) that catches up by *pulling* the primary's
log tail through :func:`repro.persistence.apply_op` — the exact replay
path crash recovery uses, so replicated state is rebuilt the same way
recovered state is.  Catch-up happens at read time, never on a
background thread, which keeps seeded chaos runs byte-identical.

Failover inverts the roles: the most caught-up follower applies every
acked op it has not seen, takes over the primary's durable backend
(a fresh handle recovered over the same directory), and starts serving.
Acked-write durability holds by construction: acked ⇒ synced ⇒ shipped,
so the promoted follower's state equals the dead primary's acknowledged
state — :func:`repro.persistence.capture_state` equality is the test.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro import interchange
from repro.interchange import interchange_active
from repro.persistence import (
    RecoveredState,
    apply_op,
    apply_ops,
    capture_state,
    op_tick,
)
from repro.persistence.backend import PersistenceBackend

#: Bounded catch-up retry: how many ship attempts (each preceded by a
#: bootstrap after the first truncation) before giving up.  A prune can
#: race a slow follower at most once per external ``prune_to`` call, so
#: three attempts is already generous.
CATCHUP_ATTEMPTS = 3


class ReplicationLog(PersistenceBackend):
    """A persistence wrapper that tees acked ops to an in-memory ship
    buffer for follower catch-up.

    ``durable`` is ``True`` even with no inner backend: the stores only
    emit ops to durable backends, and replication needs the op stream
    regardless of whether anything reaches disk.  With an inner durable
    backend, sequence numbers are the inner backend's (so recovery and
    shipping agree on one numbering); without one, the log numbers ops
    itself.
    """

    durable = True

    def __init__(
        self,
        inner: Optional[PersistenceBackend] = None,
        inner_factory: Optional[Callable[[], PersistenceBackend]] = None,
    ):
        self.inner = inner
        self._inner_factory = inner_factory
        self._lock = threading.Lock()
        self._seq = 0
        self._staged: list[tuple[int, dict]] = []
        self._shippable: list[tuple[int, dict]] = []
        self._encoded: dict[int, bytes] = {}
        self._coalesced: dict[tuple[int, int], bytes] = {}
        self._acked_seq = 0
        self._base_seq = 0

    @property
    def name(self) -> str:
        return f"repl+{self.inner.name}" if self.inner is not None else "repl"

    # -- the backend contract ---------------------------------------------

    def append(self, op: dict) -> int:
        if self.inner is not None:
            seq = self.inner.append(op)
        else:
            with self._lock:
                self._seq += 1
                seq = self._seq
        with self._lock:
            self._seq = max(self._seq, seq)
            self._staged.append((seq, dict(op)))
        return seq

    def sync(self) -> None:
        if self.inner is not None:
            self.inner.sync()
        with self._lock:
            if self._staged:
                self._shippable.extend(self._staged)
                self._acked_seq = self._staged[-1][0]
                self._staged = []

    def should_compact(self) -> bool:
        return self.inner is not None and self.inner.should_compact()

    def checkpoint(self, state: dict) -> None:
        # the ship buffer is NOT truncated here: a checkpoint compacts
        # the durable log, but a lagging follower may still need the
        # tail — pruning is the replica set's call (``prune``)
        if self.inner is not None:
            self.inner.checkpoint(state)

    def recover(self) -> RecoveredState:
        if self.inner is None:
            return RecoveredState()
        recovered = self.inner.recover()
        top = max(
            recovered.snapshot_seq,
            max((op.get("seq", 0) for op in recovered.ops), default=0),
        )
        with self._lock:
            self._seq = max(self._seq, top)
            self._acked_seq = max(self._acked_seq, top)
            self._base_seq = max(self._base_seq, top)
        return recovered

    def kill(self) -> None:
        """Simulated ``kill -9``: staged-but-unsynced ops are gone."""
        if self.inner is not None:
            self.inner.kill()
        with self._lock:
            self._staged = []

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    def stats(self) -> dict:
        with self._lock:
            shippable = len(self._shippable)
            acked = self._acked_seq
        stats = {
            "backend": self.name,
            "durable": True,
            "acked_seq": acked,
            "shippable": shippable,
        }
        if self.inner is not None:
            stats["inner"] = self.inner.stats()
        return stats

    # -- log shipping ------------------------------------------------------

    @property
    def acked_seq(self) -> int:
        with self._lock:
            return self._acked_seq

    @property
    def base_seq(self) -> int:
        """Ops at or below this seq are no longer shippable (pruned or
        predating this log handle); a follower behind it must bootstrap
        from a snapshot instead of replaying the tail."""
        with self._lock:
            return self._base_seq

    def ship(self, after_seq: int) -> list[tuple[int, dict]]:
        """Every acked ``(seq, op)`` with ``seq > after_seq``, in order."""
        with self._lock:
            if after_seq < self._base_seq:
                raise LogTruncated(
                    f"ops after seq {after_seq} are gone "
                    f"(base is {self._base_seq}); bootstrap from snapshot"
                )
            return [
                (seq, op) for seq, op in self._shippable if seq > after_seq
            ]

    def ship_frame(self, after_seq: int) -> bytes:
        """The acked tail after ``after_seq`` as one length+CRC framed
        interchange batch (:func:`repro.interchange.decode_op_batch`
        inverts it).

        Each op is encoded **once**, lazily at first ship, and the
        bytes are cached against its sequence number — every follower
        pulling the same tail (and every re-ship to a lagging one)
        reuses the encodings, paying only the batch concat + CRC.
        The cache is pruned alongside the ship buffer.

        Contiguous same-entity ``insert`` runs of at least
        :data:`repro.interchange.COALESCE_MIN` ops are folded into one
        synthetic plain ``rows`` op (columnar layout-hoisted payload,
        :func:`repro.interchange.coalesce_insert_runs`) carried under
        the run's last seq — replaying it is record-for-record identical
        to the folded inserts, and the run payload is cached against its
        ``(first_seq, last_seq)`` span.
        """
        with self._lock:
            if after_seq < self._base_seq:
                raise LogTruncated(
                    f"ops after seq {after_seq} are gone "
                    f"(base is {self._base_seq}); bootstrap from snapshot"
                )
            tail = [
                (seq, op) for seq, op in self._shippable if seq > after_seq
            ]
            encoded = self._encoded
            runs = self._coalesced
            seqs: list[int] = []
            payloads: list[bytes] = []
            index, count = 0, len(tail)
            while index < count:
                seq, op = tail[index]
                if op.get("op") == "insert":
                    entity = op["entity"]
                    end = index + 1
                    while end < count:
                        nxt = tail[end][1]
                        if (
                            nxt.get("op") != "insert"
                            or nxt["entity"] != entity
                        ):
                            break
                        end += 1
                    if end - index >= interchange.COALESCE_MIN:
                        last_seq = tail[end - 1][0]
                        key = (seq, last_seq)
                        payload = runs.get(key)
                        if payload is None:
                            ((_, synthetic),) = (
                                interchange.coalesce_insert_runs(
                                    tail[index:end], minimum=2
                                )
                            )
                            payload = interchange.encode_op(synthetic)
                            runs[key] = payload
                        seqs.append(last_seq)
                        payloads.append(payload)
                        index = end
                        continue
                payload = encoded.get(seq)
                if payload is None:
                    payload = interchange.encode_op(op)
                    encoded[seq] = payload
                seqs.append(seq)
                payloads.append(payload)
                index += 1
            return interchange.build_op_batch(seqs, payloads)

    def prune(self, up_to_seq: int) -> None:
        """Drop shippable ops every follower has applied (the replica
        set calls this behind the slowest follower's watermark)."""
        self.prune_to(up_to_seq)

    def prune_to(self, seq: int) -> None:
        """Explicitly truncate the ship buffer at ``seq``.

        ``catch_up`` prunes behind ``min(applied)``, which a follower
        that **never** catches up pins at its bootstrap watermark — the
        ship buffer then grows without bound.  Operators (or the
        gateway's retention policy) call this with the acked watermark
        to cap memory; a follower whose tail falls below the new base
        simply re-bootstraps from a snapshot on its next catch-up.
        """
        with self._lock:
            self._shippable = [
                (kept_seq, op)
                for kept_seq, op in self._shippable
                if kept_seq > seq
            ]
            if self._encoded:
                self._encoded = {
                    kept_seq: payload
                    for kept_seq, payload in self._encoded.items()
                    if kept_seq > seq
                }
            if self._coalesced:
                self._coalesced = {
                    span: payload
                    for span, payload in self._coalesced.items()
                    if span[0] > seq
                }
            self._base_seq = max(self._base_seq, seq)

    def successor(self) -> "ReplicationLog":
        """A fresh log over the same durable location, for the promoted
        follower after this log's primary died.  The durable sequence
        numbering continues (the new inner handle recovers its counter
        from disk); the ship buffer starts empty at the acked watermark,
        so existing followers bootstrap rather than replay a hole."""
        if self._inner_factory is not None:
            inner = self._inner_factory()
            log = ReplicationLog(inner, self._inner_factory)
            log.recover()
            return log
        log = ReplicationLog()
        with self._lock:
            log._seq = self._acked_seq
            log._acked_seq = self._acked_seq
            log._base_seq = self._acked_seq
        return log


class LogTruncated(RuntimeError):
    """The requested log tail has been pruned; bootstrap instead."""


def restore_snapshot(app, snapshot: dict) -> None:
    """Load a :func:`capture_state` snapshot into a structurally built,
    empty app — the bootstrap path for a brand-new (or fallen-behind)
    follower.  Mirrors the snapshot phase of
    :func:`repro.persistence.recover_app`: records with exact metadata
    sidecars and versions, allocator state verbatim, the audit trail,
    and the clock fast-forwarded past every recovered tick."""
    max_tick = snapshot.get("tick", 0)
    for name, state in snapshot.get("entities", {}).items():
        entity = app.store.entity(name)
        for record_id, data, meta_state, version in state["records"]:
            entity.restore_record(
                record_id, data,
                metadata_state=meta_state, version=version, reserve=None,
            )
        entity.restore_allocator(state["allocator"])
    for tick, kind, user, entity_name, record_id, detail in (
        snapshot.get("audit", ())
    ):
        app.audit.restore_event(
            tick, kind, user, entity_name, record_id, detail
        )
        max_tick = max(max_tick, tick)
    app.clock.advance_to(max_tick)


class ReplicaSet:
    """One shard's followers, caught up by pulling the primary's log.

    Determinism contract: nothing here runs on its own thread.
    ``catch_up`` is invoked by the serving path (follower reads, score-
    cards, promotion), applies acked ops in sequence order under the
    set's lock, and prunes the ship buffer behind the slowest follower.
    """

    def __init__(
        self,
        make_follower: Callable[[], object],
        log: ReplicationLog,
        count: int = 1,
    ):
        if count < 1:
            raise ValueError("a replica set needs at least one follower")
        self._make_follower = make_follower
        self._lock = threading.RLock()
        self.log = log
        self.followers = [make_follower() for _ in range(count)]
        self._applied = [0] * count

    # -- catch-up ----------------------------------------------------------

    def catch_up(self, now: Optional[int] = None) -> None:
        """Apply every acked op each follower has not seen yet.

        ``now`` (the primary's current clock tick) additionally fast-
        forwards each follower's clock, so Currentness measured on a
        fully caught-up follower matches the primary to float tolerance.
        A pruned tail (follower fell behind the ship buffer) falls back
        to a full snapshot bootstrap off the lead follower's state, with
        a bounded retry (``CATCHUP_ATTEMPTS``) so a prune racing the
        bootstrap cannot escape as a second :class:`LogTruncated`.

        With the interchange gate on, the tail travels as one encoded
        frame (:meth:`ReplicationLog.ship_frame`) and applies **batched**
        through :func:`repro.persistence.apply_ops` — contiguous record
        admissions land via the columnar ``_col_add_chunk`` path under
        one lock trip; ``REPRO_NO_INTERCHANGE=1`` keeps the exact per-op
        replay, and ``capture_state`` byte-equality between the two is
        the pinned oracle.
        """
        with self._lock:
            for index in range(len(self.followers)):
                tail = self._ship_tail(index)
                # the bootstrap may have replaced the follower object —
                # re-read it so the tail lands on the live one
                follower = self.followers[index]
                if interchange_active() and len(tail) > 1:
                    # decoded ops own every dict they carry — adopt the
                    # row dicts into the store without a defensive copy
                    ops = [op for _, op in tail]
                    apply_ops(follower, ops, adopt=True)
                    # sequential per-op advance_to is monotone, so one
                    # advance to the run's maximum tick is equivalent
                    follower.clock.advance_to(
                        max(op_tick(op) for op in ops)
                    )
                    self._applied[index] = tail[-1][0]
                else:
                    for seq, op in tail:
                        apply_op(follower, op)
                        follower.clock.advance_to(op_tick(op))
                        self._applied[index] = seq
                if now is not None:
                    follower.clock.advance_to(now)
            self.log.prune_to(min(self._applied))

    def _ship_tail(self, index: int) -> list[tuple[int, dict]]:
        """Pull follower ``index``'s missing tail, bootstrapping over a
        pruned log — retried up to ``CATCHUP_ATTEMPTS`` times because an
        external ``prune_to`` can advance the base again between the
        bootstrap and the re-ship."""
        truncated: Optional[LogTruncated] = None
        for _ in range(CATCHUP_ATTEMPTS):
            try:
                if interchange_active():
                    return interchange.decode_op_batch(
                        self.log.ship_frame(self._applied[index])
                    )
                return self.log.ship(self._applied[index])
            except LogTruncated as exc:
                truncated = exc
                self._bootstrap(index)
        raise LogTruncated(
            f"follower {index} could not outrun pruning after "
            f"{CATCHUP_ATTEMPTS} bootstrap attempts"
        ) from truncated

    def _bootstrap(self, index: int) -> None:
        """Rebuild follower ``index`` from scratch at the log's base."""
        fresh = self._make_follower()
        base = self.log.base_seq
        lead = max(
            (i for i in range(len(self.followers)) if i != index),
            key=lambda i: self._applied[i],
            default=None,
        )
        if lead is not None and self._applied[lead] >= base:
            restore_snapshot(fresh, capture_state(self.followers[lead]))
            self._applied[index] = self._applied[lead]
        else:
            self._applied[index] = base
        self.followers[index] = fresh

    def seed_from(self, app) -> None:
        """Bootstrap every follower from a primary snapshot (used when a
        replica set is created for a shard that already holds state —
        recovery from disk, or a freshly promoted primary)."""
        with self._lock:
            snapshot = capture_state(app)
            base = self.log.acked_seq
            for index in range(len(self.followers)):
                fresh = self._make_follower()
                if snapshot.get("records_total") or snapshot.get("audit"):
                    restore_snapshot(fresh, snapshot)
                self.followers[index] = fresh
                self._applied[index] = base
            self.log.prune(base)

    # -- reads -------------------------------------------------------------

    def lag(self, index: int = 0) -> int:
        """Acked ops follower ``index`` has not applied yet."""
        with self._lock:
            return max(0, self.log.acked_seq - self._applied[index])

    def follower(self, index: int = 0):
        with self._lock:
            return self.followers[index]

    def __len__(self) -> int:
        return len(self.followers)

    # -- failover ----------------------------------------------------------

    def promote(self) -> tuple[object, int]:
        """Detach and return ``(most caught-up follower, its index)``.

        The caller must have caught the set up against the acked
        watermark first (:meth:`catch_up`); promotion then just picks
        the lead follower and replaces it with a fresh one seeded from
        the promoted state, so the set keeps its size.
        """
        with self._lock:
            lead = max(
                range(len(self.followers)), key=lambda i: self._applied[i]
            )
            promoted = self.followers[lead]
            fresh = self._make_follower()
            snapshot = capture_state(promoted)
            if snapshot.get("records_total") or snapshot.get("audit"):
                restore_snapshot(fresh, snapshot)
            self.followers[lead] = fresh
            return promoted, lead

    def rebind(self, log: ReplicationLog) -> None:
        """Point the set at a new primary log (post-failover/restart).
        Followers keep their state; applied watermarks reset to the new
        log's base so the next catch-up ships only genuinely new ops."""
        with self._lock:
            self.log = log
            base = log.base_seq
            for index in range(len(self.followers)):
                self._applied[index] = base

"""Deterministic key→shard routing for the sharded DQ gateway.

Placement and lookup must agree without any shared mapping table, so both
derive from the same pure function: a record lives on
``fnv1a("entity#record_id") mod shard_count``.  The gateway allocates
global record ids itself (a locked per-entity counter), computes the home
shard from *(entity, id)* before the write ever touches a store, and every
later keyed operation (view, update) re-derives the same shard from the
same two values.  Listing reads have no key — they scatter to every shard
and the gateway gathers the per-shard results.
"""

from __future__ import annotations

import threading

#: FNV-1a 64-bit parameters (stable across processes, unlike ``hash()``,
#: which Python salts per interpreter run).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a(text: str) -> int:
    """The 64-bit FNV-1a hash of ``text`` — deterministic across runs."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _FNV_MASK
    return value


class ShardRouter:
    """Maps (entity, record id) pairs to shard indices."""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    def allocate_id(self, entity: str) -> int:
        """The next global record id for ``entity`` (thread-safe)."""
        with self._lock:
            next_id = self._counters.get(entity, 0) + 1
            self._counters[entity] = next_id
            return next_id

    def observe_id(self, entity: str, record_id: int) -> None:
        """Keep the allocator ahead of ids assigned elsewhere."""
        with self._lock:
            if record_id > self._counters.get(entity, 0):
                self._counters[entity] = record_id

    def shard_for(self, entity: str, record_id: int) -> int:
        """The home shard of a record: ``fnv1a(entity#id) mod N``."""
        return fnv1a(f"{entity}#{record_id}") % self.shard_count

    def all_shards(self) -> range:
        """Every shard index — the scatter-gather (broadcast) path."""
        return range(self.shard_count)

    def placement(self, entity: str) -> tuple[int, int]:
        """Allocate a fresh id and return ``(record_id, shard_index)``."""
        record_id = self.allocate_id(entity)
        return record_id, self.shard_for(entity, record_id)

    def __repr__(self) -> str:
        return f"<ShardRouter over {self.shard_count} shard(s)>"

"""Gateway observability: per-shard counters, latencies, cache hit rate.

A scaled serving layer the operator cannot see inside is a scaled outage;
the gateway therefore meters every dispatch.  Rendering follows the
reports idiom (:func:`repro.diagrams.ascii.table`) so ``repro
cluster-bench`` output reads like the paper tables the CLI already prints.
"""

from __future__ import annotations

import threading
from collections import Counter

from repro.diagrams.ascii import table as render_table


class _LatencySeries:
    """Count / total / max of one operation's service times (seconds)."""

    __slots__ = ("count", "total", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_us": round(self.mean * 1e6, 1),
            "max_us": round(self.max * 1e6, 1),
        }


class GatewayMetrics:
    """Thread-safe counters the gateway updates on every request."""

    def __init__(self, shard_count: int):
        self.shard_count = shard_count
        self._lock = threading.Lock()
        self._shard_requests = Counter()
        self._operations: dict[str, _LatencySeries] = {}
        self._statuses = Counter()
        self.rejected_backpressure = 0
        self.rejected_unavailable = 0
        # resilience counters (stay zero unless the machinery is active)
        self.retries = Counter()              # operation -> retry attempts
        self.faults = Counter()               # fault kind -> times it bit
        self.degraded_reads = Counter()       # operation -> degraded serves
        self.shed = Counter()                 # operation -> 503 load sheds
        self.breaker_transitions = Counter()  # (shard, to_state) -> count
        self.backoff_total = 0.0              # simulated backoff seconds
        # write-batching counters (stay zero unless batching is used)
        self.batches = Counter()              # operation -> chunks dispatched
        self.batched_ops = Counter()          # operation -> ops coalesced

    # -- recording (called by the gateway) ------------------------------

    def observe(
        self, operation: str, shards: tuple, status: int, elapsed: float
    ) -> None:
        with self._lock:
            for shard in shards:
                self._shard_requests[shard] += 1
            series = self._operations.get(operation)
            if series is None:
                series = self._operations[operation] = _LatencySeries()
            series.observe(elapsed)
            self._statuses[status] += 1

    def observe_backpressure(self) -> None:
        with self._lock:
            self.rejected_backpressure += 1
            self._statuses[429] += 1

    def observe_unavailable(self) -> None:
        with self._lock:
            self.rejected_unavailable += 1
            self._statuses[503] += 1

    def observe_retry(self, operation: str) -> None:
        with self._lock:
            self.retries[operation] += 1

    def observe_backoff(self, delay: float) -> None:
        with self._lock:
            self.backoff_total += delay

    def observe_fault(self, kind: str) -> None:
        with self._lock:
            self.faults[kind] += 1

    def observe_degraded(self, operation: str) -> None:
        with self._lock:
            self.degraded_reads[operation] += 1

    def observe_shed(self, operation: str) -> None:
        with self._lock:
            self.shed[operation] += 1

    def observe_breaker(self, shard: int, origin: str, to: str) -> None:
        with self._lock:
            self.breaker_transitions[(shard, to)] += 1

    def observe_batch(self, operation: str, size: int) -> None:
        """One coalesced chunk of ``size`` operations hit a shard lock."""
        with self._lock:
            self.batches[operation] += 1
            self.batched_ops[operation] += size

    # -- reading ---------------------------------------------------------

    def snapshot(
        self, cache_stats=None, validation_stats=None, telemetry_stats=None
    ) -> dict:
        """A point-in-time copy of every counter, as plain data.

        ``validation_stats`` is the dict
        :meth:`repro.runtime.vpipeline.ValidationStats.merge` produces
        (``validation_us``, ``plan_cache_hits``, …) — the gateway passes
        its aggregated per-shard numbers here.  ``telemetry_stats`` is
        :meth:`repro.cluster.gateway.ShardedGateway.telemetry_stats` —
        streaming-DQ-accumulator counters (counts only, deterministic).
        """
        with self._lock:
            total = sum(s.count for s in self._operations.values())
            snap = {
                "shard_count": self.shard_count,
                "requests": total,
                "per_shard": {
                    shard: self._shard_requests.get(shard, 0)
                    for shard in range(self.shard_count)
                },
                "operations": {
                    name: series.as_dict()
                    for name, series in sorted(self._operations.items())
                },
                "statuses": dict(sorted(self._statuses.items())),
                "rejected_backpressure": self.rejected_backpressure,
                "rejected_unavailable": self.rejected_unavailable,
            }
            if (
                self.retries or self.faults or self.degraded_reads
                or self.shed or self.breaker_transitions
            ):
                snap["resilience"] = {
                    "retries": dict(sorted(self.retries.items())),
                    "backoff_seconds": round(self.backoff_total, 6),
                    "faults": dict(sorted(self.faults.items())),
                    "degraded_reads": dict(
                        sorted(self.degraded_reads.items())
                    ),
                    "shed": dict(sorted(self.shed.items())),
                    "breaker_transitions": {
                        f"shard{shard}->{state}": count
                        for (shard, state), count in sorted(
                            self.breaker_transitions.items()
                        )
                    },
                }
            if self.batches:
                total_chunks = sum(self.batches.values())
                total_ops = sum(self.batched_ops.values())
                snap["batching"] = {
                    "chunks": dict(sorted(self.batches.items())),
                    "operations": dict(sorted(self.batched_ops.items())),
                    "mean_ops_per_chunk": round(
                        total_ops / total_chunks, 2
                    ),
                }
        if cache_stats is not None:
            snap["cache"] = cache_stats.as_dict()
        if validation_stats is not None:
            snap["validation"] = dict(validation_stats)
        if telemetry_stats is not None:
            snap["telemetry"] = dict(telemetry_stats)
        return snap

    def render(
        self, cache_stats=None, validation_stats=None, telemetry_stats=None
    ) -> str:
        """The metrics snapshot as aligned text tables."""
        snap = self.snapshot(cache_stats, validation_stats, telemetry_stats)
        sections = [
            f"gateway over {snap['shard_count']} shard(s) — "
            f"{snap['requests']} request(s), "
            f"{snap['rejected_backpressure']} backpressured (429), "
            f"{snap['rejected_unavailable']} refused (503)"
        ]
        sections.append(render_table(
            ["Shard", "Requests"],
            [[str(s), str(n)] for s, n in snap["per_shard"].items()],
        ))
        if snap["operations"]:
            sections.append(render_table(
                ["Operation", "Count", "Mean µs", "Max µs"],
                [
                    [name, str(d["count"]), str(d["mean_us"]),
                     str(d["max_us"])]
                    for name, d in snap["operations"].items()
                ],
            ))
        if snap["statuses"]:
            sections.append(render_table(
                ["Status", "Count"],
                [[str(s), str(n)] for s, n in snap["statuses"].items()],
            ))
        if "resilience" in snap:
            res = snap["resilience"]
            sections.append(
                f"resilience: {sum(res['retries'].values())} retry(ies) "
                f"({res['backoff_seconds']}s backoff), "
                f"{sum(res['faults'].values())} fault(s) "
                f"{dict(res['faults'])}, "
                f"{sum(res['degraded_reads'].values())} degraded read(s), "
                f"{sum(res['shed'].values())} shed (503)"
            )
            if res["breaker_transitions"]:
                sections.append(render_table(
                    ["Breaker transition", "Count"],
                    [
                        [name, str(count)]
                        for name, count in res["breaker_transitions"].items()
                    ],
                ))
        if "batching" in snap:
            batching = snap["batching"]
            sections.append(
                f"batching: {sum(batching['operations'].values())} op(s) in "
                f"{sum(batching['chunks'].values())} chunk(s) "
                f"(mean {batching['mean_ops_per_chunk']}/chunk)"
            )
        if "cache" in snap:
            cache = snap["cache"]
            sections.append(
                f"cache: {cache['hits']} hit(s) / {cache['misses']} miss(es) "
                f"(rate {cache['hit_rate']:.2%}), "
                f"{cache['invalidations']} invalidation(s), "
                f"{cache['evictions']} eviction(s)"
            )
        if "validation" in snap:
            val = snap["validation"]
            sections.append(
                f"validation: {val['checks']} check(s) in "
                f"{val['validation_us']}µs "
                f"(mean {val['mean_us']}µs, {val['batches']} batch(es)), "
                f"plan cache {val['plan_cache_hits']} hit(s) / "
                f"{val['plan_cache_misses']} miss(es), "
                f"{val['plans_compiled']} plan(s) compiled"
            )
        if "telemetry" in snap:
            tel = snap["telemetry"]
            sections.append(
                f"dq telemetry: {tel['records']} record(s) live over "
                f"{tel['tracked_fields']} field accumulator(s), "
                f"{tel['updates']} update(s), "
                f"{tel['spilled_fields']} spill(s), "
                f"{tel['rebuilds']} rebuild(s), "
                f"{tel['disabled_entities']} disabled entity(ies)"
            )
        return "\n".join(sections)

"""Model (de)serialization: XMI-flavoured XML and JSON."""

from . import jsonio, xmi

__all__ = ["jsonio", "xmi"]

"""XMI-flavoured XML (de)serialization of model object trees.

This follows the spirit of OMG XMI as used by EMF tools (the paper's
ecosystem): one XML element per model object, ``xmi:id`` identifiers,
containment as nested elements, cross references as ``idref`` attributes.

Layout:

.. code-block:: xml

    <xmi:XMI xmlns:xmi="http://www.omg.org/XMI">
      <webre.WebProcess xmi:id="o1" name="Add new review">
        <activities xmi:type="webre.Browse" xmi:id="o2" name="..."
                    target="o9"/>
      </webre.WebProcess>
    </xmi:XMI>

* the root object's tag is its qualified metaclass name;
* contained children use the *feature name* as tag with an ``xmi:type``
  attribute carrying the concrete metaclass (EMF style);
* single-valued primitive attributes become XML attributes; many-valued
  attributes become ``<feature>text</feature>`` child elements;
* cross references are XML attributes holding space-separated target ids.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from ..errors import SerializationError
from ..meta import MetaAttribute, BOOLEAN, INTEGER, REAL
from ..objects import MObject, Slot
from ..registry import MetamodelRegistry, global_registry

XMI_NS = "http://www.omg.org/XMI"
_ID = f"{{{XMI_NS}}}id"
_TYPE = f"{{{XMI_NS}}}type"

ET.register_namespace("xmi", XMI_NS)


def to_element(root: MObject) -> ET.Element:
    """Serialize a tree into an ``<xmi:XMI>`` :class:`~xml.etree.ElementTree.Element`.

    Like the JSON flavour, references escaping the tree are rejected at
    dump time (the resulting document could never resolve them).
    """
    from .jsonio import _check_self_contained

    _check_self_contained(root)
    wrapper = ET.Element(f"{{{XMI_NS}}}XMI")
    wrapper.append(_object_to_element(root, tag=root.metaclass.qualified_name()))
    return wrapper


def _object_to_element(obj: MObject, tag: str, concrete: Optional[str] = None) -> ET.Element:
    element = ET.Element(tag)
    element.set(_ID, obj.id)
    if concrete is not None:
        element.set(_TYPE, concrete)
    for name, attribute in obj.metaclass.all_attributes().items():
        value = obj.get(name)
        if isinstance(value, Slot):
            for item in value:
                child = ET.SubElement(element, name)
                child.text = _render_value(item)
        elif value is not None:
            element.set(name, _render_value(value))
    for name, reference in obj.metaclass.all_references().items():
        value = obj.get(name)
        if reference.containment:
            if isinstance(value, Slot):
                for item in value:
                    element.append(
                        _object_to_element(
                            item, tag=name,
                            concrete=item.metaclass.qualified_name(),
                        )
                    )
            elif value is not None:
                element.append(
                    _object_to_element(
                        value, tag=name,
                        concrete=value.metaclass.qualified_name(),
                    )
                )
        else:
            if isinstance(value, Slot):
                if len(value):
                    element.set(name, " ".join(item.id for item in value))
            elif value is not None:
                element.set(name, value.id)
    return element


def _render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def dumps(root: MObject) -> str:
    """Serialize to an XML string."""
    element = to_element(root)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def dump(root: MObject, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(root))


def from_element(
    wrapper: ET.Element, registry: Optional[MetamodelRegistry] = None
) -> MObject:
    """Rebuild a model from :func:`to_element` output."""
    registry = registry or global_registry
    children = list(wrapper)
    if len(children) != 1:
        raise SerializationError(
            f"expected exactly one root object element, got {len(children)}"
        )
    by_id: dict[str, MObject] = {}
    pending: list[tuple[MObject, str, str]] = []
    root_element = children[0]
    root = _build_object(root_element, root_element.tag, registry, by_id, pending)
    for obj, feature_name, raw_ids in pending:
        reference = obj.metaclass.all_references()[feature_name]
        ids = raw_ids.split()
        targets = []
        for ref_id in ids:
            target = by_id.get(ref_id)
            if target is None:
                raise SerializationError(f"dangling reference to id {ref_id!r}")
            targets.append(target)
        if reference.many:
            obj.set(feature_name, targets)
        else:
            if len(targets) != 1:
                raise SerializationError(
                    f"{feature_name}: single-valued reference with "
                    f"{len(targets)} targets"
                )
            obj.set(feature_name, targets[0])
    return root


def _build_object(element: ET.Element, class_name: str, registry, by_id, pending) -> MObject:
    metaclass = registry.find_class(class_name)
    if metaclass is None:
        raise SerializationError(f"unknown metaclass {class_name!r}")
    obj = metaclass.create()
    xmi_id = element.get(_ID)
    if xmi_id:
        object.__setattr__(obj, "id", xmi_id)
    if obj.id in by_id:
        raise SerializationError(f"duplicate xmi:id {obj.id!r}")
    by_id[obj.id] = obj
    attributes = metaclass.all_attributes()
    references = metaclass.all_references()
    for key, raw in element.attrib.items():
        if key in (_ID, _TYPE):
            continue
        if key in attributes:
            obj.set(key, _parse_value(attributes[key], raw))
        elif key in references:
            pending.append((obj, key, raw))
        else:
            raise SerializationError(f"{class_name} has no feature {key!r}")
    for child in element:
        name = child.tag
        if name in attributes:
            attribute = attributes[name]
            slot = obj.get(name)
            slot.append(_parse_value(attribute, child.text or ""))
            continue
        reference = references.get(name)
        if reference is None or not reference.containment:
            raise SerializationError(
                f"{class_name}: unexpected child element {name!r}"
            )
        concrete = child.get(_TYPE) or reference.target.qualified_name()
        built = _build_object(child, concrete, registry, by_id, pending)
        if reference.many:
            obj.get(name).append(built)
        else:
            obj.set(name, built)
    return obj


def _parse_value(attribute: MetaAttribute, raw: str):
    if attribute.type is BOOLEAN:
        if raw not in ("true", "false"):
            raise SerializationError(f"bad boolean literal {raw!r}")
        return raw == "true"
    if attribute.type is INTEGER:
        try:
            return int(raw)
        except ValueError as exc:
            raise SerializationError(f"bad integer literal {raw!r}") from exc
    if attribute.type is REAL:
        try:
            return float(raw)
        except ValueError as exc:
            raise SerializationError(f"bad real literal {raw!r}") from exc
    return raw


def loads(text: str, registry: Optional[MetamodelRegistry] = None) -> MObject:
    try:
        wrapper = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed XMI document: {exc}") from exc
    return from_element(wrapper, registry)


def load(path: str, registry: Optional[MetamodelRegistry] = None) -> MObject:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), registry)

"""JSON (de)serialization of model object trees.

The format is a direct rendering of the containment tree:

.. code-block:: json

    {
      "eClass": "webre.WebProcess",
      "id": "o42",
      "name": "Add new review to submission",
      "activities": [ { "eClass": "...", ... } ],
      "target": { "$ref": "o17" }
    }

* containment references nest child documents;
* cross references use ``{"$ref": <id>}`` stubs, resolved in a second pass;
* attributes serialize as plain JSON values.

Round trip is identity up to object ``id`` renumbering (ids are preserved in
the document and restored on load so cross references stay stable).
"""

from __future__ import annotations

import json
from typing import Optional, Union

from ..errors import SerializationError
from ..meta import MetaReference
from ..objects import MObject, Slot
from ..registry import MetamodelRegistry, global_registry

_CLASS_KEY = "eClass"
_ID_KEY = "id"
_REF_KEY = "$ref"


def to_dict(root: MObject) -> dict:
    """Serialize the tree under ``root`` into a JSON-compatible dict.

    Every cross reference must stay inside the serialized tree; a reference
    escaping it would produce a document that cannot be loaded back, so it
    is rejected here, at dump time, with a pointed error.
    """
    _check_self_contained(root)
    return _object_to_dict(root)


def _check_self_contained(root: MObject) -> None:
    from ..visitor import referenced_objects, walk

    inside = {id(obj) for obj in walk(root)}
    for obj in walk(root):
        for feature_name, target in referenced_objects(obj):
            if id(target) not in inside:
                raise SerializationError(
                    f"{obj.metaclass.name} {obj.label()!r}.{feature_name} "
                    f"references {target.label()!r} outside the serialized "
                    "tree; detach it (or serialize a common root) first"
                )


def _object_to_dict(obj: MObject) -> dict:
    document: dict = {
        _CLASS_KEY: obj.metaclass.qualified_name(),
        _ID_KEY: obj.id,
    }
    for name in obj.metaclass.all_attributes():
        value = obj.get(name)
        if isinstance(value, Slot):
            if len(value):
                document[name] = list(value)
        elif value is not None:
            document[name] = value
    for name, reference in obj.metaclass.all_references().items():
        value = obj.get(name)
        if reference.containment:
            if isinstance(value, Slot):
                if len(value):
                    document[name] = [_object_to_dict(child) for child in value]
            elif value is not None:
                document[name] = _object_to_dict(value)
        else:
            if isinstance(value, Slot):
                if len(value):
                    document[name] = [{_REF_KEY: item.id} for item in value]
            elif value is not None:
                document[name] = {_REF_KEY: value.id}
    return document


def dumps(root: MObject, indent: Optional[int] = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(root), indent=indent)


def dump(root: MObject, path: str, indent: Optional[int] = 2) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(root, indent))


def from_dict(
    document: dict, registry: Optional[MetamodelRegistry] = None
) -> MObject:
    """Rebuild a model tree from :func:`to_dict` output."""
    registry = registry or global_registry
    by_id: dict[str, MObject] = {}
    pending: list[tuple[MObject, str, Union[list, dict]]] = []
    root = _build_object(document, registry, by_id, pending)
    for obj, feature_name, raw in pending:
        if isinstance(raw, list):
            targets = [_resolve_ref(stub, by_id) for stub in raw]
            obj.set(feature_name, targets)
        else:
            obj.set(feature_name, _resolve_ref(raw, by_id))
    return root


def _build_object(document: dict, registry, by_id, pending) -> MObject:
    if _CLASS_KEY not in document:
        raise SerializationError(f"document lacks {_CLASS_KEY!r}: {document!r}")
    class_name = document[_CLASS_KEY]
    metaclass = registry.find_class(class_name)
    if metaclass is None:
        raise SerializationError(f"unknown metaclass {class_name!r}")
    obj = metaclass.create()
    if _ID_KEY in document:
        object.__setattr__(obj, "id", document[_ID_KEY])
    if obj.id in by_id:
        raise SerializationError(f"duplicate object id {obj.id!r}")
    by_id[obj.id] = obj
    references = metaclass.all_references()
    attributes = metaclass.all_attributes()
    for key, value in document.items():
        if key in (_CLASS_KEY, _ID_KEY):
            continue
        if key in attributes:
            obj.set(key, value)
            continue
        reference = references.get(key)
        if reference is None:
            raise SerializationError(
                f"{class_name} has no feature {key!r} (stale document?)"
            )
        if reference.containment:
            if isinstance(value, list):
                children = [
                    _build_object(child, registry, by_id, pending)
                    for child in value
                ]
                obj.set(key, children)
            else:
                obj.set(key, _build_object(value, registry, by_id, pending))
        else:
            pending.append((obj, key, value))
    return obj


def _resolve_ref(stub, by_id: dict[str, MObject]) -> MObject:
    if not isinstance(stub, dict) or _REF_KEY not in stub:
        raise SerializationError(f"expected a $ref stub, got {stub!r}")
    ref_id = stub[_REF_KEY]
    target = by_id.get(ref_id)
    if target is None:
        raise SerializationError(f"dangling reference to id {ref_id!r}")
    return target


def loads(text: str, registry: Optional[MetamodelRegistry] = None) -> MObject:
    return from_dict(json.loads(text), registry)


def load(path: str, registry: Optional[MetamodelRegistry] = None) -> MObject:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), registry)

"""Traversal and query helpers over model object trees."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .meta import MetaClass
from .objects import MObject, Slot


def walk(root: MObject, include_root: bool = True) -> Iterator[MObject]:
    """Depth-first pre-order traversal of a containment tree."""
    if include_root:
        yield root
    yield from root.all_contents()


def objects_of_type(
    root: MObject, metaclass: MetaClass, include_root: bool = True
) -> list[MObject]:
    """All objects in the tree conforming to ``metaclass``."""
    return [
        obj
        for obj in walk(root, include_root=include_root)
        if obj.is_instance_of(metaclass)
    ]


def find(
    root: MObject,
    predicate: Callable[[MObject], bool],
    include_root: bool = True,
) -> Optional[MObject]:
    """First object (pre-order) satisfying ``predicate``, else ``None``."""
    for obj in walk(root, include_root=include_root):
        if predicate(obj):
            return obj
    return None


def find_all(
    root: MObject,
    predicate: Callable[[MObject], bool],
    include_root: bool = True,
) -> list[MObject]:
    return [obj for obj in walk(root, include_root=include_root) if predicate(obj)]


def find_by_name(root: MObject, name: str) -> Optional[MObject]:
    """First object whose ``name`` feature equals ``name``."""
    def has_name(obj: MObject) -> bool:
        return obj.has_feature("name") and obj.get("name") == name

    return find(root, has_name)


def count(root: MObject) -> int:
    """Number of objects in the tree, root included."""
    return sum(1 for _ in walk(root))


def path_of(obj: MObject) -> str:
    """A slash-separated path of labels from the root to ``obj``.

    Used by the XMI serializer for cross-references and by diagnostics to
    point at an offending element.
    """
    parts: list[str] = []
    current: Optional[MObject] = obj
    while current is not None:
        parts.append(current.label())
        current = current.container
    return "/".join(reversed(parts))


def referenced_objects(obj: MObject) -> Iterator[tuple[str, MObject]]:
    """Yield ``(feature_name, target)`` for every non-containment reference."""
    for name, reference in obj.metaclass.all_references().items():
        if reference.containment:
            continue
        value = obj.get(name)
        if isinstance(value, Slot):
            for item in value:
                yield name, item
        elif value is not None:
            yield name, value


def incoming_references(root: MObject, target: MObject) -> list[tuple[MObject, str]]:
    """All ``(source, feature)`` pairs in the tree pointing at ``target``."""
    hits = []
    for obj in walk(root):
        for feature_name, pointed in referenced_objects(obj):
            if pointed is target:
                hits.append((obj, feature_name))
    return hits

"""Constraint engine: declarative well-formedness rules over models.

A :class:`Constraint` applies to every instance of a *context* metaclass and
either evaluates an OCL-lite expression or calls a Python predicate.  A
:class:`ConstraintEngine` validates a whole containment tree and returns
:class:`Diagnostic` records, graded by :class:`Severity`.

This is the machinery behind:

* the kernel's built-in multiplicity checking,
* WebRE well-formedness (``repro.webre.validation``),
* and the paper's Table 3 profile constraints
  (``repro.dqwebre.wellformedness``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from .errors import OclError, ValidationFailed
from .meta import MetaClass
from .objects import MObject
from .ocl import OclExpression
from .visitor import path_of, walk


class Severity(enum.IntEnum):
    """Ordering matters: higher is worse."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding produced by validating one object against one rule."""

    severity: Severity
    message: str
    obj: Optional[MObject] = None
    constraint: Optional[str] = None

    def location(self) -> str:
        return path_of(self.obj) if self.obj is not None else "<model>"

    def render(self) -> str:
        tag = self.severity.name
        rule = f" [{self.constraint}]" if self.constraint else ""
        return f"{tag}{rule} at {self.location()}: {self.message}"


class Constraint:
    """A named rule on a context metaclass.

    ``body`` is either an OCL-lite text (must evaluate to a Boolean; False
    means violated) or a Python callable ``obj -> bool | str | None`` where
    returning False or an error string means violated, and ``None``/True
    means satisfied.
    """

    def __init__(
        self,
        name: str,
        context: MetaClass,
        body: Union[str, Callable[[MObject], object]],
        message: str = "",
        severity: Severity = Severity.ERROR,
        type_resolver=None,
    ):
        self.name = name
        self.context = context
        self.message = message or name
        self.severity = severity
        if isinstance(body, str):
            self.ocl_text: Optional[str] = body
            self._expression = OclExpression(body, type_resolver)
            self._predicate = None
        else:
            self.ocl_text = None
            self._expression = None
            self._predicate = body

    def applies_to(self, obj: MObject) -> bool:
        return obj.is_instance_of(self.context)

    def check(self, obj: MObject) -> Optional[Diagnostic]:
        """Return a diagnostic when violated, else ``None``."""
        if self._expression is not None:
            try:
                ok = self._expression.evaluate(obj)
            except OclError as exc:
                return Diagnostic(
                    Severity.ERROR,
                    f"constraint expression failed: {exc}",
                    obj,
                    self.name,
                )
            if ok is True:
                return None
            return Diagnostic(self.severity, self.message, obj, self.name)
        result = self._predicate(obj)
        if result is None or result is True:
            return None
        message = result if isinstance(result, str) else self.message
        return Diagnostic(self.severity, message, obj, self.name)

    def __repr__(self) -> str:
        return f"<Constraint {self.name!r} on {self.context.name}>"


def multiplicity_constraint() -> Callable[[MObject], object]:
    """The built-in check that every lower bound is satisfied."""

    def check(obj: MObject):
        missing = obj.missing_required_features()
        if not missing:
            return True
        names = ", ".join(
            f"{feature.name} [{feature.multiplicity()}]" for feature in missing
        )
        return f"required features unset: {names}"

    return check


@dataclass
class ValidationReport:
    """All diagnostics from one validation run, with convenience accessors."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    objects_checked: int = 0
    constraints_evaluated: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    def by_constraint(self, name: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.constraint == name]

    def render(self) -> str:
        if not self.diagnostics:
            return (
                f"OK — {self.objects_checked} objects, "
                f"{self.constraints_evaluated} constraint evaluations, "
                "no findings"
            )
        lines = [d.render() for d in sorted(
            self.diagnostics, key=lambda d: -int(d.severity)
        )]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s) over {self.objects_checked} objects"
        )
        return "\n".join(lines)


class ConstraintEngine:
    """Collects constraints and validates models against them."""

    def __init__(self, check_multiplicities: bool = True):
        self._constraints: list[Constraint] = []
        self.check_multiplicities = check_multiplicities

    def add(self, constraint: Constraint) -> Constraint:
        self._constraints.append(constraint)
        return constraint

    def add_all(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def constraint(
        self,
        name: str,
        context: MetaClass,
        body,
        message: str = "",
        severity: Severity = Severity.ERROR,
        type_resolver=None,
    ) -> Constraint:
        """Create-and-register shorthand."""
        return self.add(
            Constraint(name, context, body, message, severity, type_resolver)
        )

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def validate(self, root: MObject, include_root: bool = True) -> ValidationReport:
        """Validate the whole containment tree under ``root``."""
        report = ValidationReport()
        for obj in walk(root, include_root=include_root):
            report.objects_checked += 1
            if self.check_multiplicities:
                report.constraints_evaluated += 1
                missing = obj.missing_required_features()
                if missing:
                    names = ", ".join(
                        f"{f.name} [{f.multiplicity()}]" for f in missing
                    )
                    report.diagnostics.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"required features unset: {names}",
                            obj,
                            "multiplicity",
                        )
                    )
            for constraint in self._constraints:
                if not constraint.applies_to(obj):
                    continue
                report.constraints_evaluated += 1
                diagnostic = constraint.check(obj)
                if diagnostic is not None:
                    report.diagnostics.append(diagnostic)
        return report

    def validate_object(self, obj: MObject) -> ValidationReport:
        """Validate a single object, ignoring its contents."""
        report = ValidationReport(objects_checked=1)
        for constraint in self._constraints:
            if not constraint.applies_to(obj):
                continue
            report.constraints_evaluated += 1
            diagnostic = constraint.check(obj)
            if diagnostic is not None:
                report.diagnostics.append(diagnostic)
        return report


def assert_valid(report: ValidationReport, what: str = "model") -> ValidationReport:
    """Raise :class:`ValidationFailed` when the report contains errors."""
    if not report.ok:
        raise ValidationFailed(
            f"{what} failed validation:\n{report.render()}", report.errors
        )
    return report

"""Change notification for model objects.

Every mutation of an :class:`~repro.core.objects.MObject` emits a
:class:`Notification` to observers subscribed on the object *or any of its
containers*, so subscribing on a model root observes the whole tree.  The
diff engine, the runtime DQ audit trail and the test suite all consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: A single-valued feature received a (non-None) value.
SET = "set"
#: A single-valued feature was cleared to ``None``.
UNSET = "unset"
#: An item was appended/inserted into a many-valued feature.
ADD = "add"
#: An item was removed from a many-valued feature.
REMOVE = "remove"
#: An object changed container (containment move).
MOVE = "move"

KINDS = (SET, UNSET, ADD, REMOVE, MOVE)


@dataclass(frozen=True)
class Notification:
    """An immutable record of one model mutation."""

    kind: str
    obj: object
    feature: str
    old: object
    new: object

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown notification kind {self.kind!r}")

    def describe(self) -> str:
        """One-line human-readable rendering, used by audit logs."""
        label = getattr(self.obj, "label", lambda: repr(self.obj))()
        if self.kind == SET:
            return f"set {label}.{self.feature} = {_short(self.new)}"
        if self.kind == UNSET:
            return f"unset {label}.{self.feature} (was {_short(self.old)})"
        if self.kind == ADD:
            return f"add {_short(self.new)} to {label}.{self.feature}"
        if self.kind == REMOVE:
            return f"remove {_short(self.old)} from {label}.{self.feature}"
        return f"move {label} from {_short(self.old)} to {_short(self.new)}"


def _short(value) -> str:
    text = getattr(value, "label", None)
    if callable(text):
        return text()
    return repr(value)


class Recorder:
    """An observer that accumulates notifications; handy in tests and audits.

    >>> recorder = Recorder()
    >>> # model_root.subscribe(recorder)
    """

    def __init__(self, keep: Optional[int] = None):
        self.notifications: list[Notification] = []
        self._keep = keep

    def __call__(self, notification: Notification) -> None:
        self.notifications.append(notification)
        if self._keep is not None and len(self.notifications) > self._keep:
            del self.notifications[0]

    def __len__(self) -> int:
        return len(self.notifications)

    def clear(self) -> None:
        self.notifications.clear()

    def of_kind(self, kind: str) -> list[Notification]:
        return [n for n in self.notifications if n.kind == kind]

    def last(self) -> Optional[Notification]:
        return self.notifications[-1] if self.notifications else None

"""``repro.core`` — the metamodeling kernel.

A small MOF/Ecore-flavoured meta-layer: define metamodels
(:class:`MetaPackage`, :class:`MetaClass`, :class:`MetaAttribute`,
:class:`MetaReference`, :class:`MetaEnum`), instantiate them
(:class:`MObject`), constrain them (:class:`Constraint`,
:class:`ConstraintEngine`, OCL-lite), observe them (:mod:`repro.core.events`),
serialize them (XMI / JSON) and diff them.

Everything in the DQ_WebRE reproduction — the UML subset, WebRE, the DQ_WebRE
extension, the design metamodel — is defined on top of this kernel.
"""

from .constraints import (
    Constraint,
    ConstraintEngine,
    Diagnostic,
    Severity,
    ValidationReport,
    assert_valid,
)
from .errors import (
    AuthorizationError,
    DataQualityViolation,
    VersionConflictError,
    MetamodelError,
    ModelError,
    OclError,
    OclEvalError,
    OclSyntaxError,
    ProfileError,
    ReproError,
    SerializationError,
    TransformationError,
    ValidationFailed,
)
from .events import ADD, MOVE, REMOVE, SET, UNSET, Notification, Recorder
from .meta import (
    ANY,
    BOOLEAN,
    INTEGER,
    MANY,
    REAL,
    STRING,
    MetaAttribute,
    MetaClass,
    MetaEnum,
    MetaPackage,
    MetaReference,
)
from .objects import MObject, Slot
from .ocl import OclExpression, evaluate, parse, type_resolver_for
from .registry import MetamodelRegistry, global_registry
from .visitor import (
    count,
    find,
    find_all,
    find_by_name,
    incoming_references,
    objects_of_type,
    path_of,
    walk,
)

__all__ = [
    "ANY", "BOOLEAN", "INTEGER", "MANY", "REAL", "STRING",
    "MetaAttribute", "MetaClass", "MetaEnum", "MetaPackage", "MetaReference",
    "MObject", "Slot",
    "Constraint", "ConstraintEngine", "Diagnostic", "Severity",
    "ValidationReport", "assert_valid",
    "OclExpression", "evaluate", "parse", "type_resolver_for",
    "MetamodelRegistry", "global_registry",
    "Notification", "Recorder", "ADD", "MOVE", "REMOVE", "SET", "UNSET",
    "walk", "objects_of_type", "find", "find_all", "find_by_name",
    "incoming_references", "count", "path_of",
    "ReproError", "MetamodelError", "ModelError", "OclError",
    "OclSyntaxError", "OclEvalError", "SerializationError",
    "TransformationError", "ProfileError", "ValidationFailed",
    "AuthorizationError", "DataQualityViolation", "VersionConflictError",
]

"""Exception hierarchy for the metamodeling kernel and everything above it.

All exceptions raised by ``repro`` derive from :class:`ReproError`, so client
code can catch a single type at an API boundary.  Below that, the tree follows
the layering of the library:

* :class:`MetamodelError` — mistakes in *metamodel definitions* (duplicate
  feature names, unresolved reference targets, bad multiplicities ...).
* :class:`ModelError` — mistakes when *building or mutating models* (wrong
  value types, unknown features, multiplicity violations ...).
* :class:`OclError` — the OCL-lite expression language (syntax / evaluation).
* :class:`SerializationError` — XMI / JSON (de)serialization failures.
* :class:`TransformationError` — model-to-model / model-to-text failures.
* :class:`ProfileError` — UML profile misuse (wrong base class, bad tags).
* :class:`RuntimeEnforcementError` — the simulated web runtime's DQ engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class MetamodelError(ReproError):
    """A metamodel definition is internally inconsistent."""


class DuplicateFeatureError(MetamodelError):
    """Two structural features of a metaclass share a name."""


class UnresolvedTypeError(MetamodelError):
    """A lazily named reference target could not be resolved in its package."""


class InvalidMultiplicityError(MetamodelError):
    """A feature was declared with an impossible ``lower..upper`` bound."""


class ModelError(ReproError):
    """A model instance violates its metamodel while being built or mutated."""


class UnknownFeatureError(ModelError, AttributeError):
    """An object was asked for a structural feature its metaclass lacks.

    Also an :class:`AttributeError` so that idioms like :func:`getattr` with a
    default keep working on model objects.
    """


class TypeCheckError(ModelError, TypeError):
    """A value does not conform to the declared type of a feature."""


class MultiplicityError(ModelError):
    """An operation would violate a feature's ``lower..upper`` bounds."""


class ContainmentError(ModelError):
    """An operation would corrupt the containment tree (e.g. create a cycle)."""


class FrozenModelError(ModelError):
    """A mutation was attempted on a model that has been frozen read-only."""


class OclError(ReproError):
    """Base class for the OCL-lite expression language."""


class OclSyntaxError(OclError):
    """The expression text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0 and self.text:
            pointer = " " * self.position + "^"
            return f"{base}\n  {self.text}\n  {pointer}"
        return base


class OclEvalError(OclError):
    """The expression parsed but failed during evaluation."""


class SerializationError(ReproError):
    """A model could not be written to, or read back from, XMI or JSON."""


class TransformationError(ReproError):
    """A model transformation rule failed or produced inconsistent output."""


class TemplateError(TransformationError):
    """The model-to-text template engine hit a malformed template."""


class ProfileError(ReproError):
    """A UML profile was applied incorrectly."""


class BaseClassMismatchError(ProfileError):
    """A stereotype was applied to an element of the wrong UML base class."""


class TaggedValueError(ProfileError):
    """A tagged value is missing, unknown, or of the wrong type."""


class ValidationFailed(ReproError):
    """Raised by :func:`repro.core.constraints.assert_valid` on ERROR findings."""

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class RuntimeEnforcementError(ReproError):
    """The simulated web runtime rejected an operation for DQ reasons."""


class AuthorizationError(RuntimeEnforcementError):
    """Confidentiality enforcement: the user may not access the data."""


class VersionConflictError(RuntimeEnforcementError):
    """Optimistic concurrency: the record changed since the client read it."""


class DataQualityViolation(RuntimeEnforcementError):
    """A runtime DQ validator rejected a write (completeness, precision ...)."""

    def __init__(self, message: str, findings=None):
        super().__init__(message)
        self.findings = list(findings or [])

"""A registry of metamodel packages, keyed by URI and by name.

Serializers need to find a metaclass again from its qualified name when a
model is read back; the registry is that lookup service.  The library
registers its built-in metamodels (UML, WebRE, DQ_WebRE, the design
metamodel) in the :data:`global_registry` at import time.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .errors import MetamodelError
from .meta import MetaClass, MetaPackage


class MetamodelRegistry:
    """Maps package URIs and names to :class:`MetaPackage` instances."""

    def __init__(self):
        self._by_uri: dict[str, MetaPackage] = {}

    def register(self, package: MetaPackage) -> MetaPackage:
        existing = self._by_uri.get(package.uri)
        if existing is not None and existing is not package:
            raise MetamodelError(
                f"URI {package.uri!r} already registered for package "
                f"{existing.name!r}"
            )
        self._by_uri[package.uri] = package
        return package

    def unregister(self, package: MetaPackage) -> None:
        self._by_uri.pop(package.uri, None)

    def by_uri(self, uri: str) -> Optional[MetaPackage]:
        return self._by_uri.get(uri)

    def by_name(self, name: str) -> Optional[MetaPackage]:
        for package in self._by_uri.values():
            if package.name == name or package.qualified_name() == name:
                return package
        return None

    def find_class(self, qualified_name: str) -> Optional[MetaClass]:
        """Resolve ``package.Class`` or bare ``Class`` across all packages."""
        if "." in qualified_name:
            package_name, _, class_name = qualified_name.partition(".")
            package = self.by_name(package_name)
            if package is not None:
                found = package.find_class(class_name)
                if found is not None:
                    return found
        for package in self._by_uri.values():
            found = package.find_class(qualified_name)
            if found is not None:
                return found
        return None

    def packages(self) -> Iterator[MetaPackage]:
        return iter(self._by_uri.values())

    def __contains__(self, uri: str) -> bool:
        return uri in self._by_uri

    def __len__(self) -> int:
        return len(self._by_uri)


#: The process-wide registry used by serializers unless told otherwise.
global_registry = MetamodelRegistry()

"""OCL-lite: a small OCL-flavoured expression language over model objects.

The DQ_WebRE profile constraints of the paper's Table 3 ("must be related to
at least one element of type WebProcess") are stated in OCL in UML tooling.
This module implements enough of OCL to express and machine-check all of
them, plus the well-formedness rules of WebRE and the kernel:

* literals: integers, reals, strings (single quotes), ``true``/``false``,
  ``null``, sequence literals ``Sequence{1, 2, 3}`` / ``Set{...}``;
* ``self`` and iterator variables;
* property navigation ``a.b.c`` (collections flatten-navigate like OCL);
* collection operations via ``->``: ``size``, ``isEmpty``, ``notEmpty``,
  ``includes``, ``excludes``, ``includesAll``, ``excludesAll``, ``count``,
  ``sum``, ``min``, ``max``, ``first``, ``last``, ``asSet``, ``asSequence``,
  ``flatten``, and the iterators ``exists``, ``forAll``, ``select``,
  ``reject``, ``collect``, ``any``, ``one``, ``isUnique``, ``sortedBy``,
  ``closure`` (transitive, cycle-safe);
* type tests ``oclIsKindOf(Type)`` / ``oclIsTypeOf(Type)`` and
  ``oclAsType(Type)`` (a checked identity in this dynamic kernel);
* operators ``not``, ``and``, ``or``, ``xor``, ``implies``,
  ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``, ``+``, ``-``, ``*``, ``/``,
  ``mod``, ``div``, unary minus;
* ``if <c> then <a> else <b> endif`` and ``let x = e in body``;
* string ops as methods: ``size()``, ``concat(s)``, ``toUpper()``,
  ``toLower()``, ``substring(lo, hi)`` (1-based inclusive, as OCL).

Evaluation is dynamically typed; ``null`` propagates through navigation the
way practical OCL tools do (navigating from null yields null / empty).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .errors import OclEvalError, OclSyntaxError
from .meta import MetaClass
from .objects import MObject, Slot

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "self", "true", "false", "null", "not", "and", "or", "xor", "implies",
    "if", "then", "else", "endif", "let", "in", "div", "mod",
    "Sequence", "Set",
}

_TWO_CHAR = {"->", "<=", ">=", "<>"}
_ONE_CHAR = set("()[]{},.|=<>+-*/:")


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text[i:i + 2] in _TWO_CHAR:
            tokens.append(Token("op", text[i:i + 2], i))
            i += 2
            continue
        if ch == "'":
            j = i + 1
            chunks = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            if j >= n:
                raise OclSyntaxError("unterminated string literal", i, text)
            tokens.append(Token("string", "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n - 1 and text[j] == "." and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                tokens.append(Token("real", float(text[i:j]), i))
            else:
                tokens.append(Token("int", int(text[i:j]), i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word in _KEYWORDS:
                tokens.append(Token("kw", word, i))
            else:
                tokens.append(Token("name", word, i))
            i = j
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        raise OclSyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("eof", None, n))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Node:
    """Base class of AST nodes; subclasses implement :meth:`eval`."""

    def eval(self, env: "Environment"):
        raise NotImplementedError


class Literal(Node):
    def __init__(self, value):
        self.value = value

    def eval(self, env):
        return self.value


class CollectionLiteral(Node):
    def __init__(self, kind: str, items: list[Node]):
        self.kind = kind  # "Sequence" or "Set"
        self.items = items

    def eval(self, env):
        values = [item.eval(env) for item in self.items]
        if self.kind == "Set":
            return _unique(values)
        return values


class Variable(Node):
    def __init__(self, name: str):
        self.name = name

    def eval(self, env):
        return env.lookup(self.name)


class Navigation(Node):
    """``source.name`` — property access, flattening over collections."""

    def __init__(self, source: Node, name: str):
        self.source = source
        self.name = name

    def eval(self, env):
        value = self.source.eval(env)
        return _navigate(value, self.name)


class MethodCall(Node):
    """``source.name(args)`` — dot-call: string ops, oclIsKindOf, etc."""

    def __init__(self, source: Node, name: str, args: list[Node]):
        self.source = source
        self.name = name
        self.args = args

    def eval(self, env):
        receiver = self.source.eval(env)
        name = self.name
        if name in ("oclIsKindOf", "oclIsTypeOf", "oclAsType"):
            metaclass = env.resolve_type(_type_argument(self.args, name))
            return _type_operation(name, receiver, metaclass)
        args = [arg.eval(env) for arg in self.args]
        return _method(receiver, name, args)


class ArrowCall(Node):
    """``source->op(...)`` — collection operation or iterator."""

    ITERATORS = {
        "exists", "forAll", "select", "reject", "collect", "any", "one",
        "isUnique", "sortedBy", "closure",
    }

    def __init__(
        self,
        source: Node,
        name: str,
        iterator: Optional[str],
        body: Optional[Node],
        args: list[Node],
    ):
        self.source = source
        self.name = name
        self.iterator = iterator
        self.body = body
        self.args = args

    def eval(self, env):
        collection = _as_collection(self.source.eval(env))
        if self.name in self.ITERATORS:
            return self._eval_iterator(collection, env)
        args = [arg.eval(env) for arg in self.args]
        return _collection_op(self.name, collection, args)

    def _eval_iterator(self, collection: list, env: "Environment"):
        var = self.iterator or "__it"
        body = self.body
        if body is None:
            raise OclEvalError(f"iterator {self.name}() needs a body expression")

        def each(item):
            return body.eval(env.child({var: item}))

        name = self.name
        if name == "exists":
            return any(_truthy(each(item)) for item in collection)
        if name == "forAll":
            return all(_truthy(each(item)) for item in collection)
        if name == "select":
            return [item for item in collection if _truthy(each(item))]
        if name == "reject":
            return [item for item in collection if not _truthy(each(item))]
        if name == "collect":
            return _flatten_once([each(item) for item in collection])
        if name == "any":
            for item in collection:
                if _truthy(each(item)):
                    return item
            return None
        if name == "one":
            return sum(1 for item in collection if _truthy(each(item))) == 1
        if name == "isUnique":
            seen = []
            for item in collection:
                key = each(item)
                if key in seen:
                    return False
                seen.append(key)
            return True
        if name == "sortedBy":
            return sorted(collection, key=each)
        if name == "closure":
            # transitive closure of the body navigation, cycle-safe
            result: list = []
            frontier = list(collection)
            while frontier:
                item = frontier.pop(0)
                produced = _as_collection(each(item))
                for value in produced:
                    if not any(_ocl_equal(value, seen) for seen in result):
                        result.append(value)
                        frontier.append(value)
            return result
        raise OclEvalError(f"unknown iterator {name!r}")  # pragma: no cover


class Unary(Node):
    def __init__(self, op: str, operand: Node):
        self.op = op
        self.operand = operand

    def eval(self, env):
        value = self.operand.eval(env)
        if self.op == "not":
            return not _truthy(value)
        if self.op == "-":
            _require_number(value, "unary -")
            return -value
        raise OclEvalError(f"unknown unary operator {self.op!r}")  # pragma: no cover


class Binary(Node):
    def __init__(self, op: str, left: Node, right: Node):
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env):
        op = self.op
        if op in ("and", "or", "implies"):
            left = _truthy(self.left.eval(env))
            if op == "and":
                return left and _truthy(self.right.eval(env))
            if op == "or":
                return left or _truthy(self.right.eval(env))
            return (not left) or _truthy(self.right.eval(env))
        left = self.left.eval(env)
        right = self.right.eval(env)
        if op == "xor":
            return _truthy(left) != _truthy(right)
        if op == "=":
            return _ocl_equal(left, right)
        if op == "<>":
            return not _ocl_equal(left, right)
        if op in ("<", "<=", ">", ">="):
            _require_comparable(left, right, op)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                if not (isinstance(left, str) and isinstance(right, str)):
                    raise OclEvalError("'+' cannot mix strings and numbers")
                return left + right
            _require_number(left, "+")
            _require_number(right, "+")
            return left + right
        _require_number(left, op)
        _require_number(right, op)
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise OclEvalError("division by zero")
            return left / right
        if op == "div":
            if right == 0:
                raise OclEvalError("division by zero")
            return int(left // right)
        if op == "mod":
            if right == 0:
                raise OclEvalError("modulo by zero")
            return int(left % right)
        raise OclEvalError(f"unknown operator {op!r}")  # pragma: no cover


class IfThenElse(Node):
    def __init__(self, condition: Node, then: Node, otherwise: Node):
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def eval(self, env):
        if _truthy(self.condition.eval(env)):
            return self.then.eval(env)
        return self.otherwise.eval(env)


class Let(Node):
    def __init__(self, name: str, value: Node, body: Node):
        self.name = name
        self.value = value
        self.body = body

    def eval(self, env):
        return self.body.eval(env.child({self.name: self.value.eval(env)}))


# ---------------------------------------------------------------------------
# Parser (recursive descent, precedence climbing)
# ---------------------------------------------------------------------------


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # grammar precedence, loosest first:
    #   implies < xor < or < and < not < comparison < additive
    #   < multiplicative < unary- < postfix < primary

    def parse(self) -> Node:
        node = self._implies()
        self._expect_kind("eof")
        return node

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _match(self, kind: str, value=None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value) -> Token:
        token = self._match(kind, value)
        if token is None:
            got = self._peek()
            raise OclSyntaxError(
                f"expected {value!r}, got {got.value!r}", got.pos, self.text
            )
        return token

    def _expect_kind(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise OclSyntaxError(
                f"expected {kind}, got {token.value!r}", token.pos, self.text
            )
        return self._advance()

    def _implies(self) -> Node:
        node = self._xor()
        while self._match("kw", "implies"):
            node = Binary("implies", node, self._xor())
        return node

    def _xor(self) -> Node:
        node = self._or()
        while self._match("kw", "xor"):
            node = Binary("xor", node, self._or())
        return node

    def _or(self) -> Node:
        node = self._and()
        while self._match("kw", "or"):
            node = Binary("or", node, self._and())
        return node

    def _and(self) -> Node:
        node = self._not()
        while self._match("kw", "and"):
            node = Binary("and", node, self._not())
        return node

    def _not(self) -> Node:
        if self._match("kw", "not"):
            return Unary("not", self._not())
        return self._comparison()

    def _comparison(self) -> Node:
        node = self._additive()
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return Binary(token.value, node, self._additive())
        return node

    def _additive(self) -> Node:
        node = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                node = Binary(token.value, node, self._multiplicative())
            else:
                return node

    def _multiplicative(self) -> Node:
        node = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                node = Binary(token.value, node, self._unary())
            elif token.kind == "kw" and token.value in ("div", "mod"):
                self._advance()
                node = Binary(token.value, node, self._unary())
            else:
                return node

    def _unary(self) -> Node:
        if self._match("op", "-"):
            return Unary("-", self._unary())
        return self._postfix()

    def _postfix(self) -> Node:
        node = self._primary()
        while True:
            if self._match("op", "."):
                name = self._expect_kind("name").value
                if self._match("op", "("):
                    args = self._arguments()
                    node = MethodCall(node, name, args)
                else:
                    node = Navigation(node, name)
            elif self._match("op", "->"):
                name = self._expect_kind("name").value
                self._expect("op", "(")
                node = self._arrow_call(node, name)
            else:
                return node

    def _arrow_call(self, source: Node, name: str) -> Node:
        if name in ArrowCall.ITERATORS:
            iterator, body = self._iterator_body()
            self._expect("op", ")")
            return ArrowCall(source, name, iterator, body, [])
        args = self._arguments()
        return ArrowCall(source, name, None, None, args)

    def _iterator_body(self) -> tuple[Optional[str], Node]:
        # Either "x | expr" or just "expr" (anonymous iterator not supported
        # inside the body — use an explicit variable for nested iterators).
        checkpoint = self.index
        token = self._peek()
        if token.kind == "name":
            self._advance()
            if self._match("op", "|"):
                return token.value, self._implies()
            self.index = checkpoint
        return None, self._implies()

    def _arguments(self) -> list[Node]:
        args: list[Node] = []
        if self._match("op", ")"):
            return args
        args.append(self._implies())
        while self._match("op", ","):
            args.append(self._implies())
        self._expect("op", ")")
        return args

    def _primary(self) -> Node:
        token = self._peek()
        if token.kind in ("int", "real", "string"):
            self._advance()
            return Literal(token.value)
        if token.kind == "kw":
            if token.value == "true":
                self._advance()
                return Literal(True)
            if token.value == "false":
                self._advance()
                return Literal(False)
            if token.value == "null":
                self._advance()
                return Literal(None)
            if token.value == "self":
                self._advance()
                return Variable("self")
            if token.value == "if":
                return self._if_expression()
            if token.value == "let":
                return self._let_expression()
            if token.value in ("Sequence", "Set"):
                return self._collection_literal()
        if token.kind == "name":
            self._advance()
            return Variable(token.value)
        if self._match("op", "("):
            node = self._implies()
            self._expect("op", ")")
            return node
        raise OclSyntaxError(
            f"unexpected token {token.value!r}", token.pos, self.text
        )

    def _if_expression(self) -> Node:
        self._expect("kw", "if")
        condition = self._implies()
        self._expect("kw", "then")
        then = self._implies()
        self._expect("kw", "else")
        otherwise = self._implies()
        self._expect("kw", "endif")
        return IfThenElse(condition, then, otherwise)

    def _let_expression(self) -> Node:
        self._expect("kw", "let")
        name = self._expect_kind("name").value
        self._expect("op", "=")
        value = self._implies()
        self._expect("kw", "in")
        body = self._implies()
        return Let(name, value, body)

    def _collection_literal(self) -> Node:
        kind = self._advance().value  # Sequence / Set
        self._expect("op", "{")
        items: list[Node] = []
        if not self._match("op", "}"):
            items.append(self._implies())
            while self._match("op", ","):
                items.append(self._implies())
            self._expect("op", "}")
        return CollectionLiteral(kind, items)


# ---------------------------------------------------------------------------
# Evaluation helpers
# ---------------------------------------------------------------------------


class Environment:
    """Variable bindings plus the type-resolution context for OCL type tests."""

    def __init__(self, bindings: dict, type_resolver=None, parent=None):
        self._bindings = bindings
        self._type_resolver = type_resolver
        self._parent = parent

    def lookup(self, name: str):
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise OclEvalError(f"unbound variable {name!r}")

    def child(self, bindings: dict) -> "Environment":
        return Environment(bindings, self._type_resolver, self)

    def resolve_type(self, name: str) -> MetaClass:
        env: Optional[Environment] = self
        while env is not None:
            if env._type_resolver is not None:
                metaclass = env._type_resolver(name)
                if metaclass is not None:
                    return metaclass
            env = env._parent
        raise OclEvalError(f"unknown type {name!r} in OCL type operation")


def _truthy(value) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    raise OclEvalError(f"expected a Boolean, got {value!r}")


def _require_number(value, op: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise OclEvalError(f"operator {op!r} needs numbers, got {value!r}")


def _require_comparable(left, right, op: str) -> None:
    if isinstance(left, str) and isinstance(right, str):
        return
    _require_number(left, op)
    _require_number(right, op)


def _ocl_equal(left, right) -> bool:
    if isinstance(left, Slot):
        left = list(left)
    if isinstance(right, Slot):
        right = list(right)
    if isinstance(left, MObject) or isinstance(right, MObject):
        return left is right
    return left == right


def _as_collection(value) -> list:
    if value is None:
        return []
    if isinstance(value, Slot):
        return list(value)
    if isinstance(value, (list, tuple, set)):
        return list(value)
    return [value]


def _unique(values: list) -> list:
    result: list = []
    for value in values:
        if not any(_ocl_equal(value, seen) for seen in result):
            result.append(value)
    return result


def _flatten_once(values: list) -> list:
    flattened: list = []
    for value in values:
        if isinstance(value, (list, tuple, Slot)):
            flattened.extend(value)
        else:
            flattened.append(value)
    return flattened


def _navigate(value, name: str):
    if value is None:
        return None
    if isinstance(value, (list, tuple, Slot)):
        return _flatten_once([_navigate(item, name) for item in value if item is not None])
    if isinstance(value, MObject):
        if not value.has_feature(name):
            raise OclEvalError(
                f"{value.metaclass.name} has no property {name!r}"
            )
        result = value.get(name)
        if isinstance(result, Slot):
            return list(result)
        return result
    if isinstance(value, dict):
        # Plain records navigate like objects: absent keys read as null,
        # so expressions stay total over partially filled submissions.
        return value.get(name)
    raise OclEvalError(f"cannot navigate {name!r} from {value!r}")


def _type_argument(args: list[Node], operation: str) -> str:
    if len(args) != 1 or not isinstance(args[0], Variable):
        raise OclEvalError(f"{operation} expects a single type name argument")
    return args[0].name


def _type_operation(name: str, receiver, metaclass: MetaClass):
    if name == "oclIsKindOf":
        return isinstance(receiver, MObject) and receiver.is_instance_of(metaclass)
    if name == "oclIsTypeOf":
        return isinstance(receiver, MObject) and receiver.metaclass is metaclass
    # oclAsType: checked identity cast
    if not (isinstance(receiver, MObject) and receiver.is_instance_of(metaclass)):
        raise OclEvalError(
            f"oclAsType: value {receiver!r} is not a {metaclass.name}"
        )
    return receiver


def _method(receiver, name: str, args: list):
    if isinstance(receiver, str):
        return _string_method(receiver, name, args)
    if isinstance(receiver, (int, float)) and not isinstance(receiver, bool):
        return _number_method(receiver, name, args)
    raise OclEvalError(f"no method {name!r} on {receiver!r}")


def _string_method(receiver: str, name: str, args: list):
    if name == "size" and not args:
        return len(receiver)
    if name == "concat" and len(args) == 1:
        return receiver + str(args[0])
    if name == "toUpper" and not args:
        return receiver.upper()
    if name == "toLower" and not args:
        return receiver.lower()
    if name == "substring" and len(args) == 2:
        lo, hi = args
        if not (1 <= lo <= hi <= len(receiver)):
            raise OclEvalError(
                f"substring({lo}, {hi}) out of range for length {len(receiver)}"
            )
        return receiver[lo - 1:hi]
    if name == "indexOf" and len(args) == 1:
        return receiver.find(str(args[0])) + 1  # OCL is 1-based; 0 = absent
    raise OclEvalError(f"unknown string method {name!r}")


def _number_method(receiver, name: str, args: list):
    if name == "abs" and not args:
        return abs(receiver)
    if name == "floor" and not args:
        return int(receiver // 1)
    if name == "round" and not args:
        return round(receiver)
    if name == "max" and len(args) == 1:
        return max(receiver, args[0])
    if name == "min" and len(args) == 1:
        return min(receiver, args[0])
    raise OclEvalError(f"unknown number method {name!r}")


def _collection_op(name: str, collection: list, args: list):
    if name == "size":
        return len(collection)
    if name == "isEmpty":
        return len(collection) == 0
    if name == "notEmpty":
        return len(collection) > 0
    if name == "includes":
        return any(_ocl_equal(item, args[0]) for item in collection)
    if name == "excludes":
        return not any(_ocl_equal(item, args[0]) for item in collection)
    if name == "includesAll":
        other = _as_collection(args[0])
        return all(
            any(_ocl_equal(item, wanted) for item in collection) for wanted in other
        )
    if name == "excludesAll":
        other = _as_collection(args[0])
        return not any(
            any(_ocl_equal(item, banned) for item in collection) for banned in other
        )
    if name == "count":
        return sum(1 for item in collection if _ocl_equal(item, args[0]))
    if name == "sum":
        total = 0
        for item in collection:
            _require_number(item, "sum")
            total += item
        return total
    if name == "min":
        if not collection:
            raise OclEvalError("min() on empty collection")
        return min(collection)
    if name == "max":
        if not collection:
            raise OclEvalError("max() on empty collection")
        return max(collection)
    if name == "first":
        return collection[0] if collection else None
    if name == "last":
        return collection[-1] if collection else None
    if name == "at":
        index = args[0]
        if not (1 <= index <= len(collection)):
            raise OclEvalError(f"at({index}) out of range 1..{len(collection)}")
        return collection[index - 1]
    if name == "asSet":
        return _unique(collection)
    if name == "asSequence":
        return list(collection)
    if name == "flatten":
        return _flatten_once(collection)
    if name == "including":
        return collection + [args[0]]
    if name == "excluding":
        return [item for item in collection if not _ocl_equal(item, args[0])]
    if name == "union":
        return collection + _as_collection(args[0])
    if name == "intersection":
        other = _as_collection(args[0])
        return [
            item for item in collection
            if any(_ocl_equal(item, o) for o in other)
        ]
    raise OclEvalError(f"unknown collection operation {name!r}")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


class OclExpression:
    """A parsed, reusable OCL-lite expression.

    >>> expr = OclExpression("self.name.size() > 0")
    >>> # expr.evaluate(some_object)
    """

    def __init__(self, text: str, type_resolver=None):
        self.text = text
        self._ast = Parser(text).parse()
        self._type_resolver = type_resolver

    def evaluate(self, context, variables: Optional[dict] = None, type_resolver=None):
        bindings = {"self": context}
        if variables:
            bindings.update(variables)
        resolver = type_resolver or self._type_resolver
        return self._ast.eval(Environment(bindings, resolver))

    def __repr__(self) -> str:
        return f"OclExpression({self.text!r})"


def parse(text: str) -> OclExpression:
    """Parse ``text``; raises :class:`OclSyntaxError` on malformed input."""
    return OclExpression(text)


def evaluate(
    text: str,
    context,
    variables: Optional[dict] = None,
    type_resolver=None,
):
    """Parse and evaluate in one call (convenience for one-shot checks)."""
    return OclExpression(text).evaluate(context, variables, type_resolver)


def type_resolver_for(*packages) -> "callable":
    """Build a type resolver that looks class names up in ``packages``."""

    def resolve(name: str) -> Optional[MetaClass]:
        for package in packages:
            found = package.find_class(name)
            if found is not None:
                return found
        return None

    return resolve

"""Model diff and patch: compare two trees and apply the changes.

Objects are matched by ``id`` (serialization preserves ids, so diffing a
model against a round-tripped or edited copy matches naturally).  The diff is
a list of :class:`Change` records:

* ``AttributeChange`` — a single-valued attribute differs;
* ``AttributeListChange`` — a many-valued attribute's items differ;
* ``ReferenceChange`` — a reference points elsewhere (targets compared by id);
* ``ObjectAdded`` / ``ObjectRemoved`` — an object exists on only one side.

:func:`apply_diff` patches the *left* model to match the right one; after a
successful apply, ``diff(left, right)`` is empty (a property the test suite
checks with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import ModelError
from .objects import MObject, Slot
from .serialization import jsonio
from .visitor import walk


@dataclass(frozen=True)
class Change:
    """Base record; ``object_id`` identifies the element concerned."""

    object_id: str

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AttributeChange(Change):
    feature: str
    old: object
    new: object

    def describe(self) -> str:
        return f"{self.object_id}.{self.feature}: {self.old!r} -> {self.new!r}"


@dataclass(frozen=True)
class AttributeListChange(Change):
    feature: str
    old: tuple
    new: tuple

    def describe(self) -> str:
        return (
            f"{self.object_id}.{self.feature}: "
            f"{list(self.old)!r} -> {list(self.new)!r}"
        )


@dataclass(frozen=True)
class ReferenceChange(Change):
    feature: str
    old_ids: tuple
    new_ids: tuple

    def describe(self) -> str:
        return (
            f"{self.object_id}.{self.feature}: refs "
            f"{list(self.old_ids)} -> {list(self.new_ids)}"
        )


@dataclass(frozen=True)
class ObjectAdded(Change):
    metaclass_name: str
    container_id: Optional[str]
    feature: Optional[str]

    def describe(self) -> str:
        where = (
            f" under {self.container_id}.{self.feature}"
            if self.container_id
            else ""
        )
        return f"+ {self.metaclass_name} {self.object_id}{where}"


@dataclass(frozen=True)
class ObjectRemoved(Change):
    metaclass_name: str

    def describe(self) -> str:
        return f"- {self.metaclass_name} {self.object_id}"


def _index(root: MObject) -> dict[str, MObject]:
    return {obj.id: obj for obj in walk(root)}


def diff(left: MObject, right: MObject) -> list[Change]:
    """Changes that would turn ``left`` into ``right``."""
    left_index = _index(left)
    right_index = _index(right)
    changes: list[Change] = []

    for obj_id, right_obj in right_index.items():
        if obj_id not in left_index:
            container = right_obj.container
            feature = right_obj.containing_feature
            changes.append(
                ObjectAdded(
                    obj_id,
                    right_obj.metaclass.qualified_name(),
                    container.id if container is not None else None,
                    feature.name if feature is not None else None,
                )
            )
    for obj_id, left_obj in left_index.items():
        if obj_id not in right_index:
            changes.append(
                ObjectRemoved(obj_id, left_obj.metaclass.qualified_name())
            )

    for obj_id, left_obj in left_index.items():
        right_obj = right_index.get(obj_id)
        if right_obj is None:
            continue
        if left_obj.metaclass.qualified_name() != right_obj.metaclass.qualified_name():
            changes.append(ObjectRemoved(obj_id, left_obj.metaclass.qualified_name()))
            container = right_obj.container
            feature = right_obj.containing_feature
            changes.append(
                ObjectAdded(
                    obj_id,
                    right_obj.metaclass.qualified_name(),
                    container.id if container is not None else None,
                    feature.name if feature is not None else None,
                )
            )
            continue
        changes.extend(_diff_features(left_obj, right_obj))
    return changes


def _diff_features(left_obj: MObject, right_obj: MObject) -> list[Change]:
    changes: list[Change] = []
    metaclass = left_obj.metaclass
    for name in metaclass.all_attributes():
        left_value = left_obj.get(name)
        right_value = right_obj.get(name)
        if isinstance(left_value, Slot):
            left_items = tuple(left_value)
            right_items = tuple(right_value)
            if left_items != right_items:
                changes.append(
                    AttributeListChange(left_obj.id, name, left_items, right_items)
                )
        elif left_value != right_value:
            changes.append(
                AttributeChange(left_obj.id, name, left_value, right_value)
            )
    for name, reference in metaclass.all_references().items():
        if reference.containment:
            continue  # containment differences surface as added/removed objects
        left_value = left_obj.get(name)
        right_value = right_obj.get(name)
        left_ids = _ref_ids(left_value)
        right_ids = _ref_ids(right_value)
        if left_ids != right_ids:
            changes.append(ReferenceChange(left_obj.id, name, left_ids, right_ids))
    return changes


def _ref_ids(value) -> tuple:
    if isinstance(value, Slot):
        return tuple(item.id for item in value)
    if value is None:
        return ()
    return (value.id,)


def apply_diff(left: MObject, right: MObject, changes: list[Change]) -> MObject:
    """Patch ``left`` in place so that ``diff(left, right)`` becomes empty.

    ``right`` supplies the payload for additions (added subtrees are copied
    from it).  Returns ``left``.
    """
    left_index = _index(left)
    right_index = _index(right)

    # Removals first (deepest first so containers empty out cleanly).
    removals = [c for c in changes if isinstance(c, ObjectRemoved)]
    removal_objects = [
        left_index[c.object_id] for c in removals if c.object_id in left_index
    ]
    removal_objects.sort(key=lambda obj: -len(obj._ancestors()))
    for obj in removal_objects:
        obj.delete()
        left_index.pop(obj.id, None)

    # Additions next (shallowest first so parents exist).
    additions = [c for c in changes if isinstance(c, ObjectAdded)]

    def depth(change: ObjectAdded) -> int:
        return len(right_index[change.object_id]._ancestors())

    copied_pairs: list[tuple[MObject, MObject]] = []
    for change in sorted(additions, key=depth):
        if change.object_id in left_index:
            continue  # added as part of a copied subtree
        source = right_index[change.object_id]
        clone = _copy_subtree(source, left_index, copied_pairs)
        if change.container_id is None:
            raise ModelError(
                f"cannot add a second root object {change.object_id}"
            )
        container = left_index.get(change.container_id)
        if container is None:
            raise ModelError(
                f"container {change.container_id} not present when adding "
                f"{change.object_id}"
            )
        slot = container.get(change.feature)
        if isinstance(slot, Slot):
            slot.append(clone)
        else:
            container.set(change.feature, clone)

    # Now that every added object exists in the left model, wire the cross
    # references of the copied subtrees (they may point anywhere in the tree).
    for clone, source in copied_pairs:
        for name, reference in source.metaclass.all_references().items():
            if reference.containment:
                continue
            value = source.get(name)
            if isinstance(value, Slot):
                targets = [_map_target(item, left_index) for item in value]
                clone.set(name, [t for t in targets if t is not None])
            elif value is not None:
                clone.set(name, _map_target(value, left_index))

    # Feature updates last, now that both sides' objects exist.
    for change in changes:
        if isinstance(change, AttributeChange):
            left_index[change.object_id].set(change.feature, change.new)
        elif isinstance(change, AttributeListChange):
            left_index[change.object_id].set(change.feature, list(change.new))
        elif isinstance(change, ReferenceChange):
            obj = left_index[change.object_id]
            reference = obj.metaclass.all_references()[change.feature]
            targets = [left_index[ref_id] for ref_id in change.new_ids]
            if reference.many:
                obj.set(change.feature, targets)
            else:
                obj.set(change.feature, targets[0] if targets else None)
    return left


def _copy_subtree(
    source: MObject,
    left_index: dict[str, MObject],
    copied_pairs: list[tuple[MObject, MObject]],
) -> MObject:
    """Structurally copy ``source`` (attributes + containment children).

    Cross references are intentionally left unset — they are wired in a later
    pass once every added object exists — because an added subtree may point
    at objects outside itself.  Every created object is registered in
    ``left_index`` under its preserved id.
    """
    clone = source.metaclass.create()
    object.__setattr__(clone, "id", source.id)
    left_index[clone.id] = clone
    copied_pairs.append((clone, source))
    for name in source.metaclass.all_attributes():
        value = source.get(name)
        if isinstance(value, Slot):
            clone.set(name, list(value))
        else:
            clone.set(name, value)
    for name, reference in source.metaclass.all_references().items():
        if not reference.containment:
            continue
        value = source.get(name)
        if isinstance(value, Slot):
            children = [
                _copy_subtree(child, left_index, copied_pairs) for child in value
            ]
            clone.set(name, children)
        elif value is not None:
            clone.set(name, _copy_subtree(value, left_index, copied_pairs))
    return clone


def _map_target(target: MObject, left_index: dict[str, MObject]) -> Optional[MObject]:
    return left_index.get(target.id)


def clone_tree(root: MObject, fresh_ids: bool = False) -> MObject:
    """Deep-copy a containment tree.

    By default ids are preserved so the clone diffs cleanly against the
    original.  ``fresh_ids=True`` renumbers every object — use it when the
    copy must coexist with the original as an *independent* model (e.g.
    duplicating a template requirements model for a second project).
    """
    document = jsonio.to_dict(root)
    registry = _registry_for(root)
    clone = jsonio.from_dict(document, registry)
    if fresh_ids:
        from .objects import _next_id

        for obj in walk(clone):
            object.__setattr__(obj, "id", _next_id())
    return clone


def _registry_for(root: MObject):
    from .registry import MetamodelRegistry, global_registry

    package = root.metaclass.package
    while package is not None and package.parent is not None:
        package = package.parent
    if package is None:
        return global_registry
    registry = MetamodelRegistry()
    registry.register(package)
    for existing in global_registry.packages():
        if existing.uri != package.uri:
            registry.register(existing)
    return registry

"""Model objects: dynamic instances of :class:`~repro.core.meta.MetaClass`.

An :class:`MObject` stores one *slot* per structural feature of its metaclass.
Single-valued slots hold a value or ``None``; many-valued slots hold a
:class:`Slot` list-like collection.  The kernel maintains two global model
invariants automatically:

* **containment tree** — an object has at most one container; putting it into
  another containment slot *moves* it, and cycles are rejected;
* **opposite symmetry** — when a reference has an opposite, mutating either
  end updates the other.

Mutations emit :class:`~repro.core.events.Notification` events to observers
registered on the object or any of its containers, which the diff engine and
the runtime DQ interceptors build on.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from .errors import (
    ContainmentError,
    FrozenModelError,
    MultiplicityError,
    TypeCheckError,
    UnknownFeatureError,
)
from .events import ADD, MOVE, REMOVE, SET, UNSET, Notification
from .meta import MANY, MetaAttribute, MetaClass, MetaFeature, MetaReference

_id_counter = itertools.count(1)


def _next_id() -> str:
    return f"o{next(_id_counter)}"


class Slot:
    """The mutable collection held by a many-valued feature of one object.

    Behaves like a list (index, iterate, ``len``, ``in``) but funnels every
    mutation through the owning object so type checks, containment moves,
    opposite updates and notifications all happen.
    """

    def __init__(self, owner: "MObject", feature: MetaFeature):
        self._owner = owner
        self._feature = feature
        self._items: list = []

    # -- read access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __contains__(self, item) -> bool:
        return item in self._items

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, Slot):
            return self._items == other._items
        if isinstance(other, list):
            return self._items == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"Slot({self._feature.name}={self._items!r})"

    def index(self, item) -> int:
        return self._items.index(item)

    # -- mutation ----------------------------------------------------------

    def append(self, item) -> None:
        self.insert(len(self._items), item)

    def add(self, item) -> None:
        """Alias of :meth:`append`, reading better for set-like features."""
        self.append(item)

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def insert(self, index: int, item) -> None:
        owner = self._owner
        owner._check_mutable()
        feature = self._feature
        owner._check_feature_value(feature, item)
        upper = feature.upper
        if upper != MANY and len(self._items) >= upper:
            raise MultiplicityError(
                f"{feature.qualified_name()}: upper bound {upper} reached"
            )
        if isinstance(feature, MetaReference):
            if item in self._items:
                return  # references behave like ordered sets
            owner._attach_reference_target(feature, item)
        self._items.insert(index, item)
        owner._notify(Notification(ADD, owner, feature.name, None, item))

    def remove(self, item) -> None:
        owner = self._owner
        owner._check_mutable()
        if item not in self._items:
            raise ValueError(f"{item!r} not in slot {self._feature.name!r}")
        self._items.remove(item)
        if isinstance(self._feature, MetaReference):
            owner._detach_reference_target(self._feature, item)
        owner._notify(Notification(REMOVE, owner, self._feature.name, item, None))

    def discard(self, item) -> None:
        if item in self._items:
            self.remove(item)

    def clear(self) -> None:
        for item in list(self._items):
            self.remove(item)

    def pop(self, index: int = -1):
        item = self._items[index]
        self.remove(item)
        return item

    def _silent_remove(self, item) -> None:
        """Remove without touching opposites (used by the kernel itself)."""
        self._items.remove(item)

    def _silent_append(self, item) -> None:
        self._items.append(item)


class MObject:
    """A model element: one instance of a :class:`MetaClass`.

    Features are accessed with :meth:`get` / :meth:`set` or, for convenience,
    as plain Python attributes (``order.customer`` works whenever ``customer``
    is a feature of the metaclass and does not collide with an MObject
    method).
    """

    _RESERVED = ()

    def __init__(self, metaclass: MetaClass):
        object.__setattr__(self, "metaclass", metaclass)
        object.__setattr__(self, "id", _next_id())
        object.__setattr__(self, "_slots", {})
        object.__setattr__(self, "_container", None)
        object.__setattr__(self, "_containing_feature", None)
        object.__setattr__(self, "_observers", [])
        object.__setattr__(self, "_frozen", False)
        slots = self._slots
        for name, attribute in metaclass.all_attributes().items():
            if attribute.many:
                slots[name] = Slot(self, attribute)
            else:
                slots[name] = attribute.default
        for name, reference in metaclass.all_references().items():
            if reference.many:
                slots[name] = Slot(self, reference)
            else:
                slots[name] = None

    # -- feature access -------------------------------------------------------

    def feature(self, name: str) -> MetaFeature:
        feature = self.metaclass.find_feature(name)
        if feature is None:
            raise UnknownFeatureError(
                f"{self.metaclass.name} has no feature {name!r}"
            )
        return feature

    def has_feature(self, name: str) -> bool:
        return self.metaclass.find_feature(name) is not None

    def get(self, name: str):
        self.feature(name)  # raises on unknown names
        return self._slots[name]

    def set(self, name: str, value) -> "MObject":
        """Set a feature; many-valued features accept an iterable (replaces).

        Returns ``self`` to allow chained initialization.
        """
        self._check_mutable()
        feature = self.feature(name)
        if feature.many:
            slot: Slot = self._slots[name]
            slot.clear()
            if value is not None:
                slot.extend(value)
            return self
        old = self._slots[name]
        if value is old:
            return self
        self._check_feature_value(feature, value)
        if isinstance(feature, MetaReference):
            if old is not None:
                self._detach_reference_target(feature, old)
            if value is not None:
                self._attach_reference_target(feature, value)
        self._slots[name] = value
        kind = SET if value is not None else UNSET
        self._notify(Notification(kind, self, name, old, value))
        return self

    def unset(self, name: str) -> "MObject":
        feature = self.feature(name)
        if feature.many:
            self._slots[name].clear()
            return self
        return self.set(name, None)

    def __getattr__(self, name: str):
        # Only called when normal attribute lookup fails.
        slots = object.__getattribute__(self, "_slots")
        if name in slots:
            return slots[name]
        metaclass = object.__getattribute__(self, "metaclass")
        raise UnknownFeatureError(f"{metaclass.name} has no feature {name!r}")

    def __setattr__(self, name: str, value) -> None:
        if name.startswith("_") or name in ("metaclass", "id"):
            object.__setattr__(self, name, value)
            return
        self.set(name, value)

    # -- checking ------------------------------------------------------------

    def _check_feature_value(self, feature: MetaFeature, value) -> None:
        if value is None:
            return
        if isinstance(feature, MetaAttribute):
            feature.check_value(value)
        else:
            assert isinstance(feature, MetaReference)
            feature.check_value(value)

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenModelError(
                f"{self.metaclass.name} {self.id} is frozen read-only"
            )

    def freeze(self, recursive: bool = True) -> "MObject":
        """Make this object (and by default its contents) read-only."""
        object.__setattr__(self, "_frozen", True)
        if recursive:
            for child in self.owned_elements():
                child.freeze(recursive=True)
        return self

    def unfreeze(self, recursive: bool = True) -> "MObject":
        object.__setattr__(self, "_frozen", False)
        if recursive:
            for child in self.owned_elements():
                child.unfreeze(recursive=True)
        return self

    # -- containment -------------------------------------------------------------

    @property
    def container(self) -> Optional["MObject"]:
        """The object owning ``self`` through a containment reference."""
        return self._container

    @property
    def containing_feature(self) -> Optional[MetaReference]:
        return self._containing_feature

    def root(self) -> "MObject":
        """The top of this object's containment tree (``self`` if unowned)."""
        obj = self
        while obj._container is not None:
            obj = obj._container
        return obj

    def owned_elements(self) -> Iterator["MObject"]:
        """Direct children via containment references."""
        for name, reference in self.metaclass.all_references().items():
            if not reference.containment:
                continue
            value = self._slots[name]
            if isinstance(value, Slot):
                yield from value
            elif value is not None:
                yield value

    def all_contents(self) -> Iterator["MObject"]:
        """Every transitively contained object, depth-first pre-order."""
        for child in self.owned_elements():
            yield child
            yield from child.all_contents()

    def _attach_reference_target(self, feature: MetaReference, value: "MObject") -> None:
        if feature.containment:
            if value is self or value in self._ancestors():
                raise ContainmentError(
                    f"adding {value.id} under {self.id} would create a "
                    "containment cycle"
                )
            old_container = value._container
            if old_container is not None:
                old_container._release_child(value)
            object.__setattr__(value, "_container", self)
            object.__setattr__(value, "_containing_feature", feature)
            if old_container is not None:
                self._notify(Notification(MOVE, value, feature.name, old_container, self))
        if feature.opposite is not None:
            value._install_opposite(feature.opposite, self)

    def _detach_reference_target(self, feature: MetaReference, value: "MObject") -> None:
        if feature.containment and value._container is self:
            object.__setattr__(value, "_container", None)
            object.__setattr__(value, "_containing_feature", None)
        if feature.opposite is not None:
            value._remove_opposite(feature.opposite, self)

    def _install_opposite(self, opposite: MetaReference, source: "MObject") -> None:
        slot = self._slots[opposite.name]
        if isinstance(slot, Slot):
            if source not in slot:
                slot._silent_append(source)
        elif slot is not source:
            if slot is not None:
                # Steal: drop the previous one-to-one partner's pointer.
                slot._drop_pointer_to(self, opposite)
            self._slots[opposite.name] = source

    def _remove_opposite(self, opposite: MetaReference, source: "MObject") -> None:
        slot = self._slots[opposite.name]
        if isinstance(slot, Slot):
            if source in slot:
                slot._silent_remove(source)
        elif slot is source:
            self._slots[opposite.name] = None

    def _drop_pointer_to(self, target: "MObject", reference: MetaReference) -> None:
        """Remove ``target`` from the inverse of ``reference`` silently."""
        inverse = reference.opposite
        if inverse is None:
            return
        slot = self._slots.get(inverse.name)
        if isinstance(slot, Slot):
            if target in slot:
                slot._silent_remove(target)
        elif slot is target:
            self._slots[inverse.name] = None

    def _release_child(self, child: "MObject") -> None:
        """Remove ``child`` from whichever containment slot holds it."""
        feature = child._containing_feature
        if feature is None:
            return
        slot = self._slots.get(feature.name)
        if isinstance(slot, Slot):
            if child in slot:
                slot._silent_remove(child)
        elif slot is child:
            self._slots[feature.name] = None
        object.__setattr__(child, "_container", None)
        object.__setattr__(child, "_containing_feature", None)

    def _ancestors(self) -> list["MObject"]:
        chain = []
        obj = self._container
        while obj is not None:
            chain.append(obj)
            obj = obj._container
        return chain

    def delete(self) -> None:
        """Detach from the container and clear incoming opposite pointers."""
        self._check_mutable()
        if self._container is not None:
            feature = self._containing_feature
            container = self._container
            slot = container._slots.get(feature.name)
            if isinstance(slot, Slot):
                slot.remove(self)
            else:
                container.set(feature.name, None)
        for name, reference in self.metaclass.all_references().items():
            if reference.opposite is None and not reference.containment:
                continue
            value = self._slots[name]
            if isinstance(value, Slot):
                value.clear()
            elif value is not None:
                self.set(name, None)

    # -- validation helpers ---------------------------------------------------

    def missing_required_features(self) -> list[MetaFeature]:
        """Features whose lower bound is not met (used by the validator)."""
        missing = []
        for name, feature in self.metaclass.all_attributes().items():
            if not self._lower_bound_met(feature, self._slots[name]):
                missing.append(feature)
        for name, feature in self.metaclass.all_references().items():
            if not self._lower_bound_met(feature, self._slots[name]):
                missing.append(feature)
        return missing

    @staticmethod
    def _lower_bound_met(feature: MetaFeature, value) -> bool:
        if feature.lower == 0:
            return True
        if isinstance(value, Slot):
            return len(value) >= feature.lower
        return value is not None

    # -- events -----------------------------------------------------------------

    def subscribe(self, observer) -> None:
        """Register ``observer(notification)`` for events in this subtree."""
        self._observers.append(observer)

    def unsubscribe(self, observer) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def _notify(self, notification: Notification) -> None:
        obj = self
        while obj is not None:
            for observer in list(obj._observers):
                observer(notification)
            obj = obj._container

    # -- misc ------------------------------------------------------------------

    def is_instance_of(self, metaclass: MetaClass) -> bool:
        return self.metaclass.conforms_to(metaclass)

    def label(self) -> str:
        """A human-readable label: the ``name`` feature when present."""
        if self.has_feature("name"):
            name = self._slots.get("name")
            if isinstance(name, str) and name:
                return name
        return self.id

    def __repr__(self) -> str:
        return f"<{self.metaclass.name} {self.label()!r} ({self.id})>"

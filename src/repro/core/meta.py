"""The metamodeling kernel: a small, MOF-flavoured meta-layer.

This module lets you *define metamodels* — the same role Ecore/MOF plays for
EMF-based tools such as the ones the DQ_WebRE paper builds on.  A metamodel is
a :class:`MetaPackage` containing :class:`MetaClass` definitions, each with
typed :class:`MetaAttribute` and :class:`MetaReference` features, plus
:class:`MetaEnum` enumerations.  Instances of metaclasses are
:class:`repro.core.objects.MObject` values created through
:meth:`MetaClass.create`.

Design notes
------------
* Reference targets may be given as *strings* and are resolved lazily when the
  owning package is :meth:`MetaPackage.resolve`-d; this permits mutually
  recursive metamodels (WebRE's ``Browse.source: Node`` / ``Node`` defined
  later) without forward-declaration gymnastics.
* ``upper=MANY`` (i.e. ``-1``) models the UML ``*`` multiplicity.
* Opposite references are wired symmetrically: declaring an opposite on one
  end is enough; resolution installs the back-pointer on the other end.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from .errors import (
    DuplicateFeatureError,
    InvalidMultiplicityError,
    MetamodelError,
    TypeCheckError,
    UnresolvedTypeError,
)

#: Sentinel for an unbounded upper multiplicity (UML ``*``).
MANY = -1


class MetaType:
    """Abstract base of everything usable as the *type* of a feature."""

    def __init__(self, name: str):
        if not name:
            raise MetamodelError("a MetaType needs a non-empty name")
        self.name = name

    def accepts(self, value) -> bool:
        """Return True when ``value`` conforms to this type."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PrimitiveType(MetaType):
    """A primitive data type backed by a Python predicate.

    The module-level singletons :data:`STRING`, :data:`INTEGER`,
    :data:`BOOLEAN`, :data:`REAL`, :data:`ANY` cover everything the library
    needs; you can define more for domain-specific metamodels.
    """

    def __init__(self, name: str, predicate: Callable[[object], bool]):
        super().__init__(name)
        self._predicate = predicate

    def accepts(self, value) -> bool:
        return self._predicate(value)


def _is_string(value) -> bool:
    return isinstance(value, str)


def _is_integer(value) -> bool:
    # bool is an int subclass but must not silently pass for INTEGER slots.
    return isinstance(value, int) and not isinstance(value, bool)


def _is_boolean(value) -> bool:
    return isinstance(value, bool)


def _is_real(value) -> bool:
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and not (
        isinstance(value, float) and math.isnan(value)
    )


STRING = PrimitiveType("String", _is_string)
INTEGER = PrimitiveType("Integer", _is_integer)
BOOLEAN = PrimitiveType("Boolean", _is_boolean)
REAL = PrimitiveType("Real", _is_real)
ANY = PrimitiveType("Any", lambda value: True)

#: The built-in primitives, keyed by their metamodel-facing names.
PRIMITIVES = {t.name: t for t in (STRING, INTEGER, BOOLEAN, REAL, ANY)}


class MetaEnum(MetaType):
    """An enumeration type; values are its literal strings.

    >>> severity = MetaEnum("Severity", ["low", "high"])
    >>> severity.accepts("low")
    True
    >>> severity.accepts("medium")
    False
    """

    def __init__(self, name: str, literals: Sequence[str], doc: str = ""):
        super().__init__(name)
        literals = list(literals)
        if not literals:
            raise MetamodelError(f"enum {name!r} needs at least one literal")
        if len(set(literals)) != len(literals):
            raise MetamodelError(f"enum {name!r} has duplicate literals")
        self.literals = literals
        self.doc = doc

    def accepts(self, value) -> bool:
        return value in self.literals

    def __iter__(self) -> Iterator[str]:
        return iter(self.literals)

    @property
    def default(self) -> str:
        """The first literal, used when a mandatory slot has no default."""
        return self.literals[0]


class MetaFeature:
    """Common behaviour of attributes and references.

    ``lower``/``upper`` encode multiplicity as in UML: ``0..1`` optional
    single-valued, ``1..1`` mandatory, ``0..*`` any number, ``1..*`` at least
    one.  ``upper`` may be :data:`MANY` or any positive bound.
    """

    def __init__(
        self,
        name: str,
        lower: int = 0,
        upper: int = 1,
        doc: str = "",
        derived: bool = False,
    ):
        if not name or not name.isidentifier():
            raise MetamodelError(f"feature name {name!r} is not an identifier")
        if lower < 0:
            raise InvalidMultiplicityError(f"{name}: lower bound {lower} < 0")
        if upper != MANY and upper < 1:
            raise InvalidMultiplicityError(f"{name}: upper bound {upper} < 1")
        if upper != MANY and lower > upper:
            raise InvalidMultiplicityError(
                f"{name}: lower {lower} exceeds upper {upper}"
            )
        self.name = name
        self.lower = lower
        self.upper = upper
        self.doc = doc
        self.derived = derived
        self.owner: Optional[MetaClass] = None

    @property
    def many(self) -> bool:
        """True for a collection-valued feature (``upper`` > 1 or ``*``)."""
        return self.upper == MANY or self.upper > 1

    @property
    def required(self) -> bool:
        return self.lower >= 1

    def multiplicity(self) -> str:
        """Render the multiplicity the way UML diagrams do, e.g. ``1..*``."""
        upper = "*" if self.upper == MANY else str(self.upper)
        return f"{self.lower}..{upper}"

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return f"<{type(self).__name__} {owner}.{self.name} [{self.multiplicity()}]>"


class MetaAttribute(MetaFeature):
    """A data-valued structural feature (primitive or enum typed)."""

    def __init__(
        self,
        name: str,
        type: MetaType = STRING,
        lower: int = 0,
        upper: int = 1,
        default=None,
        doc: str = "",
        derived: bool = False,
    ):
        super().__init__(name, lower, upper, doc, derived)
        if isinstance(type, MetaClass):
            raise MetamodelError(
                f"attribute {name!r} cannot be typed by a MetaClass; "
                "use MetaReference"
            )
        self.type = type
        if default is not None and not self.many and not type.accepts(default):
            raise TypeCheckError(
                f"default {default!r} does not conform to {type.name} "
                f"for attribute {name!r}"
            )
        self.default = default

    def check_value(self, value) -> None:
        """Raise :class:`TypeCheckError` unless ``value`` conforms."""
        if value is None:
            return
        if not self.type.accepts(value):
            raise TypeCheckError(
                f"attribute {self.qualified_name()}: {value!r} is not a "
                f"{self.type.name}"
            )

    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return f"{owner}.{self.name}"


class MetaReference(MetaFeature):
    """An object-valued structural feature pointing at a :class:`MetaClass`.

    ``target`` may be a metaclass or its (possibly qualified) name, resolved
    when the package is finalized.  ``containment=True`` makes the reference
    own its targets: each object has at most one container, and adding it to a
    second containment slot moves it.  ``opposite`` names the inverse
    reference on the target class; the kernel keeps both ends in sync.
    """

    def __init__(
        self,
        name: str,
        target: Union["MetaClass", str],
        lower: int = 0,
        upper: int = 1,
        containment: bool = False,
        opposite: Optional[str] = None,
        doc: str = "",
        derived: bool = False,
    ):
        super().__init__(name, lower, upper, doc, derived)
        self._target = target
        self.containment = containment
        self.opposite_name = opposite
        self.opposite: Optional[MetaReference] = None

    @property
    def target(self) -> "MetaClass":
        if isinstance(self._target, str):
            raise UnresolvedTypeError(
                f"reference {self.name!r} still targets the unresolved name "
                f"{self._target!r}; call MetaPackage.resolve() first"
            )
        return self._target

    @property
    def resolved(self) -> bool:
        return not isinstance(self._target, str)

    def check_value(self, value) -> None:
        """Raise :class:`TypeCheckError` unless ``value`` is a conforming object."""
        if value is None:
            return
        metaclass = getattr(value, "metaclass", None)
        if metaclass is None or not metaclass.conforms_to(self.target):
            got = metaclass.name if metaclass is not None else type(value).__name__
            raise TypeCheckError(
                f"reference {self.qualified_name()}: expected a "
                f"{self.target.name}, got {got}"
            )

    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return f"{owner}.{self.name}"


class MetaClass(MetaType):
    """A class at the meta level — the thing model objects are instances of.

    >>> pkg = MetaPackage("shapes", "urn:shapes")
    >>> point = MetaClass("Point", package=pkg)
    >>> _ = point.add_attribute(MetaAttribute("x", INTEGER, lower=1, default=0))
    >>> p = point.create(x=3)
    >>> p.get("x")
    3
    """

    def __init__(
        self,
        name: str,
        package: Optional["MetaPackage"] = None,
        superclasses: Iterable["MetaClass"] = (),
        abstract: bool = False,
        doc: str = "",
    ):
        super().__init__(name)
        self.package = package
        self.superclasses: list[MetaClass] = list(superclasses)
        self.abstract = abstract
        self.doc = doc
        self.attributes: dict[str, MetaAttribute] = {}
        self.references: dict[str, MetaReference] = {}
        if package is not None:
            package.add_class(self)
        for sup in self.superclasses:
            if sup is self:
                raise MetamodelError(f"{name!r} cannot inherit from itself")

    # -- definition ------------------------------------------------------

    def add_attribute(self, attribute: MetaAttribute) -> MetaAttribute:
        self._check_fresh_feature_name(attribute.name)
        attribute.owner = self
        self.attributes[attribute.name] = attribute
        return attribute

    def add_reference(self, reference: MetaReference) -> MetaReference:
        self._check_fresh_feature_name(reference.name)
        reference.owner = self
        self.references[reference.name] = reference
        return reference

    def attribute(
        self, name: str, type: MetaType = STRING, **kwargs
    ) -> "MetaClass":
        """Fluent shorthand: define an attribute and return the class."""
        self.add_attribute(MetaAttribute(name, type, **kwargs))
        return self

    def reference(
        self, name: str, target: Union["MetaClass", str], **kwargs
    ) -> "MetaClass":
        """Fluent shorthand: define a reference and return the class."""
        self.add_reference(MetaReference(name, target, **kwargs))
        return self

    def _check_fresh_feature_name(self, name: str) -> None:
        # A subclass may *redefine* (shadow) an inherited feature, so only
        # duplicates among a class's own features are rejected.
        if name in self.attributes or name in self.references:
            raise DuplicateFeatureError(
                f"metaclass {self.name!r} already has a feature {name!r}"
            )

    # -- inheritance ------------------------------------------------------

    def all_superclasses(self) -> list["MetaClass"]:
        """All transitive superclasses, nearest first, duplicates removed."""
        seen: dict[int, MetaClass] = {}
        stack = list(self.superclasses)
        ordered: list[MetaClass] = []
        while stack:
            cls = stack.pop(0)
            if id(cls) in seen:
                continue
            seen[id(cls)] = cls
            ordered.append(cls)
            stack.extend(cls.superclasses)
        return ordered

    def conforms_to(self, other: "MetaClass") -> bool:
        """True when instances of ``self`` are acceptable where ``other`` is."""
        return other is self or other in self.all_superclasses()

    def all_attributes(self) -> dict[str, MetaAttribute]:
        """Own + inherited attributes; nearer definitions shadow farther ones."""
        merged: dict[str, MetaAttribute] = {}
        for cls in reversed(self.all_superclasses()):
            merged.update(cls.attributes)
        merged.update(self.attributes)
        return merged

    def all_references(self) -> dict[str, MetaReference]:
        """Own + inherited references; nearer definitions shadow farther ones."""
        merged: dict[str, MetaReference] = {}
        for cls in reversed(self.all_superclasses()):
            merged.update(cls.references)
        merged.update(self.references)
        return merged

    def find_feature(self, name: str) -> Optional[MetaFeature]:
        feature = self.all_attributes().get(name)
        if feature is not None:
            return feature
        return self.all_references().get(name)

    # -- instantiation -----------------------------------------------------

    def accepts(self, value) -> bool:
        metaclass = getattr(value, "metaclass", None)
        return metaclass is not None and metaclass.conforms_to(self)

    def create(self, **initial_values):
        """Instantiate this metaclass as an :class:`~repro.core.objects.MObject`.

        Keyword arguments initialize same-named features; mandatory
        single-valued attributes without an explicit value fall back to their
        declared default (or the enum's first literal).
        """
        from .objects import MObject  # local import: objects depends on meta

        if self.abstract:
            raise MetamodelError(f"cannot instantiate abstract class {self.name!r}")
        obj = MObject(self)
        for name, value in initial_values.items():
            obj.set(name, value)
        return obj

    def qualified_name(self) -> str:
        if self.package is None:
            return self.name
        return f"{self.package.qualified_name()}.{self.name}"

    def __repr__(self) -> str:
        flags = " abstract" if self.abstract else ""
        return f"<MetaClass {self.qualified_name()}{flags}>"


class MetaPackage:
    """A named, URI-identified container of metaclasses, enums and subpackages."""

    def __init__(self, name: str, uri: str = "", parent: Optional["MetaPackage"] = None):
        if not name:
            raise MetamodelError("a MetaPackage needs a non-empty name")
        self.name = name
        self.uri = uri or f"urn:repro:{name}"
        self.parent = parent
        self.classes: dict[str, MetaClass] = {}
        self.enums: dict[str, MetaEnum] = {}
        self.subpackages: dict[str, MetaPackage] = {}
        if parent is not None:
            parent.add_subpackage(self)

    # -- construction ------------------------------------------------------

    def add_class(self, metaclass: MetaClass) -> MetaClass:
        if metaclass.name in self.classes:
            raise MetamodelError(
                f"package {self.name!r} already defines class {metaclass.name!r}"
            )
        metaclass.package = self
        self.classes[metaclass.name] = metaclass
        return metaclass

    def add_enum(self, enum: MetaEnum) -> MetaEnum:
        if enum.name in self.enums:
            raise MetamodelError(
                f"package {self.name!r} already defines enum {enum.name!r}"
            )
        self.enums[enum.name] = enum
        return enum

    def add_subpackage(self, package: "MetaPackage") -> "MetaPackage":
        if package.name in self.subpackages:
            raise MetamodelError(
                f"package {self.name!r} already has subpackage {package.name!r}"
            )
        package.parent = self
        self.subpackages[package.name] = package
        return package

    def define_class(
        self,
        name: str,
        superclasses: Iterable[MetaClass] = (),
        abstract: bool = False,
        doc: str = "",
    ) -> MetaClass:
        """Create-and-register a metaclass in one call."""
        return MetaClass(
            name, package=self, superclasses=superclasses, abstract=abstract, doc=doc
        )

    def define_enum(self, name: str, literals: Sequence[str], doc: str = "") -> MetaEnum:
        return self.add_enum(MetaEnum(name, literals, doc))

    # -- lookup -------------------------------------------------------------

    def find_class(self, name: str) -> Optional[MetaClass]:
        """Find a class by simple or dotted name, searching subpackages."""
        if "." in name:
            head, _, rest = name.partition(".")
            sub = self.subpackages.get(head)
            if sub is not None:
                return sub.find_class(rest)
            if head == self.name:
                return self.find_class(rest)
            return None
        if name in self.classes:
            return self.classes[name]
        for sub in self.subpackages.values():
            found = sub.find_class(name)
            if found is not None:
                return found
        return None

    def find_type(self, name: str) -> Optional[MetaType]:
        """Find a class, enum or primitive by name."""
        if name in PRIMITIVES:
            return PRIMITIVES[name]
        if name in self.enums:
            return self.enums[name]
        found = self.find_class(name)
        if found is not None:
            return found
        for sub in self.subpackages.values():
            found = sub.find_type(name)
            if found is not None:
                return found
        return None

    def all_classes(self) -> Iterator[MetaClass]:
        """Every class in this package and its subpackages, depth-first."""
        yield from self.classes.values()
        for sub in self.subpackages.values():
            yield from sub.all_classes()

    def qualified_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.qualified_name()}.{self.name}"

    # -- finalization ---------------------------------------------------------

    def resolve(self) -> "MetaPackage":
        """Resolve string reference targets and wire opposite references.

        Idempotent; returns ``self`` so definitions can end with
        ``return package.resolve()``.
        """
        root = self
        while root.parent is not None:
            root = root.parent
        for metaclass in self.all_classes():
            for reference in metaclass.references.values():
                if not reference.resolved:
                    target = root.find_class(reference._target)
                    if target is None:
                        raise UnresolvedTypeError(
                            f"{reference.qualified_name()}: no class named "
                            f"{reference._target!r} in package "
                            f"{root.qualified_name()!r}"
                        )
                    reference._target = target
        for metaclass in self.all_classes():
            for reference in metaclass.references.values():
                if reference.opposite_name and reference.opposite is None:
                    other = reference.target.find_feature(reference.opposite_name)
                    if not isinstance(other, MetaReference):
                        raise MetamodelError(
                            f"{reference.qualified_name()}: opposite "
                            f"{reference.opposite_name!r} is not a reference "
                            f"of {reference.target.name!r}"
                        )
                    if other.opposite is not None and other.opposite is not reference:
                        raise MetamodelError(
                            f"{other.qualified_name()} already has an opposite"
                        )
                    reference.opposite = other
                    other.opposite = reference
                    other.opposite_name = reference.name
        return self

    def __repr__(self) -> str:
        return f"<MetaPackage {self.qualified_name()} uri={self.uri!r}>"

"""Regenerate the paper's tables, row for row.

* :func:`table1` — the ISO/IEC 25012 data quality characteristics;
* :func:`table2` — the WebRE metamodel elements;
* :func:`table3` — the DQ_WebRE stereotype specification.

Each has a ``*_rows()`` companion returning the raw data so tests and
benchmarks can assert on content instead of formatting.
"""

from __future__ import annotations

from repro.diagrams.ascii import table as render_table
from repro.dq import iso25012
from repro.dqwebre.profile import TABLE3_SPECS
from repro.webre.metamodel import TABLE2_ELEMENTS


def table1_rows() -> list[list[str]]:
    """(group, characteristic, definition) rows in Table 1 order."""
    return [
        [characteristic.category.value, characteristic.name,
         characteristic.definition]
        for characteristic in iso25012.ALL_CHARACTERISTICS
    ]


def table1(max_width: int = 60) -> str:
    """Table 1: Data Quality characteristics proposed by ISO/IEC 25012."""
    header = (
        "Table 1 — Data Quality characteristics proposed by the "
        "ISO/IEC 25012 standard"
    )
    body = render_table(
        ["Group", "Characteristic", "Description"],
        table1_rows(),
        max_width=max_width,
    )
    return f"{header}\n{body}"


def table2_rows() -> list[list[str]]:
    """(element, description) rows in Table 2 order."""
    return [[name, description] for name, description in TABLE2_ELEMENTS]


def table2(max_width: int = 70) -> str:
    """Table 2: Elements of the WebRE metamodel."""
    header = "Table 2 — Elements of WebRE metamodel"
    body = render_table(
        ["Element", "Description"], table2_rows(), max_width=max_width
    )
    return f"{header}\n{body}"


def table3_rows() -> list[list[str]]:
    """(name, base class, description, constraints, tagged values) rows."""
    return [
        [spec.name, spec.base_class, spec.description,
         spec.constraints or "—", spec.tagged_values]
        for spec in TABLE3_SPECS
    ]


def table3(max_width: int = 46) -> str:
    """Table 3: Stereotype specification of the DQ_WebRE profile."""
    header = (
        "Table 3 — Stereotype specification for DQ software requirements "
        "in DQ_WebRE profile"
    )
    body = render_table(
        ["Name", "Base class", "Description", "Constraints", "Tagged values"],
        table3_rows(),
        max_width=max_width,
    )
    return f"{header}\n{body}"


def all_tables() -> str:
    """All three tables, ready for EXPERIMENTS.md / console output."""
    return "\n\n".join([table1(), table2(), table3()])

"""Regenerate the paper's figures as diagram sources.

Each ``figureN()`` returns the PlantUML source of the corresponding figure
(the paper shows Enterprise Architect screenshots; PlantUML text is the
machine-checkable equivalent).  ``figureN_mermaid()`` variants exist where a
Mermaid rendering is also useful.

* Fig. 1 — the extended metamodel (WebRE + the seven DQ metaclasses);
* Fig. 2 — the new UseCase stereotypes (InformationCase, DQ_Requirement);
* Fig. 3 — the new Activity stereotype (Add_DQ_Metadata);
* Fig. 4 — the new Class stereotypes (DQ_Metadata, DQ_Validator,
  DQConstraint);
* Fig. 5 — the Requirement element (DQ_Req_Specification);
* Fig. 6 — the EasyChair use case diagram with DQ requirements;
* Fig. 7 — the EasyChair activity diagram with DQ management.
"""

from __future__ import annotations

from functools import lru_cache

from repro.casestudy.easychair import build_uml_model
from repro.diagrams import mermaid, plantuml
from repro.dqwebre.metamodel import (
    DQWEBRE,
    FIG1_BEHAVIOR_ADDITIONS,
    FIG1_STRUCTURE_ADDITIONS,
)
from repro.dqwebre.profile import build_dqwebre_profile
from repro.webre.metamodel import WEBRE


@lru_cache(maxsize=1)
def _uml_case_study() -> dict:
    return build_uml_model()


@lru_cache(maxsize=1)
def _profile():
    return build_dqwebre_profile()


def figure1() -> str:
    """Fig. 1: the extended metamodel with DQ elements.

    Renders the WebRE packages and the DQ_WebRE additions in one class
    diagram, the additions highlighted.
    """
    highlight = set(FIG1_BEHAVIOR_ADDITIONS) | set(FIG1_STRUCTURE_ADDITIONS)
    webre_part = plantuml.metamodel_diagram(
        WEBRE, title="Fig. 1 — Extended metamodel with DQ elements"
    )
    dq_part = plantuml.metamodel_diagram(DQWEBRE, highlight=highlight)
    # merge the two @startuml blocks into one diagram
    webre_lines = webre_part.splitlines()[:-1]  # drop @enduml
    dq_lines = dq_part.splitlines()[1:]  # drop @startuml
    return "\n".join(webre_lines + dq_lines)


def figure1_mermaid() -> str:
    highlight = set(FIG1_BEHAVIOR_ADDITIONS) | set(FIG1_STRUCTURE_ADDITIONS)
    return mermaid.metamodel_diagram(DQWEBRE, highlight=highlight)


def figure2() -> str:
    """Fig. 2: new Use case elements defined in the DQ_WebRE profile."""
    return plantuml.profile_diagram(
        _profile(),
        title="Fig. 2 — New Use case elements defined in DQ_WebRE profile",
        only=["InformationCase", "DQ_Requirement"],
    )


def figure3() -> str:
    """Fig. 3: new Activity element defined in the DQ_WebRE profile."""
    return plantuml.profile_diagram(
        _profile(),
        title="Fig. 3 — New Activity element defined in DQ_WebRE profile",
        only=["Add_DQ_Metadata"],
    )


def figure4() -> str:
    """Fig. 4: new Class elements defined in the DQ_WebRE profile."""
    return plantuml.profile_diagram(
        _profile(),
        title="Fig. 4 — New Class elements defined in DQ_WebRE profile",
        only=["DQ_Metadata", "DQ_Validator", "DQConstraint"],
    )


def figure5() -> str:
    """Fig. 5: the Requirement element (DQ_Req_Specification)."""
    return plantuml.profile_diagram(
        _profile(),
        title=(
            "Fig. 5 — New Requirement and Actor element defined in "
            "DQ_WebRE profile"
        ),
        only=["DQ_Req_Specification"],
    )


def figure5_requirements_diagram() -> str:
    """The case study's requirements diagram using DQ_Req_Specification."""
    case = _uml_case_study()
    return plantuml.requirement_diagram(
        case["requirements_package"],
        title="DQ requirement specifications (Fig. 5 usage)",
    )


def figure6() -> str:
    """Fig. 6: the EasyChair use case diagram specifying DQ requirements."""
    case = _uml_case_study()
    return plantuml.usecase_diagram(
        case["usecases_package"],
        title="Fig. 6 — Use case diagram specifying DQ requirements",
    )


def figure6_mermaid() -> str:
    case = _uml_case_study()
    return mermaid.usecase_diagram(case["usecases_package"])


def figure7() -> str:
    """Fig. 7: the EasyChair activity diagram with DQ management."""
    case = _uml_case_study()
    return plantuml.activity_diagram(
        case["activity"],
        title="Fig. 7 — Activity diagram with Data Quality management",
    )


def figure7_mermaid() -> str:
    case = _uml_case_study()
    return mermaid.activity_diagram(case["activity"])


#: figure number -> generator, for harness iteration.
ALL_FIGURES = {
    1: figure1,
    2: figure2,
    3: figure3,
    4: figure4,
    5: figure5,
    6: figure6,
    7: figure7,
}


def all_figures() -> dict[int, str]:
    """Render every figure; keys are figure numbers."""
    return {number: generate() for number, generate in ALL_FIGURES.items()}

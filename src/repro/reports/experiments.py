"""Regenerate the measured part of EXPERIMENTS.md programmatically.

The tables and figures are static artifacts (:mod:`repro.reports.tables`,
:mod:`repro.reports.figures`); the *measured* part — the DQ-vs-baseline
comparison and the scorecards — depends on workload runs.  This module
reruns them deterministically and renders the same report, so EXPERIMENTS.md
is reproducible with one command (``python -m repro experiments``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.casestudy import easychair, webshop
from repro.casestudy.workloads import ReviewWorkload
from repro.dq.metadata import Clock
from repro.dq.scorecard import Scorecard
from repro.diagrams.ascii import table


@dataclass(frozen=True)
class ComparisonResult:
    """The headline numbers of one DQ-vs-baseline run."""

    count: int
    seed: int
    dq_accepted: int
    dq_rejected_dq: int
    dq_rejected_auth: int
    dq_false_accepts: int
    baseline_accepted: int
    baseline_false_accepts: int

    @property
    def dq_catch_rate(self) -> float:
        defective = (
            self.dq_rejected_dq + self.dq_rejected_auth
            + self.dq_false_accepts
        )
        if defective == 0:
            return 1.0
        return (self.dq_rejected_dq + self.dq_rejected_auth) / defective


def run_comparison(count: int = 300, seed: int = 42) -> ComparisonResult:
    """The EasyChair DQ-vs-baseline comparison, deterministic per seed."""
    dq_app = easychair.build_app(Clock())
    baseline = easychair.build_baseline(Clock())
    dq_outcome = ReviewWorkload(seed=seed).run(dq_app, count)
    baseline_outcome = ReviewWorkload(seed=seed).run(baseline, count)
    return ComparisonResult(
        count=count,
        seed=seed,
        dq_accepted=dq_outcome.accepted,
        dq_rejected_dq=dq_outcome.rejected_dq,
        dq_rejected_auth=dq_outcome.rejected_auth,
        dq_false_accepts=dq_outcome.false_accepts,
        baseline_accepted=baseline_outcome.accepted,
        baseline_false_accepts=baseline_outcome.false_accepts,
    )


def comparison_table(result: ComparisonResult) -> str:
    rows = [
        ["accepted", str(result.dq_accepted), str(result.baseline_accepted)],
        ["rejected — DQ (422)", str(result.dq_rejected_dq), "0"],
        ["rejected — authorization (403)", str(result.dq_rejected_auth), "0"],
        [
            "defective submissions stored",
            str(result.dq_false_accepts),
            str(result.baseline_false_accepts),
        ],
        [
            "catch rate",
            f"{result.dq_catch_rate:.0%}",
            "0%" if result.baseline_false_accepts else "100%",
        ],
    ]
    header = (
        f"EasyChair workload: {result.count} submissions, "
        f"seed {result.seed}"
    )
    return header + "\n" + table(
        ["", "DQ-aware app", "baseline"], rows, max_width=34
    )


def easychair_scorecard(count: int = 50, seed: int = 7) -> str:
    """Run a clean-ish workload and score the stored data."""
    app = easychair.build_app(Clock())
    ReviewWorkload(seed=seed).run(app, count)
    scorecard = Scorecard(
        app,
        "Add all data as result of review",
        required_fields=easychair.ALL_REVIEW_FIELDS,
        bounds=easychair.SCORE_BOUNDS,
        max_age=100_000,
    )
    return scorecard.render()


def webshop_summary() -> str:
    """The second case study's accept/reject signature."""
    app = webshop.build_app(Clock())
    probes = [
        ("valid order", webshop.valid_order(), 201),
        ("incomplete order", webshop.valid_order(sku=None), 422),
        ("imprecise quantity",
         webshop.valid_order(quantity=5000, total_cents=5000 * 1999), 422),
        ("untrusted channel", webshop.valid_order(channel="darkweb"), 422),
        ("incoherent total", webshop.valid_order(total_cents=1), 422),
        ("invalid email (customer)",
         webshop.valid_customer(email="junk"), 422),
        ("stale profile (customer)",
         webshop.valid_customer(profile_age_days=9999), 422),
    ]
    lines = ["WebShop case study probes:"]
    for label, payload, expected in probes:
        path = (
            webshop.CUSTOMER_PATH
            if "customer" in label
            else webshop.ORDER_PATH
        )
        status = app.post(path, payload, user="clerk").status
        marker = "OK " if status == expected else "!! "
        lines.append(f"  {marker}{label:28} -> {status} (expected {expected})")
    return "\n".join(lines)


def full_report(count: int = 300, seed: int = 42) -> str:
    """Everything ``python -m repro experiments`` prints."""
    sections = [
        comparison_table(run_comparison(count=count, seed=seed)),
        "",
        easychair_scorecard(),
        "",
        webshop_summary(),
    ]
    return "\n".join(sections)

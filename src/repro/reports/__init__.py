"""``repro.reports`` — regenerate every table and figure of the paper."""

from . import figures, tables
from .figures import ALL_FIGURES, all_figures
from .tables import all_tables, table1, table2, table3

__all__ = [
    "tables", "figures",
    "table1", "table2", "table3", "all_tables",
    "ALL_FIGURES", "all_figures",
]

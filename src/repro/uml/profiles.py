"""The UML profile mechanism: stereotypes, tagged values, applications.

This is the machinery the paper's contribution is packaged in: *"we have also
implemented a UML profile for Web application requirements, which has been
extended with data quality issues (DQ_WebRE)"* (§3).  A profile owns
stereotypes; each stereotype names the UML base metaclasses it extends
(Table 3's "Base class" column), defines tagged values (Table 3's "Tagged
values") and carries constraints (Table 3's "Constraints").

Stereotype constraints come in two flavours:

* OCL-lite text, evaluated with ``self`` bound to the *stereotyped element*;
* ``python:<rule-name>`` referencing a rule registered with
  :func:`register_rule` — used for rules that must inspect stereotype
  applications on related elements, which plain OCL cannot see.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import MObject, Severity, walk
from repro.core.constraints import Diagnostic
from repro.core.errors import (
    BaseClassMismatchError,
    OclError,
    ProfileError,
    TaggedValueError,
)
from repro.core.ocl import OclExpression

from . import metamodel as M

# ---------------------------------------------------------------------------
# Profile definition helpers
# ---------------------------------------------------------------------------


def profile(name: str, uri: str = "") -> MObject:
    """Create a :class:`Profile` root element."""
    new_profile = M.Profile.create(name=name)
    if uri:
        from .elements import comment

        comment(new_profile, f"uri: {uri}")
    return new_profile


def stereotype(
    owner: MObject,
    name: str,
    base_classes: list[str],
    doc: str = "",
    icon: str = "",
) -> MObject:
    """Define a stereotype in ``owner`` extending the named metaclasses."""
    if not base_classes:
        raise ProfileError(f"stereotype {name!r} needs at least one base class")
    for base in base_classes:
        if M.UML.find_class(base) is None:
            raise ProfileError(
                f"stereotype {name!r}: unknown UML base class {base!r}"
            )
    new_stereotype = M.Stereotype.create(name=name)
    new_stereotype.set("baseClasses", base_classes)
    if doc:
        new_stereotype.doc = doc
    if icon:
        new_stereotype.icon = icon
    owner.ownedStereotypes.append(new_stereotype)
    return new_stereotype


def tag_definition(
    owner_stereotype: MObject,
    name: str,
    type: str = "string",
    required: bool = False,
    default: Optional[str] = None,
) -> MObject:
    """Add a tagged-value definition to a stereotype."""
    tag = M.TagDefinition.create(name=name, type=type, required=required)
    if default is not None:
        tag.defaultValue = default
    owner_stereotype.tagDefinitions.append(tag)
    return tag


def stereotype_constraint(
    owner_stereotype: MObject,
    name: str,
    expression: str,
    description: str = "",
) -> MObject:
    """Attach a constraint (OCL-lite text or ``python:<rule>``) to a stereotype."""
    constraint = M.StereotypeConstraint.create(name=name, expression=expression)
    if description:
        constraint.description = description
    owner_stereotype.constraints.append(constraint)
    return constraint


def find_stereotype(profile_element: MObject, name: str) -> Optional[MObject]:
    for stereo in profile_element.ownedStereotypes:
        if stereo.name == name:
            return stereo
    return None


# ---------------------------------------------------------------------------
# Python rule registry (for constraints OCL cannot express)
# ---------------------------------------------------------------------------

_RULES: dict[str, Callable[[MObject, MObject], object]] = {}


def register_rule(name: str):
    """Decorator registering ``fn(element, application) -> bool | str``.

    Returning ``True``/``None`` means satisfied; ``False`` means violated with
    the constraint's description as message; a string is a custom message.
    """

    def decorator(fn):
        _RULES[name] = fn
        return fn

    return decorator


def rule(name: str) -> Callable[[MObject, MObject], object]:
    try:
        return _RULES[name]
    except KeyError:
        raise ProfileError(f"no registered profile rule named {name!r}") from None


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------

_TAG_SLOTS = {
    "string": "stringValue",
    "integer": "integerValue",
    "boolean": "booleanValue",
    "real": "realValue",
    "string_set": "stringValues",
}


def apply_stereotype(element: MObject, stereo: MObject, **tags) -> MObject:
    """Apply ``stereo`` to ``element`` with tagged values.

    Checks (raising :class:`ProfileError` subtypes):
    * ``element``'s metaclass conforms to one of the stereotype's base classes;
    * every passed tag is defined on the stereotype and type-conforms;
    * required tags without defaults are present.
    """
    _check_base_class(element, stereo)
    definitions = {tag.name: tag for tag in stereo.tagDefinitions}
    for tag_name in tags:
        if tag_name not in definitions:
            raise TaggedValueError(
                f"stereotype {stereo.name!r} defines no tag {tag_name!r}"
            )
    application = M.StereotypeApplication.create(stereotype=stereo)
    for tag_name, definition in definitions.items():
        if tag_name in tags:
            value = tags[tag_name]
        elif definition.defaultValue is not None:
            value = _parse_default(definition)
        elif definition.required:
            raise TaggedValueError(
                f"stereotype {stereo.name!r}: required tag {tag_name!r} missing"
            )
        else:
            continue
        application.tagValues.append(_make_tag_value(definition, value))
    element.appliedStereotypes.append(application)
    return application


def _check_base_class(element: MObject, stereo: MObject) -> None:
    for base_name in stereo.baseClasses:
        base = M.UML.find_class(base_name)
        if base is not None and element.is_instance_of(base):
            return
    raise BaseClassMismatchError(
        f"stereotype {stereo.name!r} extends {list(stereo.baseClasses)!r}; "
        f"cannot apply to a {element.metaclass.name}"
    )


def _make_tag_value(definition: MObject, value) -> MObject:
    tag_value = M.TagValue.create(name=definition.name)
    slot = _TAG_SLOTS[definition.type]
    try:
        if definition.type == "string_set":
            tag_value.set(slot, [str(v) for v in value])
        else:
            tag_value.set(slot, value)
    except Exception as exc:
        raise TaggedValueError(
            f"tag {definition.name!r}: value {value!r} does not conform to "
            f"type {definition.type!r}"
        ) from exc
    return tag_value


def _parse_default(definition: MObject):
    raw = definition.defaultValue
    kind = definition.type
    if kind == "integer":
        return int(raw)
    if kind == "real":
        return float(raw)
    if kind == "boolean":
        return raw.lower() in ("true", "1", "yes")
    if kind == "string_set":
        return [part.strip() for part in raw.split(",") if part.strip()]
    return raw


def unapply_stereotype(element: MObject, name: str) -> bool:
    """Remove the first application of the named stereotype; True if removed."""
    for application in element.appliedStereotypes:
        if application.stereotype.name == name:
            element.appliedStereotypes.remove(application)
            return True
    return False


# ---------------------------------------------------------------------------
# Introspection
# ---------------------------------------------------------------------------


def applications(element: MObject) -> list[MObject]:
    if not element.has_feature("appliedStereotypes"):
        return []
    return list(element.appliedStereotypes)


def has_stereotype(element: MObject, name: str) -> bool:
    return any(
        app.stereotype is not None and app.stereotype.name == name
        for app in applications(element)
    )


def application_of(element: MObject, name: str) -> Optional[MObject]:
    for app in applications(element):
        if app.stereotype is not None and app.stereotype.name == name:
            return app
    return None


def stereotype_names(element: MObject) -> list[str]:
    return [
        app.stereotype.name
        for app in applications(element)
        if app.stereotype is not None
    ]


def get_tag(element: MObject, stereotype_name: str, tag_name: str):
    """The Python value of a tagged value, or ``None`` when absent."""
    application = application_of(element, stereotype_name)
    if application is None:
        return None
    for tag_value in application.tagValues:
        if tag_value.name == tag_name:
            return _read_tag_value(tag_value)
    return None


def set_tag(element: MObject, stereotype_name: str, tag_name: str, value) -> None:
    """Update (or create) a tagged value on an existing application."""
    application = application_of(element, stereotype_name)
    if application is None:
        raise ProfileError(
            f"element {element.label()!r} has no {stereotype_name!r} stereotype"
        )
    definitions = {
        tag.name: tag for tag in application.stereotype.tagDefinitions
    }
    if tag_name not in definitions:
        raise TaggedValueError(
            f"stereotype {stereotype_name!r} defines no tag {tag_name!r}"
        )
    for tag_value in application.tagValues:
        if tag_value.name == tag_name:
            application.tagValues.remove(tag_value)
            break
    application.tagValues.append(
        _make_tag_value(definitions[tag_name], value)
    )


def _read_tag_value(tag_value: MObject):
    if len(tag_value.stringValues):
        return list(tag_value.stringValues)
    for slot in ("stringValue", "integerValue", "booleanValue", "realValue"):
        value = tag_value.get(slot)
        if value is not None:
            return value
    # a string_set tag explicitly set to [] round-trips as empty list
    return []


def elements_with_stereotype(root: MObject, name: str) -> list[MObject]:
    """All elements under ``root`` carrying the named stereotype."""
    return [obj for obj in walk(root) if has_stereotype(obj, name)]


# ---------------------------------------------------------------------------
# Validation of stereotype applications
# ---------------------------------------------------------------------------


def validate_applications(root: MObject) -> list[Diagnostic]:
    """Re-check every stereotype application under ``root``.

    Checks base-class conformance, required tags, and evaluates every
    stereotype constraint (OCL-lite with ``self`` = the stereotyped element,
    or a registered python rule receiving ``(element, application)``).
    """
    diagnostics: list[Diagnostic] = []
    for element in walk(root):
        if not element.has_feature("appliedStereotypes"):
            continue
        for application in element.appliedStereotypes:
            stereo = application.stereotype
            if stereo is None:
                diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        "stereotype application without a stereotype",
                        element,
                        "profile.application",
                    )
                )
                continue
            diagnostics.extend(_check_application(element, application, stereo))
    return diagnostics


def _check_application(element, application, stereo) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    try:
        _check_base_class(element, stereo)
    except BaseClassMismatchError as exc:
        diagnostics.append(
            Diagnostic(Severity.ERROR, str(exc), element, "profile.baseclass")
        )
    present = {tag.name for tag in application.tagValues}
    for definition in stereo.tagDefinitions:
        if definition.required and definition.name not in present:
            diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    f"required tag {definition.name!r} of "
                    f"{stereo.name!r} missing",
                    element,
                    "profile.tags",
                )
            )
    for constraint in stereo.constraints:
        diagnostics.extend(
            _check_constraint(element, application, stereo, constraint)
        )
    return diagnostics


def _check_constraint(element, application, stereo, constraint) -> list[Diagnostic]:
    expression = constraint.expression or "true"
    label = f"{stereo.name}.{constraint.name}"
    message = constraint.description or f"constraint {constraint.name} violated"
    if expression.startswith("python:"):
        rule_name = expression[len("python:"):]
        try:
            outcome = rule(rule_name)(element, application)
        except ProfileError as exc:
            return [Diagnostic(Severity.ERROR, str(exc), element, label)]
        if outcome is True or outcome is None:
            return []
        text = outcome if isinstance(outcome, str) else message
        return [Diagnostic(Severity.ERROR, text, element, label)]
    try:
        ok = OclExpression(expression).evaluate(
            element, variables={"app": application}
        )
    except OclError as exc:
        return [
            Diagnostic(
                Severity.ERROR,
                f"constraint expression failed: {exc}",
                element,
                label,
            )
        ]
    if ok is True:
        return []
    return [Diagnostic(Severity.ERROR, message, element, label)]

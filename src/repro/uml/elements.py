"""Facade helpers for the UML base layer: models, packages, comments."""

from __future__ import annotations

from typing import Optional

from repro.core import MObject

from . import metamodel as M


def model(name: str) -> MObject:
    """Create a root :class:`Model`."""
    return M.Model.create(name=name)


def package(owner: MObject, name: str) -> MObject:
    """Create a :class:`Package` inside ``owner`` (a Package or Model)."""
    pkg = M.Package.create(name=name)
    owner.packagedElements.append(pkg)
    return pkg


def comment(element: MObject, body: str) -> MObject:
    """Attach a comment to any element (the paper's Fig. 6 notes)."""
    note = M.Comment.create(body=body)
    element.ownedComments.append(note)
    return note


def owned(owner: MObject, metaclass) -> list[MObject]:
    """The packaged elements of ``owner`` conforming to ``metaclass``."""
    return [e for e in owner.packagedElements if e.is_instance_of(metaclass)]


def find_named(owner: MObject, name: str) -> Optional[MObject]:
    """Find a directly packaged element by name."""
    for element in owner.packagedElements:
        if element.name == name:
            return element
    return None


def apply_profile(pkg: MObject, profile: MObject) -> MObject:
    """Record that ``profile``'s stereotypes may be used inside ``pkg``."""
    if profile not in pkg.appliedProfiles:
        pkg.appliedProfiles.append(profile)
    return pkg

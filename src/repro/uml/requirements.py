"""Facade helpers for SysML-style requirement diagrams.

The paper's ``DQ_Req_Specification`` elements are "Requirement type" elements
with ``ID``/``Text`` tags, elaborated on requirements diagrams (Table 3,
Fig. 5).  We model them as SysML-like requirements with derive / refine /
satisfy / verify relationships.
"""

from __future__ import annotations

from repro.core import MObject

from . import metamodel as M


def requirement(
    owner: MObject, name: str, req_id: str = "", text: str = ""
) -> MObject:
    """Create a :class:`Requirement` packaged in ``owner``."""
    req = M.Requirement.create(name=name)
    if req_id:
        req.reqId = req_id
    if text:
        req.text = text
    owner.packagedElements.append(req)
    return req


def derive(derived: MObject, source: MObject) -> MObject:
    """``derived`` <<deriveReqt>> from ``source`` (both Requirements)."""
    if source not in derived.derivedFrom:
        derived.derivedFrom.append(source)
    return derived


def refine(req: MObject, element: MObject) -> MObject:
    """``element`` <<refine>>s ``req``."""
    if element not in req.refinedBy:
        req.refinedBy.append(element)
    return req


def satisfy(req: MObject, element: MObject) -> MObject:
    """``element`` <<satisfy>>-es ``req`` (e.g. a design class)."""
    if element not in req.satisfiedBy:
        req.satisfiedBy.append(element)
    return req


def verify(req: MObject, element: MObject) -> MObject:
    """``element`` <<verify>>-es ``req`` (e.g. a test case)."""
    if element not in req.verifiedBy:
        req.verifiedBy.append(element)
    return req


def trace(req: MObject, element: MObject) -> MObject:
    if element not in req.tracedTo:
        req.tracedTo.append(element)
    return req


def derivation_chain(req: MObject) -> list[MObject]:
    """Transitive <<deriveReqt>> ancestors, nearest first, cycles tolerated."""
    seen: list[MObject] = []
    frontier = list(req.derivedFrom)
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.append(current)
        frontier.extend(current.derivedFrom)
    return seen


def coverage(requirements: list[MObject]) -> dict[str, list[MObject]]:
    """Partition requirements by verification status.

    Returns a dict with keys ``satisfied``, ``verified``, ``unsatisfied``,
    ``unverified`` — the basis of requirement-coverage reporting.
    """
    buckets: dict[str, list[MObject]] = {
        "satisfied": [],
        "unsatisfied": [],
        "verified": [],
        "unverified": [],
    }
    for req in requirements:
        if len(req.satisfiedBy):
            buckets["satisfied"].append(req)
        else:
            buckets["unsatisfied"].append(req)
        if len(req.verifiedBy):
            buckets["verified"].append(req)
        else:
            buckets["unverified"].append(req)
    return buckets

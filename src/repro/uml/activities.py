"""Facade helpers for activity diagrams.

The paper's Fig. 7 activity diagram uses: an initial node, a chain of
stereotyped actions (``UserTransaction``, ``Add_DQ_Metadata`` ...), object
nodes for the ``WebUI``/``DQ_Metadata``/``DQ_Validator`` classes, control and
object flows, and a final node.  These helpers author all of that.
"""

from __future__ import annotations

from typing import Optional

from repro.core import MObject

from . import metamodel as M


def activity(owner: MObject, name: str) -> MObject:
    """Create an :class:`Activity` packaged in ``owner``."""
    new_activity = M.Activity.create(name=name)
    owner.packagedElements.append(new_activity)
    return new_activity


def initial(act: MObject, name: str = "start") -> MObject:
    node = M.InitialNode.create(name=name)
    act.nodes.append(node)
    return node


def final(act: MObject, name: str = "end") -> MObject:
    node = M.ActivityFinalNode.create(name=name)
    act.nodes.append(node)
    return node


def flow_final(act: MObject, name: str = "stop") -> MObject:
    node = M.FlowFinalNode.create(name=name)
    act.nodes.append(node)
    return node


def action(act: MObject, name: str, body: str = "") -> MObject:
    """Create an :class:`OpaqueAction` in ``act``."""
    node = M.OpaqueAction.create(name=name)
    if body:
        node.body = body
    act.nodes.append(node)
    return node


def call_behavior(act: MObject, name: str, behavior: MObject) -> MObject:
    node = M.CallBehaviorAction.create(name=name, behavior=behavior)
    act.nodes.append(node)
    return node


def object_node(act: MObject, name: str, type: str = "") -> MObject:
    node = M.ObjectNode.create(name=name)
    if type:
        node.type = type
    act.nodes.append(node)
    return node


def decision(act: MObject, name: str = "decision") -> MObject:
    node = M.DecisionNode.create(name=name)
    act.nodes.append(node)
    return node


def merge(act: MObject, name: str = "merge") -> MObject:
    node = M.MergeNode.create(name=name)
    act.nodes.append(node)
    return node


def fork(act: MObject, name: str = "fork") -> MObject:
    node = M.ForkNode.create(name=name)
    act.nodes.append(node)
    return node


def join(act: MObject, name: str = "join") -> MObject:
    node = M.JoinNode.create(name=name)
    act.nodes.append(node)
    return node


def flow(
    act: MObject, source: MObject, target: MObject, guard: str = ""
) -> MObject:
    """Create a :class:`ControlFlow` from ``source`` to ``target``."""
    edge = M.ControlFlow.create(source=source, target=target)
    if guard:
        edge.guard = guard
    act.edges.append(edge)
    return edge


def object_flow(
    act: MObject, source: MObject, target: MObject, guard: str = ""
) -> MObject:
    """Create an :class:`ObjectFlow` (data flowing into/out of actions)."""
    edge = M.ObjectFlow.create(source=source, target=target)
    if guard:
        edge.guard = guard
    act.edges.append(edge)
    return edge


def chain(act: MObject, *nodes: MObject) -> list[MObject]:
    """Connect consecutive ``nodes`` with control flows; returns the edges."""
    edges = []
    for source, target in zip(nodes, nodes[1:]):
        edges.append(flow(act, source, target))
    return edges


def partition(
    act: MObject, name: str, nodes: Optional[list[MObject]] = None
) -> MObject:
    """Create a swimlane; optionally assign nodes to it."""
    lane = M.ActivityPartition.create(name=name)
    act.partitions.append(lane)
    if nodes:
        lane.set("nodes", nodes)
    return lane


def successors(node: MObject) -> list[MObject]:
    return [edge.target for edge in node.outgoing]


def predecessors(node: MObject) -> list[MObject]:
    return [edge.source for edge in node.incoming]


def reachable_from(node: MObject) -> list[MObject]:
    """Every node reachable via outgoing edges (BFS, ``node`` excluded)."""
    seen: list[MObject] = []
    frontier = successors(node)
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.append(current)
        frontier.extend(successors(current))
    return seen


def is_well_formed(act: MObject) -> list[str]:
    """Structural sanity checks; returns a list of problem strings.

    Rules (the usual UML activity well-formedness subset):
    * at least one initial and one final node;
    * the initial node has no incoming edges; final nodes no outgoing;
    * every non-initial/final node is reachable from an initial node;
    * every edge connects nodes owned by the activity.
    """
    problems: list[str] = []
    initials = [n for n in act.nodes if n.is_instance_of(M.InitialNode)]
    finals = [
        n for n in act.nodes
        if n.is_instance_of(M.ActivityFinalNode)
        or n.is_instance_of(M.FlowFinalNode)
    ]
    if not initials:
        problems.append("activity has no initial node")
    if not finals:
        problems.append("activity has no final node")
    for node in initials:
        if len(node.incoming):
            problems.append(f"initial node {node.label()!r} has incoming edges")
    for node in finals:
        if len(node.outgoing):
            problems.append(f"final node {node.label()!r} has outgoing edges")
    if initials:
        reachable = set()
        for start in initials:
            reachable.update(id(n) for n in reachable_from(start))
            reachable.add(id(start))
        for node in act.nodes:
            if node.is_instance_of(M.ObjectNode):
                # Object nodes may be pure data sources (only outgoing
                # object flows) — Fig. 7's "webpage of New Review" feeds the
                # validators without sitting on the control path.
                continue
            if id(node) not in reachable:
                problems.append(f"node {node.label()!r} is unreachable")
    owned = {id(n) for n in act.nodes}
    for edge in act.edges:
        if id(edge.source) not in owned or id(edge.target) not in owned:
            problems.append(
                f"edge {edge.label()!r} crosses outside the activity"
            )
    return problems

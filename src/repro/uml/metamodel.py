"""The UML 2.x subset metamodel used by WebRE and DQ_WebRE.

This defines — *as a metamodel over the kernel* — the slice of UML that the
paper's artifacts need:

* packages and models;
* class diagrams: classes, properties, operations, associations;
* use case diagrams: actors, use cases, include/extend, actor associations;
* activity diagrams: activities, actions, control/object flows, partitions;
* SysML-style requirement diagrams (the paper's ``DQ_Req_Specification``
  elements live on requirements diagrams, §3 / Fig. 5);
* the profile mechanism: profiles, stereotypes, tag definitions, stereotype
  constraints, and stereotype applications with tagged values.

The package is built once at import time, registered in the global registry,
and exposed as :data:`UML`.  Every metaclass is also exported as a module
attribute (``PACKAGE_``-free upper-camel names, e.g. ``UseCase``).
"""

from __future__ import annotations

from repro.core import (
    BOOLEAN,
    INTEGER,
    MANY,
    REAL,
    STRING,
    MetaPackage,
    global_registry,
)


def build_uml_package() -> MetaPackage:
    """Construct the UML subset metamodel; called once at import time."""
    uml = MetaPackage("uml", "urn:repro:uml")

    # -- base layer -------------------------------------------------------
    element = uml.define_class("Element", abstract=True, doc="Root of UML.")
    comment = uml.define_class(
        "Comment", superclasses=[element],
        doc="An annotation attached to an element.",
    )
    comment.attribute("body", STRING, lower=1)
    element.reference(
        "ownedComments", comment, upper=MANY, containment=True,
        doc="Comments owned by this element.",
    )
    # Stereotype applications hang off every element (profile mechanism).
    element.reference(
        "appliedStereotypes", "StereotypeApplication", upper=MANY,
        containment=True,
        doc="Profile stereotype applications on this element.",
    )

    named = uml.define_class(
        "NamedElement", superclasses=[element], abstract=True
    )
    named.attribute("name", STRING, doc="The element's name.")

    packageable = uml.define_class(
        "PackageableElement", superclasses=[named], abstract=True
    )

    package = uml.define_class(
        "Package", superclasses=[packageable],
        doc="A namespace grouping packageable elements.",
    )
    package.reference(
        "packagedElements", packageable, upper=MANY, containment=True,
        opposite="owningPackage",
    )
    packageable.reference("owningPackage", package)
    package.reference(
        "appliedProfiles", "Profile", upper=MANY,
        doc="Profiles whose stereotypes may be applied inside this package.",
    )

    uml.define_class("Model", superclasses=[package], doc="A root package.")

    # -- classifiers / class diagrams -----------------------------------------
    classifier = uml.define_class(
        "Classifier", superclasses=[packageable], abstract=True
    )
    classifier.attribute("isAbstract", BOOLEAN, default=False)

    property_ = uml.define_class(
        "Property", superclasses=[named],
        doc="A typed structural feature of a Class (attribute or end).",
    )
    property_.attribute("type", STRING, doc="Type name (primitive or class).")
    property_.attribute("lowerValue", INTEGER, default=0)
    property_.attribute("upperValue", INTEGER, default=1, doc="-1 means *.")
    property_.attribute("defaultValue", STRING)

    parameter = uml.define_class("Parameter", superclasses=[named])
    parameter.attribute("type", STRING)
    direction = uml.define_enum(
        "ParameterDirection", ["in_", "out", "inout", "return_"]
    )
    parameter.attribute("direction", direction, default="in_")

    operation = uml.define_class(
        "Operation", superclasses=[named],
        doc="A behavioural feature of a Class.",
    )
    operation.reference(
        "ownedParameters", parameter, upper=MANY, containment=True
    )
    operation.attribute("returnType", STRING)
    operation.attribute("body", STRING, doc="Optional opaque implementation.")

    class_ = uml.define_class(
        "Class", superclasses=[classifier],
        doc="A class on a class diagram.",
    )
    class_.reference(
        "ownedAttributes", property_, upper=MANY, containment=True,
        opposite="owningClass",
    )
    property_.reference("owningClass", class_)
    class_.reference("ownedOperations", operation, upper=MANY, containment=True)
    class_.reference("superClasses", class_, upper=MANY)

    association = uml.define_class(
        "Association", superclasses=[packageable],
        doc="A binary association rendered on class/use-case diagrams.",
    )
    association.reference("source", classifier, lower=1)
    association.reference("target", classifier, lower=1)
    association.attribute("sourceRole", STRING)
    association.attribute("targetRole", STRING)
    association.attribute("sourceMultiplicity", STRING, default="1")
    association.attribute("targetMultiplicity", STRING, default="1")
    association.attribute(
        "navigable", BOOLEAN, default=True,
        doc="False renders a plain (non-arrow) association line.",
    )

    # -- use case diagrams -----------------------------------------------------
    actor = uml.define_class(
        "Actor", superclasses=[classifier],
        doc="A user role interacting with the subject system.",
    )

    use_case = uml.define_class(
        "UseCase", superclasses=[classifier],
        doc="A unit of externally visible functionality.",
    )
    include = uml.define_class(
        "Include",
        doc="An include relationship between use cases.",
        superclasses=[element],
    )
    include.reference("addition", use_case, lower=1, doc="The included use case.")
    extend = uml.define_class(
        "Extend",
        doc="An extend relationship between use cases.",
        superclasses=[element],
    )
    extend.reference("extendedCase", use_case, lower=1)
    extend.attribute("condition", STRING)
    use_case.reference(
        "includes", include, upper=MANY, containment=True,
        opposite="includingCase",
    )
    include.reference("includingCase", use_case)
    use_case.reference(
        "extends", extend, upper=MANY, containment=True, opposite="extension"
    )
    extend.reference("extension", use_case)
    use_case.reference(
        "actors", actor, upper=MANY,
        doc="Actors communicating with this use case.",
    )

    # -- activity diagrams -------------------------------------------------------
    activity = uml.define_class(
        "Activity", superclasses=[classifier],
        doc="A behaviour expressed as a graph of nodes and flows.",
    )
    node = uml.define_class(
        "ActivityNode", superclasses=[named], abstract=True
    )
    edge = uml.define_class(
        "ActivityEdge", superclasses=[named], abstract=True
    )
    edge.reference("source", node, lower=1, opposite="outgoing")
    edge.reference("target", node, lower=1, opposite="incoming")
    edge.attribute("guard", STRING, doc="Guard condition label.")
    node.reference("outgoing", edge, upper=MANY)
    node.reference("incoming", edge, upper=MANY)

    activity.reference(
        "nodes", node, upper=MANY, containment=True, opposite="activity"
    )
    node.reference("activity", activity)
    activity.reference("edges", edge, upper=MANY, containment=True)

    partition = uml.define_class(
        "ActivityPartition", superclasses=[named],
        doc="A swimlane grouping nodes, typically one per participant.",
    )
    partition.reference("nodes", node, upper=MANY)
    partition.attribute("represents", STRING, doc="What the lane stands for.")
    activity.reference(
        "partitions", partition, upper=MANY, containment=True
    )

    uml.define_class("InitialNode", superclasses=[node])
    uml.define_class("ActivityFinalNode", superclasses=[node])
    uml.define_class("FlowFinalNode", superclasses=[node])
    uml.define_class("DecisionNode", superclasses=[node])
    uml.define_class("MergeNode", superclasses=[node])
    uml.define_class("ForkNode", superclasses=[node])
    uml.define_class("JoinNode", superclasses=[node])

    action = uml.define_class("Action", superclasses=[node], abstract=True)
    opaque = uml.define_class(
        "OpaqueAction", superclasses=[action],
        doc="An atomic action described by its name/body.",
    )
    opaque.attribute("body", STRING)
    call = uml.define_class(
        "CallBehaviorAction", superclasses=[action],
        doc="Invokes another activity.",
    )
    call.reference("behavior", activity)

    object_node = uml.define_class(
        "ObjectNode", superclasses=[node],
        doc="Holds object tokens (data) flowing through the activity.",
    )
    object_node.attribute("type", STRING)

    uml.define_class("ControlFlow", superclasses=[edge])
    uml.define_class("ObjectFlow", superclasses=[edge])

    # -- requirements (SysML-flavoured) -----------------------------------------
    requirement = uml.define_class(
        "Requirement", superclasses=[packageable],
        doc="A SysML-like requirement with id and text (Fig. 5 diagrams).",
    )
    requirement.attribute("reqId", STRING, doc="The requirement's ID tag.")
    requirement.attribute("text", STRING, doc="The requirement statement.")
    requirement.reference(
        "derivedFrom", requirement, upper=MANY,
        doc="<<deriveReqt>> sources.",
    )
    requirement.reference(
        "refinedBy", packageable, upper=MANY,
        doc="Elements that <<refine>> this requirement.",
    )
    requirement.reference(
        "satisfiedBy", packageable, upper=MANY,
        doc="Elements that <<satisfy>> this requirement.",
    )
    requirement.reference(
        "verifiedBy", packageable, upper=MANY,
        doc="Elements (e.g. tests) that <<verify>> this requirement.",
    )
    requirement.reference(
        "tracedTo", packageable, upper=MANY, doc="Generic <<trace>> links."
    )

    # -- profiles ----------------------------------------------------------------
    profile = uml.define_class(
        "Profile", superclasses=[package],
        doc="A UML profile: a package of stereotypes extending metaclasses.",
    )
    stereotype = uml.define_class(
        "Stereotype", superclasses=[packageable],
        doc="Extends one or more UML metaclasses with tags and constraints.",
    )
    stereotype.attribute(
        "baseClasses", STRING, upper=MANY, lower=1,
        doc="Names of the UML metaclasses this stereotype extends.",
    )
    stereotype.attribute("doc", STRING, doc="Description (paper Table 3).")
    stereotype.attribute(
        "icon", STRING, doc="Optional diagram icon identifier."
    )
    profile.reference(
        "ownedStereotypes", stereotype, upper=MANY, containment=True,
        opposite="profile",
    )
    stereotype.reference("profile", profile)

    tag_definition = uml.define_class(
        "TagDefinition",
        superclasses=[named],
        doc="A tagged-value definition on a stereotype.",
    )
    tag_type = uml.define_enum(
        "TagType", ["string", "integer", "boolean", "real", "string_set"]
    )
    tag_definition.attribute("type", tag_type, default="string")
    tag_definition.attribute("required", BOOLEAN, default=False)
    tag_definition.attribute("defaultValue", STRING)
    stereotype.reference(
        "tagDefinitions", tag_definition, upper=MANY, containment=True
    )

    stereotype_constraint = uml.define_class(
        "StereotypeConstraint", superclasses=[named],
        doc="A well-formedness rule attached to a stereotype.",
    )
    stereotype_constraint.attribute(
        "expression", STRING,
        doc="OCL-lite text or the registered name of a Python rule.",
    )
    stereotype_constraint.attribute("description", STRING)
    stereotype.reference(
        "constraints", stereotype_constraint, upper=MANY, containment=True
    )

    application = uml.define_class(
        "StereotypeApplication", superclasses=[element],
        doc="One application of a stereotype to an element, with tag values.",
    )
    application.reference("stereotype", stereotype, lower=1)

    tag_value = uml.define_class(
        "TagValue", superclasses=[named],
        doc="A tagged value; exactly one of the typed slots is used.",
    )
    tag_value.attribute("stringValue", STRING)
    tag_value.attribute("integerValue", INTEGER)
    tag_value.attribute("booleanValue", BOOLEAN)
    tag_value.attribute("realValue", REAL)
    tag_value.attribute("stringValues", STRING, upper=MANY)
    application.reference(
        "tagValues", tag_value, upper=MANY, containment=True
    )

    return uml.resolve()


#: The UML metamodel package (singleton).
UML = build_uml_package()
global_registry.register(UML)


def _export(name: str):
    metaclass = UML.find_class(name)
    assert metaclass is not None, name
    return metaclass


Element = _export("Element")
Comment = _export("Comment")
NamedElement = _export("NamedElement")
PackageableElement = _export("PackageableElement")
Package = _export("Package")
Model = _export("Model")
Classifier = _export("Classifier")
Class = _export("Class")
Property = _export("Property")
Operation = _export("Operation")
Parameter = _export("Parameter")
Association = _export("Association")
Actor = _export("Actor")
UseCase = _export("UseCase")
Include = _export("Include")
Extend = _export("Extend")
Activity = _export("Activity")
ActivityNode = _export("ActivityNode")
ActivityEdge = _export("ActivityEdge")
ActivityPartition = _export("ActivityPartition")
InitialNode = _export("InitialNode")
ActivityFinalNode = _export("ActivityFinalNode")
FlowFinalNode = _export("FlowFinalNode")
DecisionNode = _export("DecisionNode")
MergeNode = _export("MergeNode")
ForkNode = _export("ForkNode")
JoinNode = _export("JoinNode")
Action = _export("Action")
OpaqueAction = _export("OpaqueAction")
CallBehaviorAction = _export("CallBehaviorAction")
ObjectNode = _export("ObjectNode")
ControlFlow = _export("ControlFlow")
ObjectFlow = _export("ObjectFlow")
Requirement = _export("Requirement")
Profile = _export("Profile")
Stereotype = _export("Stereotype")
TagDefinition = _export("TagDefinition")
StereotypeConstraint = _export("StereotypeConstraint")
StereotypeApplication = _export("StereotypeApplication")
TagValue = _export("TagValue")

"""Facade helpers for use case diagrams: actors, use cases, include/extend."""

from __future__ import annotations

from repro.core import MObject

from . import metamodel as M


def actor(owner: MObject, name: str) -> MObject:
    """Create an :class:`Actor` packaged in ``owner``."""
    new_actor = M.Actor.create(name=name)
    owner.packagedElements.append(new_actor)
    return new_actor


def use_case(owner: MObject, name: str) -> MObject:
    """Create a :class:`UseCase` packaged in ``owner``."""
    new_case = M.UseCase.create(name=name)
    owner.packagedElements.append(new_case)
    return new_case


def include(including: MObject, added: MObject) -> MObject:
    """``including`` <<include>>s ``added`` (both UseCases).

    This is the relationship the paper uses to attach ``InformationCase``
    use cases to ``WebProcess`` use cases and ``DQ_Requirement`` use cases
    to ``InformationCase`` use cases (Table 3).
    """
    link = M.Include.create(addition=added)
    including.includes.append(link)
    return link


def extend(extension: MObject, extended: MObject, condition: str = "") -> MObject:
    """``extension`` <<extend>>s ``extended``."""
    link = M.Extend.create(extendedCase=extended)
    if condition:
        link.condition = condition
    extension.extends.append(link)
    return link


def communicates(actor_element: MObject, case: MObject) -> MObject:
    """Associate an actor with a use case (the diagram's plain line)."""
    if actor_element not in case.actors:
        case.actors.append(actor_element)
    return case


def included_cases(case: MObject) -> list[MObject]:
    """Use cases that ``case`` includes (following Include.addition)."""
    return [link.addition for link in case.includes]


def including_cases(root: MObject, case: MObject) -> list[MObject]:
    """Use cases anywhere under ``root`` that include ``case``."""
    from repro.core import objects_of_type

    result = []
    for other in objects_of_type(root, M.UseCase):
        if case in included_cases(other) and other not in result:
            result.append(other)
    return result


def extended_cases(case: MObject) -> list[MObject]:
    return [link.extendedCase for link in case.extends]

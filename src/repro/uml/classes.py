"""Facade helpers for class diagrams: classes, properties, operations,
associations."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import MObject

from . import metamodel as M


def class_(owner: MObject, name: str, is_abstract: bool = False) -> MObject:
    """Create a :class:`Class` packaged in ``owner``."""
    cls = M.Class.create(name=name, isAbstract=is_abstract)
    owner.packagedElements.append(cls)
    return cls


def property_(
    cls: MObject,
    name: str,
    type: str = "String",
    lower: int = 0,
    upper: int = 1,
    default: Optional[str] = None,
) -> MObject:
    """Add an owned attribute to a class."""
    prop = M.Property.create(
        name=name, type=type, lowerValue=lower, upperValue=upper
    )
    if default is not None:
        prop.defaultValue = default
    cls.ownedAttributes.append(prop)
    return prop


def operation(
    cls: MObject,
    name: str,
    return_type: Optional[str] = None,
    parameters: Sequence[tuple[str, str]] = (),
    body: Optional[str] = None,
) -> MObject:
    """Add an owned operation; ``parameters`` is ``[(name, type), ...]``."""
    op = M.Operation.create(name=name)
    if return_type is not None:
        op.returnType = return_type
    if body is not None:
        op.body = body
    for param_name, param_type in parameters:
        op.ownedParameters.append(
            M.Parameter.create(name=param_name, type=param_type)
        )
    cls.ownedOperations.append(op)
    return op


def generalize(subclass: MObject, superclass: MObject) -> MObject:
    """Record ``subclass`` specializing ``superclass``."""
    if superclass not in subclass.superClasses:
        subclass.superClasses.append(superclass)
    return subclass


def associate(
    owner: MObject,
    source: MObject,
    target: MObject,
    name: str = "",
    source_role: str = "",
    target_role: str = "",
    source_multiplicity: str = "1",
    target_multiplicity: str = "1",
    navigable: bool = True,
) -> MObject:
    """Create an association packaged in ``owner`` between two classifiers."""
    assoc = M.Association.create(
        name=name,
        source=source,
        target=target,
        sourceMultiplicity=source_multiplicity,
        targetMultiplicity=target_multiplicity,
        navigable=navigable,
    )
    if source_role:
        assoc.sourceRole = source_role
    if target_role:
        assoc.targetRole = target_role
    owner.packagedElements.append(assoc)
    return assoc


def associations_of(owner: MObject, classifier: MObject) -> list[MObject]:
    """All associations in ``owner`` touching ``classifier`` (either end)."""
    return [
        assoc
        for assoc in owner.packagedElements
        if assoc.is_instance_of(M.Association)
        and (assoc.source is classifier or assoc.target is classifier)
    ]


def associated_peers(owner: MObject, classifier: MObject) -> list[MObject]:
    """Classifiers linked to ``classifier`` by any association in ``owner``."""
    peers = []
    for assoc in associations_of(owner, classifier):
        other = assoc.target if assoc.source is classifier else assoc.source
        if other not in peers:
            peers.append(other)
    return peers

"""``repro.uml`` — the UML 2.x subset WebRE and DQ_WebRE build on.

The metamodel itself lives in :mod:`repro.uml.metamodel` (defined over the
:mod:`repro.core` kernel and registered globally); the sibling modules are
thin, Pythonic facades for authoring models:

* :mod:`repro.uml.elements` — models, packages, comments;
* :mod:`repro.uml.classes` — class diagrams;
* :mod:`repro.uml.usecases` — use case diagrams;
* :mod:`repro.uml.activities` — activity diagrams;
* :mod:`repro.uml.requirements` — SysML-style requirement diagrams;
* :mod:`repro.uml.profiles` — profiles, stereotypes, tagged values.
"""

from . import activities, classes, elements, profiles, requirements, usecases
from .metamodel import UML

__all__ = [
    "UML",
    "activities",
    "classes",
    "elements",
    "profiles",
    "requirements",
    "usecases",
]

"""A second full case study: a web-shop customer portal (BI motivation).

The paper's introduction motivates DQ_WebRE with business-intelligence web
applications: *"more and more companies ... managing a large amount of data
through Web applications ... taking advantage of business intelligence
applications"*.  Where the EasyChair study (§4) exercises Confidentiality /
Completeness / Traceability / Precision, this case study covers the *other*
half of the validator spectrum:

* **Accuracy** — email and postcode formats on customer registration;
* **Credibility** — orders only from trusted sales channels;
* **Consistency** — order totals must equal quantity × unit price;
* **Currentness** — imported customer records must be recent;
* plus Completeness and Precision on the order form.

Two information cases (customer registration, order placement) feed two
generated forms; the design model is *refined* after transformation — the
PIM enrichment step MDA expects of a designer — to carry the format
patterns and trusted sources the metamodel deliberately leaves open.
"""

from __future__ import annotations

from typing import Optional

from repro.core import MObject
from repro.dq.metadata import Clock
from repro.dqwebre import DQWebREBuilder
from repro.runtime.app import WebApp
from repro.runtime.dqengine import build_app as build_app_from_design
from repro.runtime.dqengine import build_baseline_app
from repro.transform import design as D
from repro.transform.req2design import transform

CUSTOMER_FIELDS = (
    "customer_id", "full_name", "email", "postcode", "channel",
    "profile_age_days",
)
ORDER_FIELDS = (
    "order_id", "customer_id", "sku", "quantity", "unit_price_cents",
    "total_cents", "channel",
)

#: Format patterns for the Accuracy requirement (designer refinement).
FORMAT_PATTERNS = {
    "email": r"[^@\s]+@[^@\s]+\.[A-Za-z]{2,}",
    "postcode": r"\d{5}",
}

#: Channels the Credibility requirement trusts.
TRUSTED_CHANNELS = ("webshop", "store", "phone")

#: Precision bounds on the order form.
ORDER_BOUNDS = {
    "quantity": (1, 100),
    "unit_price_cents": (1, 500_000),
}

#: Currentness: imported customer profiles older than this are stale.
MAX_PROFILE_AGE_DAYS = 365

#: The Consistency DQSR, stated declaratively (OCL-lite over the record).
ORDER_CONSISTENCY_RULES = (
    "self.total_cents = self.quantity * self.unit_price_cents",
)

CUSTOMER_PATH = "/manage-customer-data"
ORDER_PATH = "/manage-order-data"

USERS = (
    ("clerk", 1, ("sales",)),
    ("analyst", 1, ("bi",)),
    ("integration_bot", 1, ("etl",)),
    ("visitor", 0, ()),
)


def build_requirements_model() -> MObject:
    """The web-shop DQ_WebRE requirements model."""
    builder = DQWebREBuilder("WebShop")
    clerk = builder.web_user("Sales clerk", "registers customers and orders")
    builder.web_user("Marketing analyst", "runs BI campaigns")

    customer = builder.content("customer", CUSTOMER_FIELDS)
    order = builder.content("order", ORDER_FIELDS)

    customer_page = builder.web_ui("customer registration page",
                                   CUSTOMER_FIELDS)
    order_page = builder.web_ui("order entry page", ORDER_FIELDS)

    register = builder.web_process("Register customer", user=clerk)
    builder.user_transaction(register, "enter customer details", [customer])
    place_order = builder.web_process("Place order", user=clerk)
    builder.user_transaction(place_order, "enter order lines", [order])

    customer_case = builder.information_case(
        "Manage customer data", [register], [customer], user=clerk
    )
    order_case = builder.information_case(
        "Manage order data", [place_order], [order], user=clerk
    )

    builder.dq_requirement(
        "Valid customer contact data", customer_case, "Accuracy",
        "emails and postcodes must be syntactically valid",
    )
    builder.dq_requirement(
        "Fresh customer profiles", customer_case, "Currentness",
        "imported customer profiles must not be stale",
    )
    builder.dq_requirement(
        "Complete orders", order_case, "Completeness",
        "every order field must be filled in",
    )
    builder.dq_requirement(
        "Plausible order lines", order_case, "Precision",
        "quantities and unit prices must stay within policy",
    )
    builder.dq_requirement(
        "Trusted sales channels", order_case, "Credibility",
        "orders may only originate from trusted channels",
    )
    builder.dq_requirement(
        "Coherent order totals", order_case, "Consistency",
        "total_cents must equal quantity times unit_price_cents",
    )

    customer_validator = builder.dq_validator(
        "CustomerValidator",
        ["check_format", "check_currentness"],
        validates=[customer_page],
    )
    order_validator = builder.dq_validator(
        "OrderValidator",
        ["check_completeness", "check_precision", "check_credibility",
         "check_consistency"],
        validates=[order_page],
    )
    for field, (lower, upper) in ORDER_BOUNDS.items():
        builder.dq_constraint(
            f"bounds of {field}", order_validator, [field], lower, upper
        )
    builder.dq_metadata(
        "shop provenance",
        ("stored_by", "stored_date", "last_modified_by",
         "last_modified_date"),
        contents=[customer, order],
    )
    return builder.model


def refine_design(design: MObject) -> MObject:
    """The designer's PIM enrichment pass.

    The DQ_WebRE metamodel captures *which* operations exist
    (``check_format``, ``check_credibility`` ...); the concrete patterns,
    trusted sources and ages are design-stage decisions.  This pass fills
    them in — exactly the manual refinement step the MDA literature places
    between automatic transformation and code generation.
    """
    for spec in design.validators:
        if spec.kind == "format":
            spec.set(
                "patterns",
                [f"{field}={pattern}"
                 for field, pattern in FORMAT_PATTERNS.items()],
            )
        elif spec.kind == "currentness":
            spec.max_age = MAX_PROFILE_AGE_DAYS
            spec.age_field = "profile_age_days"
        elif spec.kind == "credibility":
            spec.set("trusted_sources", list(TRUSTED_CHANNELS))
            spec.source_field = "channel"
        elif spec.kind == "consistency":
            spec.set("rules", list(ORDER_CONSISTENCY_RULES))
    return design


def build_design(model: Optional[MObject] = None) -> MObject:
    if model is None:
        model = build_requirements_model()
    return refine_design(transform(model).primary)


def build_app(clock: Optional[Clock] = None) -> WebApp:
    """The DQ-aware web-shop application, ready to serve.

    Everything — patterns, bounds, trusted channels, field names,
    consistency rules — comes from the (refined) design model; no code-side
    fix-ups remain, so the generated-source path behaves identically.
    """
    app = build_app_from_design(build_design(), clock=clock)
    for name, level, roles in USERS:
        app.add_user(name, level, roles)
    return app


def build_baseline(clock: Optional[Clock] = None) -> WebApp:
    app = build_baseline_app(build_design(), clock=clock)
    for name, level, roles in USERS:
        app.add_user(name, level, roles)
    return app


def valid_customer(**overrides) -> dict:
    record = {
        "customer_id": "C-1001",
        "full_name": "Grace Hopper",
        "email": "grace@example.org",
        "postcode": "02139",
        "channel": "webshop",
        "profile_age_days": 10,
    }
    record.update(overrides)
    return record


def valid_order(**overrides) -> dict:
    record = {
        "order_id": "O-5001",
        "customer_id": "C-1001",
        "sku": "BOOK-42",
        "quantity": 2,
        "unit_price_cents": 1999,
        "total_cents": 3998,
        "channel": "webshop",
    }
    record.update(overrides)
    return record

"""The EasyChair case study — the paper's §4, Figs. 6 and 7.

The paper demonstrates DQ_WebRE on the EasyChair conference system: the
use case **"Add new review to submission"** performed by a **PC member**,
with four data quality requirements on the review data:

1. **Confidentiality** — "check that data will be accessed only by
   authorized users";
2. **Completeness** — "verify that all data have been completed by
   reviewer";
3. **Traceability** — "check who is able to add or change a revision";
4. **Precision** — "validate the score assigned to each topic of revision".

This module builds the case study twice, matching the paper's two artifacts:

* :func:`build_requirements_model` — the **extended-metamodel** flavour
  (instances of :mod:`repro.dqwebre.metamodel`), ready for validation,
  transformation and code generation;
* :func:`build_uml_model` — the **UML + profile** flavour: the Fig. 6 use
  case diagram and the Fig. 7 activity diagram with DQ_WebRE stereotypes
  applied, ready for diagram rendering and profile validation;

plus :func:`build_app`, the runnable DQ-aware application generated from
the requirements model.
"""

from __future__ import annotations

from typing import Optional

from repro.core import MObject
from repro.dq.metadata import Clock
from repro.dqwebre import DQWebREBuilder
from repro.dqwebre.profile import build_dqwebre_profile
from repro.runtime.app import WebApp
from repro.runtime.dqengine import build_app as build_app_from_design
from repro.runtime.dqengine import build_baseline_app
from repro.transform.req2design import transform
from repro.uml import activities, classes, elements, profiles, requirements, usecases
from repro.webre.profile import build_webre_profile

#: The review form fields, grouped by the Content element that stores them.
REVIEWER_INFO_FIELDS = ("first_name", "last_name", "email_address")
EVALUATION_SCORE_FIELDS = ("overall_evaluation", "reviewer_confidence")
ADDITIONAL_SCORE_FIELDS = ("originality", "significance", "presentation")
DETAIL_FIELDS = ("detailed_comments",)
PC_COMMENT_FIELDS = ("confidential_comments_for_pc",)

#: Every field of the "Add new review" page, in form order.
ALL_REVIEW_FIELDS = (
    REVIEWER_INFO_FIELDS
    + EVALUATION_SCORE_FIELDS
    + ADDITIONAL_SCORE_FIELDS
    + DETAIL_FIELDS
    + PC_COMMENT_FIELDS
)

#: The DQConstraint bounds (EasyChair's usual scales).
SCORE_BOUNDS = {
    "overall_evaluation": (-3, 3),
    "reviewer_confidence": (1, 5),
    "originality": (1, 5),
    "significance": (1, 5),
    "presentation": (1, 5),
}

#: The traceability + confidentiality metadata of Fig. 7.
TRACEABILITY_METADATA = (
    "stored_by",
    "stored_date",
    "last_modified_by",
    "last_modified_date",
)
CONFIDENTIALITY_METADATA = ("security_level", "available_to")

#: The create-review endpoint (derived from the InformationCase name).
REVIEW_PATH = "/add-all-data-as-result-of-review"
REVIEW_LIST_PATH = "/add-all-data-as-result-of-review/list"


# ---------------------------------------------------------------------------
# Metamodel flavour (DQWebREModel)
# ---------------------------------------------------------------------------


def build_requirements_model() -> MObject:
    """The EasyChair DQ_WebRE requirements model (metamodel flavour)."""
    builder = DQWebREBuilder("EasyChair")

    author = builder.web_user("Author", "submits papers")
    pc_member = builder.web_user("PC member", "reviews assigned papers")
    chair = builder.web_user("Chair", "manages the programme committee")

    reviewer_info = builder.content(
        "information of reviewer", REVIEWER_INFO_FIELDS
    )
    evaluation_scores = builder.content(
        "evaluation scores", EVALUATION_SCORE_FIELDS
    )
    additional_scores = builder.content(
        "additional scores", ADDITIONAL_SCORE_FIELDS
    )
    review_details = builder.content(
        "detailed information of review", DETAIL_FIELDS
    )
    pc_comments = builder.content("comments for PC", PC_COMMENT_FIELDS)
    submission = builder.content(
        "submission", ("title", "abstract", "authors")
    )

    review_page = builder.web_ui("webpage of New Review", ALL_REVIEW_FIELDS)
    submissions_page = builder.web_ui(
        "webpage of Submissions", ("title", "authors")
    )
    menu_node = builder.node("PC member menu")
    submissions_node = builder.node(
        "assigned submissions", contents=[submission], ui=submissions_page
    )
    review_node = builder.node(
        "new review", contents=[reviewer_info, evaluation_scores],
        ui=review_page,
    )

    navigation = builder.navigation(
        "Browse to new review", target=review_node, user=pc_member
    )
    builder.browse(
        navigation, "open assigned submissions",
        source=menu_node, target=submissions_node,
    )
    builder.browse(
        navigation, "open review form",
        source=submissions_node, target=review_node,
    )

    builder.web_process("Submit paper", user=author)
    builder.web_process("Assign papers to reviewers", user=chair)
    review_process = builder.web_process(
        "Add new review to submission", user=pc_member
    )
    transactions = [
        builder.user_transaction(
            review_process, "add reviewer information", [reviewer_info]
        ),
        builder.user_transaction(
            review_process, "add evaluation scores", [evaluation_scores]
        ),
        builder.user_transaction(
            review_process, "add additional scores", [additional_scores]
        ),
        builder.user_transaction(
            review_process, "add detailed information of review",
            [review_details],
        ),
        builder.user_transaction(
            review_process, "add comments for PC", [pc_comments]
        ),
    ]
    builder.search(
        review_process, "find submission", queries=submission,
        target=submissions_node, parameters=["title"],
    )

    information_case = builder.information_case(
        "Add all data as result of review",
        processes=[review_process],
        contents=[
            reviewer_info,
            evaluation_scores,
            additional_scores,
            review_details,
            pc_comments,
        ],
        user=pc_member,
    )

    builder.dq_requirement(
        "Confidentiality of review data",
        information_case,
        characteristic="Confidentiality",
        statement="check that data will be accessed only by authorized users",
    )
    builder.dq_requirement(
        "Completeness of review data",
        information_case,
        characteristic="Completeness",
        statement="verify that all data have been completed by reviewer",
    )
    builder.dq_requirement(
        "Traceability of review data",
        information_case,
        characteristic="Traceability",
        statement="check who is able to add or change a revision",
    )
    builder.dq_requirement(
        "Precision of evaluation scores",
        information_case,
        characteristic="Precision",
        statement="validate the score assigned to each topic of revision",
    )

    metadata = builder.dq_metadata(
        "Review DQ metadata",
        TRACEABILITY_METADATA + CONFIDENTIALITY_METADATA,
        contents=[reviewer_info, evaluation_scores, additional_scores,
                  review_details, pc_comments],
    )
    validator = builder.dq_validator(
        "Review DQ validator",
        ["check_completeness", "check_precision"],
        validates=[review_page],
    )
    for field, (lower, upper) in SCORE_BOUNDS.items():
        builder.dq_constraint(
            f"bounds of {field}", validator, [field], lower, upper
        )
    builder.add_dq_metadata(
        "store metadata of traceability",
        metadata,
        TRACEABILITY_METADATA,
        after=transactions,
    )
    builder.add_dq_metadata(
        "add metadata about confidentiality",
        metadata,
        CONFIDENTIALITY_METADATA,
        after=transactions,
    )
    return builder.model


# ---------------------------------------------------------------------------
# UML + profile flavour (Figs. 6 and 7)
# ---------------------------------------------------------------------------


def build_uml_model() -> dict:
    """The EasyChair UML model with DQ_WebRE stereotypes applied.

    Returns a dict with the model root and the named elements the figures
    and tests need: ``model``, ``webre_profile``, ``dqwebre_profile``,
    ``usecases_package`` (Fig. 6), ``activity`` (Fig. 7),
    ``classes_package``, ``requirements_package``.
    """
    webre_profile = build_webre_profile()
    dqwebre_profile = build_dqwebre_profile()

    model = elements.model("EasyChair")
    elements.apply_profile(model, webre_profile)
    elements.apply_profile(model, dqwebre_profile)
    model.packagedElements.append(webre_profile)
    model.packagedElements.append(dqwebre_profile)

    def webre(name: str):
        return profiles.find_stereotype(webre_profile, name)

    def dq(name: str):
        return profiles.find_stereotype(dqwebre_profile, name)

    # ---- Fig. 6: the use case diagram ---------------------------------
    cases = elements.package(model, "Use cases")
    pc_member = usecases.actor(cases, "PC member")
    profiles.apply_stereotype(pc_member, webre("WebUser"))

    add_review = usecases.use_case(cases, "Add new review to submission")
    profiles.apply_stereotype(add_review, webre("WebProcess"))
    usecases.communicates(pc_member, add_review)

    information_case = usecases.use_case(
        cases, "Add all data as result of review"
    )
    profiles.apply_stereotype(information_case, dq("InformationCase"))
    usecases.include(add_review, information_case)

    dq_requirements = {}
    for name, characteristic, statement in (
        (
            "Check that data will be accessed only by authorized users",
            "Confidentiality",
            "check that data will be accessed only by authorized users",
        ),
        (
            "Verify that all data have been completed by reviewer",
            "Completeness",
            "verify that all data have been completed by reviewer",
        ),
        (
            "Check who is able to add or change a revision",
            "Traceability",
            "check who is able to add or change a revision",
        ),
        (
            "Validate the score assigned to each topic of revision",
            "Precision",
            "validate the score assigned to each topic of revision",
        ),
    ):
        requirement_case = usecases.use_case(cases, name)
        profiles.apply_stereotype(
            requirement_case, dq("DQ_Requirement"),
            characteristic=characteristic,
        )
        usecases.include(requirement_case, information_case)
        dq_requirements[characteristic] = requirement_case

    # The Fig. 6 comment listing the data involved.
    elements.comment(
        information_case,
        "data: first_name, last_name, email_address, overall_evaluation, "
        "reviewer_confidence, ...",
    )

    # ---- Fig. 7: the activity diagram -------------------------------------
    behaviour = elements.package(model, "Behaviour")
    activity = activities.activity(behaviour, "Add new review to submission")
    start = activities.initial(activity)
    transactions = []
    for name in (
        "add reviewer information",
        "add evaluation scores",
        "add additional scores",
        "add detailed information of review",
        "add comments for PC",
    ):
        action = activities.action(activity, name)
        profiles.apply_stereotype(action, webre("UserTransaction"))
        transactions.append(action)

    store_traceability = activities.action(
        activity, "store metadata of traceability"
    )
    profiles.apply_stereotype(store_traceability, dq("Add_DQ_Metadata"))
    add_confidentiality = activities.action(
        activity, "add metadata about confidentiality"
    )
    profiles.apply_stereotype(add_confidentiality, dq("Add_DQ_Metadata"))

    verify_precision = activities.action(activity, "Verify Precision of data")
    check_completeness = activities.action(
        activity, "Check Completeness of entered data"
    )
    webpage = activities.object_node(
        activity, "webpage of New Review", type="WebUI"
    )
    profiles.apply_stereotype(webpage, webre("WebUI"))
    end = activities.final(activity)

    activities.chain(
        activity,
        start,
        *transactions,
        store_traceability,
        add_confidentiality,
        verify_precision,
        check_completeness,
        end,
    )
    activities.object_flow(activity, webpage, verify_precision)
    activities.object_flow(activity, webpage, check_completeness)

    # ---- the class diagram backing Figs. 4/7 ---------------------------------
    structure = elements.package(model, "Structure")
    reviewer_info_class = classes.class_(structure, "information of reviewer")
    profiles.apply_stereotype(reviewer_info_class, webre("Content"))
    for field in REVIEWER_INFO_FIELDS:
        classes.property_(reviewer_info_class, field, "String")
    scores_class = classes.class_(structure, "evaluation scores")
    profiles.apply_stereotype(scores_class, webre("Content"))
    for field in EVALUATION_SCORE_FIELDS:
        classes.property_(scores_class, field, "Integer")

    metadata_class = classes.class_(structure, "Review DQ metadata")
    profiles.apply_stereotype(
        metadata_class, dq("DQ_Metadata"),
        DQ_metadata=list(TRACEABILITY_METADATA + CONFIDENTIALITY_METADATA),
    )
    for field in TRACEABILITY_METADATA:
        classes.property_(metadata_class, field, "String")
    classes.associate(
        structure, metadata_class, reviewer_info_class, name="annotates"
    )
    classes.associate(
        structure, metadata_class, scores_class, name="annotates"
    )

    validator_class = classes.class_(structure, "Review DQ validator")
    profiles.apply_stereotype(validator_class, dq("DQ_Validator"))
    classes.operation(validator_class, "check_completeness", "Boolean")
    classes.operation(validator_class, "check_precision", "Boolean")

    webpage_class = classes.class_(structure, "webpage of New Review")
    profiles.apply_stereotype(webpage_class, webre("WebUI"))
    classes.associate(
        structure, validator_class, webpage_class, name="validates"
    )

    constraint_class = classes.class_(structure, "score bounds")
    profiles.apply_stereotype(
        constraint_class, dq("DQConstraint"),
        DQConstraint=["overall_evaluation"],
        lower_bound=-3,
        upper_bound=3,
    )
    classes.associate(
        structure, constraint_class, validator_class, name="restricts"
    )

    # ---- the Fig. 5-style requirements diagram -------------------------------
    reqs = elements.package(model, "DQ requirement specifications")
    spec_elements = {}
    for index, (characteristic, case) in enumerate(
        sorted(dq_requirements.items()), start=1
    ):
        spec = requirements.requirement(
            reqs,
            f"DQ spec {characteristic}",
            req_id=str(index),
            text=case.name,
        )
        profiles.apply_stereotype(
            spec, dq("DQ_Req_Specification"), ID=index, Text=case.name
        )
        requirements.refine(spec, case)
        spec_elements[characteristic] = spec

    return {
        "model": model,
        "webre_profile": webre_profile,
        "dqwebre_profile": dqwebre_profile,
        "usecases_package": cases,
        "activity": activity,
        "classes_package": structure,
        "requirements_package": reqs,
        "information_case": information_case,
        "web_process": add_review,
        "dq_requirements": dq_requirements,
        "specs": spec_elements,
    }


# ---------------------------------------------------------------------------
# The runnable application
# ---------------------------------------------------------------------------

#: The user accounts of the running case study: (name, level, roles).
USERS = (
    ("chair", 2, ("chair",)),
    ("pc_member_1", 1, ("pc",)),
    ("pc_member_2", 1, ("pc",)),
    ("author_1", 0, ("author",)),
    ("outsider", 0, ()),
)


def build_design(model: Optional[MObject] = None) -> MObject:
    """Transform the requirements model into the design (PIM) model."""
    if model is None:
        model = build_requirements_model()
    return transform(model).primary


def build_app(clock: Optional[Clock] = None) -> WebApp:
    """The DQ-aware EasyChair review application, users registered."""
    app = build_app_from_design(build_design(), clock=clock)
    for name, level, roles in USERS:
        app.add_user(name, level, roles)
    return app


def build_baseline(clock: Optional[Clock] = None) -> WebApp:
    """The same application without any DQ mechanism (the §1 status quo)."""
    app = build_baseline_app(build_design(), clock=clock)
    for name, level, roles in USERS:
        app.add_user(name, level, roles)
    return app


def complete_review(overall: int = 2, confidence: int = 4) -> dict:
    """A fully populated, in-bounds review submission."""
    return {
        "first_name": "Ada",
        "last_name": "Lovelace",
        "email_address": "ada@example.org",
        "overall_evaluation": overall,
        "reviewer_confidence": confidence,
        "originality": 4,
        "significance": 4,
        "presentation": 3,
        "detailed_comments": "Sound methodology; results reproduce.",
        "confidential_comments_for_pc": "Accept; minor revisions only.",
    }

"""``repro.casestudy`` — the EasyChair case study (paper §4) and workloads."""

from . import easychair, webshop, workloads
from .easychair import (
    ALL_REVIEW_FIELDS,
    REVIEW_LIST_PATH,
    REVIEW_PATH,
    SCORE_BOUNDS,
    build_app,
    build_baseline,
    build_design,
    build_requirements_model,
    build_uml_model,
    complete_review,
)
from .workloads import (
    ReviewWorkload,
    Submission,
    WorkloadOutcome,
    compare_dq_vs_baseline,
)

__all__ = [
    "easychair", "webshop", "workloads",
    "build_requirements_model", "build_uml_model", "build_design",
    "build_app", "build_baseline", "complete_review",
    "ALL_REVIEW_FIELDS", "SCORE_BOUNDS", "REVIEW_PATH", "REVIEW_LIST_PATH",
    "ReviewWorkload", "Submission", "WorkloadOutcome",
    "compare_dq_vs_baseline",
]

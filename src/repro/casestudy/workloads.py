"""Synthetic review-submission workloads with controlled DQ defects.

The paper has no measured workload (it is a methodology paper); to exercise
the generated application end-to-end we synthesize review submissions with
seeded, rate-controlled defect injection:

* ``missing_field`` — a required field left blank (Completeness violation);
* ``out_of_range`` — a score outside its DQConstraint bounds (Precision);
* ``unauthorized`` — submitted by a user without clearance
  (Confidentiality).

Determinism: everything flows from ``random.Random(seed)``, so workloads —
and therefore test results and benchmark series — are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.errors import AuthorizationError, DataQualityViolation
from repro.runtime.app import WebApp

from .easychair import ALL_REVIEW_FIELDS, SCORE_BOUNDS, complete_review

#: Users allowed to write reviews (clearance >= 1) and users who are not.
AUTHORIZED_USERS = ("pc_member_1", "pc_member_2", "chair")
UNAUTHORIZED_USERS = ("author_1", "outsider")


@dataclass(frozen=True)
class Submission:
    """One generated review submission and its injected defects."""

    user: str
    data: dict
    defects: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.defects


@dataclass
class WorkloadOutcome:
    """Tally of how the application treated a workload."""

    submitted: int = 0
    accepted: int = 0
    rejected_dq: int = 0
    rejected_auth: int = 0
    false_accepts: int = 0   # defective submissions that got stored
    false_rejects: int = 0   # clean submissions that were refused
    per_defect_caught: dict = field(default_factory=dict)

    @property
    def catch_rate(self) -> float:
        """Fraction of defective submissions the application refused."""
        caught = self.rejected_dq + self.rejected_auth
        defective = caught + self.false_accepts
        if defective == 0:
            return 1.0
        return caught / defective

    def render(self) -> str:
        return (
            f"{self.submitted} submitted: {self.accepted} accepted, "
            f"{self.rejected_dq} DQ-rejected, "
            f"{self.rejected_auth} auth-rejected; "
            f"{self.false_accepts} defective accepted, "
            f"{self.false_rejects} clean refused "
            f"(catch rate {self.catch_rate:.0%})"
        )


class ReviewWorkload:
    """Generates review submissions with rate-controlled defects."""

    DEFECTS = ("missing_field", "out_of_range", "unauthorized")

    def __init__(
        self,
        seed: int = 7,
        missing_rate: float = 0.15,
        out_of_range_rate: float = 0.15,
        unauthorized_rate: float = 0.10,
    ):
        for rate in (missing_rate, out_of_range_rate, unauthorized_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("defect rates must lie in [0, 1]")
        self._rng = random.Random(seed)
        self.missing_rate = missing_rate
        self.out_of_range_rate = out_of_range_rate
        self.unauthorized_rate = unauthorized_rate

    def generate(self, count: int) -> Iterator[Submission]:
        """Yield ``count`` submissions, defects injected independently."""
        rng = self._rng
        for index in range(count):
            data = complete_review(
                overall=rng.randint(-3, 3),
                confidence=rng.randint(1, 5),
            )
            data["detailed_comments"] = f"Review body #{index}"
            defects: list[str] = []
            user = rng.choice(AUTHORIZED_USERS)
            if rng.random() < self.missing_rate:
                victim = rng.choice(ALL_REVIEW_FIELDS)
                data[victim] = None
                defects.append("missing_field")
            if rng.random() < self.out_of_range_rate:
                score_field = rng.choice(sorted(SCORE_BOUNDS))
                lower, upper = SCORE_BOUNDS[score_field]
                data[score_field] = upper + rng.randint(1, 10)
                defects.append("out_of_range")
            if rng.random() < self.unauthorized_rate:
                user = rng.choice(UNAUTHORIZED_USERS)
                defects.append("unauthorized")
            yield Submission(user, data, tuple(defects))

    def run(
        self,
        app: WebApp,
        count: int,
        form_name: Optional[str] = None,
    ) -> WorkloadOutcome:
        """Feed ``count`` submissions through ``app``; tally the outcomes."""
        form = form_name or app.forms[0].name
        outcome = WorkloadOutcome()
        for submission in self.generate(count):
            outcome.submitted += 1
            try:
                app.submit(form, submission.data, submission.user)
            except DataQualityViolation:
                outcome.rejected_dq += 1
                self._tally_caught(outcome, submission)
                if submission.clean:
                    outcome.false_rejects += 1
            except AuthorizationError:
                outcome.rejected_auth += 1
                self._tally_caught(outcome, submission)
                if submission.clean:
                    outcome.false_rejects += 1
            else:
                outcome.accepted += 1
                if not submission.clean:
                    outcome.false_accepts += 1
        return outcome

    @staticmethod
    def _tally_caught(outcome: WorkloadOutcome, submission: Submission) -> None:
        for defect in submission.defects:
            outcome.per_defect_caught[defect] = (
                outcome.per_defect_caught.get(defect, 0) + 1
            )


def compare_dq_vs_baseline(
    dq_app: WebApp,
    baseline_app: WebApp,
    count: int = 200,
    seed: int = 7,
) -> dict:
    """Run the same workload through both apps (the headline comparison).

    Expected shape: the DQ-aware app catches (422/403) what the baseline
    silently stores — the motivation of the paper's §1.
    """
    dq_outcome = ReviewWorkload(seed=seed).run(dq_app, count)
    baseline_outcome = ReviewWorkload(seed=seed).run(baseline_app, count)
    return {
        "dq": dq_outcome,
        "baseline": baseline_outcome,
        "defects_stored_by_baseline": baseline_outcome.false_accepts,
        "defects_stored_by_dq": dq_outcome.false_accepts,
    }

"""``repro.dq`` — the data quality domain substrate.

* :mod:`repro.dq.iso25012` — the ISO/IEC 25012 DQ model (paper Table 1);
* :mod:`repro.dq.dimensions` — the Strong/Lee/Wang user-facing dimensions;
* :mod:`repro.dq.requirements` — DQR / DQSR concepts and catalogue;
* :mod:`repro.dq.metadata` — DQ metadata records (traceability,
  confidentiality) and the deterministic clock;
* :mod:`repro.dq.metrics` — measurement functions per characteristic;
* :mod:`repro.dq.validators` — runtime validators (DQ_Validator operations);
* :mod:`repro.dq.streaming` — incremental mergeable accumulators behind
  the ``live=True`` scorecard/profiler paths (O(1) reads, no rescans).
"""

from . import (
    dimensions,
    iso25012,
    metadata,
    metrics,
    profiling,
    requirements,
    scorecard,
    streaming,
    validators,
)
from .iso25012 import ALL_CHARACTERISTICS, Category, Characteristic
from .metadata import Clock, DQMetadataRecord
from .profiling import (
    DataProfiler,
    FieldProfile,
    Suggestion,
    suggest_from_profiles,
)
from .scorecard import ScoreLine, Scorecard
from .streaming import (
    EntityAccumulator,
    FieldAccumulator,
    KMVSketch,
    LiveProfile,
    merge_accumulators,
    scores_close,
)
from .requirements import (
    DataQualityRequirement,
    DataQualitySoftwareRequirement,
    Mechanism,
    RequirementsCatalog,
    requirement_for,
)
from .validators import (
    CompletenessValidator,
    OclConsistencyValidator,
    ConsistencyValidator,
    CredibilityValidator,
    CurrentnessValidator,
    EnumValidator,
    Finding,
    FormatValidator,
    PrecisionValidator,
    UniquenessValidator,
    Validator,
    ValidatorSuite,
)

__all__ = [
    "iso25012", "dimensions", "requirements", "metadata", "metrics",
    "validators", "profiling", "scorecard", "streaming",
    "DataProfiler", "FieldProfile", "Suggestion", "suggest_from_profiles",
    "Scorecard", "ScoreLine",
    "EntityAccumulator", "FieldAccumulator", "KMVSketch", "LiveProfile",
    "merge_accumulators", "scores_close",
    "ALL_CHARACTERISTICS", "Category", "Characteristic",
    "Clock", "DQMetadataRecord",
    "DataQualityRequirement", "DataQualitySoftwareRequirement",
    "Mechanism", "RequirementsCatalog", "requirement_for",
    "Validator", "ValidatorSuite", "Finding",
    "CompletenessValidator", "PrecisionValidator", "FormatValidator",
    "OclConsistencyValidator",
    "EnumValidator", "ConsistencyValidator", "CurrentnessValidator",
    "CredibilityValidator", "UniquenessValidator",
]

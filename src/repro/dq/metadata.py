"""DQ metadata: the sidecar attributes the paper's ``DQ_Metadata`` class stores.

The case study (§4) derives two metadata families:

* **Traceability** — ``stored_by``, ``stored_date``, ``last_modified_by``,
  ``last_modified_date`` ("keep records about who stored the data ... as well
  as when it was stored the first time and modified the last time");
* **Confidentiality** — ``security_level``, ``available_to`` ("the
  information to be stored will only be accessed by users who meet a certain
  level of security defined previously in the application").

:class:`DQMetadataRecord` is the runtime record attached to every stored
content row by :mod:`repro.runtime.storage`; :class:`Clock` keeps timestamps
deterministic in tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: The canonical traceability metadata attributes (paper §4, requirement 3).
TRACEABILITY_ATTRIBUTES = (
    "stored_by",
    "stored_date",
    "last_modified_by",
    "last_modified_date",
)

#: The canonical confidentiality metadata attributes (paper §4, Fig. 7).
CONFIDENTIALITY_ATTRIBUTES = (
    "security_level",
    "available_to",
)


class Clock:
    """A deterministic, monotonically increasing logical clock.

    The simulated runtime has no business reading the wall clock (tests and
    benchmarks must be reproducible), so time is a counter of *ticks* that
    renders as an ISO-like stamp.
    """

    def __init__(self, start: int = 0):
        self._tick = start
        self._lock = threading.Lock()

    def now(self) -> int:
        """Advance and return the current tick."""
        with self._lock:
            self._tick += 1
            return self._tick

    def peek(self) -> int:
        """The last tick handed out, without advancing."""
        with self._lock:
            return self._tick

    def advance_to(self, tick: int) -> None:
        """Fast-forward to ``tick`` if it is ahead (crash recovery).

        Replayed durable state carries the ticks it was stamped with;
        the recovered clock must never hand one of them out again.
        Never moves backwards.
        """
        with self._lock:
            if tick > self._tick:
                self._tick = tick


@dataclass
class DQMetadataRecord:
    """The DQ metadata attached to one stored record."""

    stored_by: Optional[str] = None
    stored_date: Optional[int] = None
    last_modified_by: Optional[str] = None
    last_modified_date: Optional[int] = None
    security_level: int = 0
    available_to: set[str] = field(default_factory=set)
    extra: dict = field(default_factory=dict)

    # -- capture -------------------------------------------------------------

    def record_store(self, user: str, clock: Clock) -> "DQMetadataRecord":
        """Capture creation provenance (first write)."""
        tick = clock.now()
        self.stored_by = user
        self.stored_date = tick
        self.last_modified_by = user
        self.last_modified_date = tick
        return self

    def record_modification(self, user: str, clock: Clock) -> "DQMetadataRecord":
        """Capture update provenance (subsequent writes)."""
        self.last_modified_by = user
        self.last_modified_date = clock.now()
        return self

    def restrict(
        self, security_level: int = 0, available_to: Iterable[str] = ()
    ) -> "DQMetadataRecord":
        """Set confidentiality metadata."""
        if security_level < 0:
            raise ValueError("security_level must be non-negative")
        self.security_level = security_level
        self.available_to = set(available_to)
        return self

    def replica(self, extra: dict) -> "DQMetadataRecord":
        """A shallow copy with fresh ``available_to``/``extra``
        containers — ``dataclasses.replace`` semantics without the
        ``__init__`` round trip (the snapshot hot path clones one of
        these per matched record)."""
        clone = object.__new__(DQMetadataRecord)
        state = dict(self.__dict__)
        state["available_to"] = set(state["available_to"])
        state["extra"] = extra
        clone.__dict__ = state
        return clone

    # -- queries -----------------------------------------------------------------

    def accessible_by(self, user: str, user_level: int) -> bool:
        """Confidentiality check: clearance or explicit grant.

        A user may read the record when their clearance level reaches the
        record's ``security_level`` *or* they are explicitly listed in
        ``available_to``.
        """
        if user in self.available_to:
            return True
        return user_level >= self.security_level

    def was_modified(self) -> bool:
        """True when the record changed after its first store."""
        if self.stored_date is None or self.last_modified_date is None:
            return False
        return self.last_modified_date > self.stored_date

    def age(self, clock: Clock) -> Optional[int]:
        """Ticks since last modification; None when never stored."""
        if self.last_modified_date is None:
            return None
        return clock.peek() - self.last_modified_date

    def as_dict(self) -> dict:
        """Flat rendering used by audits and serialization."""
        return {
            "stored_by": self.stored_by,
            "stored_date": self.stored_date,
            "last_modified_by": self.last_modified_by,
            "last_modified_date": self.last_modified_date,
            "security_level": self.security_level,
            "available_to": sorted(self.available_to),
            **self.extra,
        }

    def to_state(self) -> dict:
        """A lossless, JSON-friendly rendering for durable snapshots.

        Unlike :meth:`as_dict` (which flattens ``extra`` into the result
        for human-facing audits), this keeps ``extra`` separate so
        :meth:`from_state` reconstructs the record exactly.
        """
        return {
            "stored_by": self.stored_by,
            "stored_date": self.stored_date,
            "last_modified_by": self.last_modified_by,
            "last_modified_date": self.last_modified_date,
            "security_level": self.security_level,
            "available_to": sorted(self.available_to),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DQMetadataRecord":
        return cls(
            stored_by=state.get("stored_by"),
            stored_date=state.get("stored_date"),
            last_modified_by=state.get("last_modified_by"),
            last_modified_date=state.get("last_modified_date"),
            security_level=state.get("security_level", 0),
            available_to=set(state.get("available_to", ())),
            extra=dict(state.get("extra", ())),
        )

    def attribute_names(self) -> list[str]:
        """All populated metadata attribute names."""
        populated = [
            name
            for name in TRACEABILITY_ATTRIBUTES
            if getattr(self, name) is not None
        ]
        if self.security_level or self.available_to:
            populated.extend(CONFIDENTIALITY_ATTRIBUTES)
        populated.extend(self.extra)
        return populated

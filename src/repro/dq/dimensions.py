"""The Strong/Lee/Wang data quality dimensions ("Data quality in context").

The paper states (§2.1) that *"when a user is specifying his/her data quality
requirements (DQR), s/he can choose those data quality dimensions from those
proposed in the model provided in (D. M. Strong et al. 1997)"* — the classic
fifteen dimensions in four categories — and that the chosen dimensions are
then translated into the ISO/IEC 25012 characteristics the software must
implement (Table 1).

This module provides that dimension catalogue plus the dimension →
characteristic mapping used by the DQR → DQSR derivation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from . import iso25012


class DimensionCategory(enum.Enum):
    """Strong, Lee & Wang's four conceptual categories."""

    INTRINSIC = "Intrinsic"
    CONTEXTUAL = "Contextual"
    REPRESENTATIONAL = "Representational"
    ACCESSIBILITY = "Accessibility"


@dataclass(frozen=True)
class Dimension:
    """One user-facing data quality dimension."""

    name: str
    category: DimensionCategory
    description: str

    def __str__(self) -> str:
        return self.name


def _dim(name: str, category: DimensionCategory, description: str) -> Dimension:
    return Dimension(name, category, description)


ACCURACY = _dim(
    "Accuracy", DimensionCategory.INTRINSIC,
    "The extent to which data are correct, reliable and certified.",
)
OBJECTIVITY = _dim(
    "Objectivity", DimensionCategory.INTRINSIC,
    "The extent to which data are unbiased and impartial.",
)
BELIEVABILITY = _dim(
    "Believability", DimensionCategory.INTRINSIC,
    "The extent to which data are accepted as true and credible.",
)
REPUTATION = _dim(
    "Reputation", DimensionCategory.INTRINSIC,
    "The extent to which data are trusted in terms of their source.",
)
VALUE_ADDED = _dim(
    "Value-added", DimensionCategory.CONTEXTUAL,
    "The extent to which data are beneficial for the task at hand.",
)
RELEVANCY = _dim(
    "Relevancy", DimensionCategory.CONTEXTUAL,
    "The extent to which data are applicable to the task at hand.",
)
TIMELINESS = _dim(
    "Timeliness", DimensionCategory.CONTEXTUAL,
    "The extent to which the age of the data is appropriate for the task.",
)
COMPLETENESS = _dim(
    "Completeness", DimensionCategory.CONTEXTUAL,
    "The extent to which data are of sufficient breadth, depth and scope.",
)
AMOUNT_OF_DATA = _dim(
    "Appropriate amount of data", DimensionCategory.CONTEXTUAL,
    "The extent to which the quantity of data fits the task at hand.",
)
INTERPRETABILITY = _dim(
    "Interpretability", DimensionCategory.REPRESENTATIONAL,
    "The extent to which data are in appropriate language and units.",
)
EASE_OF_UNDERSTANDING = _dim(
    "Ease of understanding", DimensionCategory.REPRESENTATIONAL,
    "The extent to which data are clear and easily comprehended.",
)
CONCISE_REPRESENTATION = _dim(
    "Concise representation", DimensionCategory.REPRESENTATIONAL,
    "The extent to which data are compactly represented.",
)
CONSISTENT_REPRESENTATION = _dim(
    "Consistent representation", DimensionCategory.REPRESENTATIONAL,
    "The extent to which data are presented in the same format.",
)
ACCESSIBILITY = _dim(
    "Accessibility", DimensionCategory.ACCESSIBILITY,
    "The extent to which data are available or easily retrievable.",
)
ACCESS_SECURITY = _dim(
    "Access security", DimensionCategory.ACCESSIBILITY,
    "The extent to which access to data is appropriately restricted.",
)

#: All fifteen Strong/Lee/Wang dimensions.
ALL_DIMENSIONS: tuple[Dimension, ...] = (
    ACCURACY,
    OBJECTIVITY,
    BELIEVABILITY,
    REPUTATION,
    VALUE_ADDED,
    RELEVANCY,
    TIMELINESS,
    COMPLETENESS,
    AMOUNT_OF_DATA,
    INTERPRETABILITY,
    EASE_OF_UNDERSTANDING,
    CONCISE_REPRESENTATION,
    CONSISTENT_REPRESENTATION,
    ACCESSIBILITY,
    ACCESS_SECURITY,
)

_BY_NAME = {d.name.lower(): d for d in ALL_DIMENSIONS}


def by_name(name: str) -> Dimension:
    """Case-insensitive lookup; raises KeyError with the catalogue listed."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown DQ dimension {name!r}; expected one of "
            f"{', '.join(d.name for d in ALL_DIMENSIONS)}"
        ) from None


def by_category(category: DimensionCategory) -> tuple[Dimension, ...]:
    return tuple(d for d in ALL_DIMENSIONS if d.category is category)


#: User-facing dimension -> ISO/IEC 25012 characteristics the software must
#: implement to satisfy it.  This mapping powers DQR -> DQSR derivation; it
#: follows the correspondences discussed in the DQ literature the paper
#: cites (Batini et al. 2009; ISO/IEC 25012).
DIMENSION_TO_CHARACTERISTICS: dict[Dimension, tuple] = {
    ACCURACY: (iso25012.ACCURACY, iso25012.PRECISION),
    OBJECTIVITY: (iso25012.CREDIBILITY,),
    BELIEVABILITY: (iso25012.CREDIBILITY,),
    REPUTATION: (iso25012.CREDIBILITY, iso25012.TRACEABILITY),
    VALUE_ADDED: (iso25012.EFFICIENCY,),
    RELEVANCY: (iso25012.COMPLIANCE,),
    TIMELINESS: (iso25012.CURRENTNESS,),
    COMPLETENESS: (iso25012.COMPLETENESS,),
    AMOUNT_OF_DATA: (iso25012.EFFICIENCY, iso25012.PRECISION),
    INTERPRETABILITY: (iso25012.UNDERSTANDABILITY,),
    EASE_OF_UNDERSTANDING: (iso25012.UNDERSTANDABILITY,),
    CONCISE_REPRESENTATION: (iso25012.PRECISION, iso25012.UNDERSTANDABILITY),
    CONSISTENT_REPRESENTATION: (iso25012.CONSISTENCY,),
    ACCESSIBILITY: (iso25012.ACCESSIBILITY, iso25012.AVAILABILITY),
    ACCESS_SECURITY: (iso25012.CONFIDENTIALITY,),
}


def characteristics_for(dimension: Dimension) -> tuple:
    """The ISO characteristics implementing a user-facing dimension."""
    return DIMENSION_TO_CHARACTERISTICS[dimension]


def dimensions_for(characteristic) -> tuple[Dimension, ...]:
    """Inverse mapping: dimensions served by an ISO characteristic."""
    return tuple(
        dimension
        for dimension, characteristics in DIMENSION_TO_CHARACTERISTICS.items()
        if characteristic in characteristics
    )

"""DQ scorecards: measure the quality of the data a running app holds.

The DQ assessment methodologies the paper builds on (Batini et al. 2007,
2009) pair *requirements* with continuous *monitoring*.  A
:class:`Scorecard` measures an application's stored records against the
same characteristics its DQ_WebRE model captured — closing the loop from
requirement to runtime evidence:

* **Completeness** — mean populated-field ratio over required fields;
* **Precision** — fraction of records within the declared bounds;
* **Currentness** — decay score from the metadata sidecar ages;
* **Traceability** — fraction of records with full provenance metadata;
* **Confidentiality** — fraction of restricted records actually carrying
  a security level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from . import metrics
from .metadata import Clock


@dataclass(frozen=True)
class ScoreLine:
    """One characteristic's score with its evidence summary."""

    characteristic: str
    score: float
    evidence: str

    def render(self) -> str:
        return f"{self.characteristic:16} {self.score:7.1%}  {self.evidence}"


class Scorecard:
    """Measures one entity of a running :class:`~repro.runtime.app.WebApp`.

    ``live=True`` serves every line from the store's streaming telemetry
    accumulators — O(fields) per read instead of a full record rescan —
    with the rescan retained as both the equivalence oracle (pinned by
    the ``live == rescan`` property tests) and the automatic fallback
    whenever the accumulator cannot answer exactly: telemetry disabled,
    or a bounded field spilled past exact distinct tracking.  Count-based
    lines (Precision, Traceability, Confidentiality) are bit-identical to
    the oracle; Completeness and Currentness sum in a different order and
    agree to ``math.isclose`` tolerance.  Evidence strings are
    byte-identical on both paths.
    """

    def __init__(
        self,
        app,
        entity: str,
        required_fields: Sequence[str] = (),
        bounds: Optional[Mapping[str, tuple]] = None,
        max_age: int = 100,
        live: bool = False,
    ):
        self.app = app
        self.entity = entity
        self.required_fields = tuple(required_fields)
        self.bounds = dict(bounds or {})
        self.max_age = max_age
        self.live = live

    def _stored(self):
        return self.app.store.entity(self.entity).all()

    def _entity_store(self):
        return self.app.store.entity(self.entity)

    def completeness(self) -> ScoreLine:
        if self.live:
            line = self._live_completeness()
            if line is not None:
                return line
        stored = self._stored()
        fields = self.required_fields or tuple(
            self.app.store.entity(self.entity).fields
        )
        score = metrics.dataset_completeness(
            [s.data for s in stored], fields
        )
        return ScoreLine(
            "Completeness", score,
            f"{len(stored)} record(s) x {len(fields)} required field(s)",
        )

    def _live_completeness(self) -> Optional[ScoreLine]:
        store = self._entity_store()
        fields = self.required_fields or tuple(store.fields)

        def read(accumulator):
            count = accumulator.records
            if count == 0 or not fields:
                return (1.0, count)
            present = sum(
                accumulator.present_of(name) for name in fields
            )
            return (present / (count * len(fields)), count)

        result = store.measure_telemetry(read)
        if result is None:
            return None
        score, count = result
        return ScoreLine(
            "Completeness", score,
            f"{count} record(s) x {len(fields)} required field(s)",
        )

    def precision(self) -> ScoreLine:
        if self.live:
            line = self._live_precision()
            if line is not None:
                return line
        stored = self._stored()
        if not self.bounds:
            return ScoreLine("Precision", 1.0, "no bounds declared")
        ratios = [
            metrics.precision_ratio(
                [s.data for s in stored], field, lower, upper
            )
            for field, (lower, upper) in self.bounds.items()
        ]
        score = sum(ratios) / len(ratios)
        return ScoreLine(
            "Precision", score, f"{len(self.bounds)} bounded field(s)"
        )

    def _live_precision(self) -> Optional[ScoreLine]:
        if not self.bounds:
            return ScoreLine("Precision", 1.0, "no bounds declared")

        def read(accumulator):
            count = accumulator.records
            ratios = []
            for name, (lower, upper) in self.bounds.items():
                if count == 0:
                    ratios.append(1.0)
                    continue
                field = accumulator.field_or_none(name)
                if field is None:
                    valid = 0
                else:
                    valid = field.count_in_bounds(lower, upper)
                    if valid is None:  # spilled: only the rescan is exact
                        return None
                ratios.append(valid / count)
            return sum(ratios) / len(ratios)

        score = self._entity_store().measure_telemetry(read)
        if score is None:
            return None
        return ScoreLine(
            "Precision", score, f"{len(self.bounds)} bounded field(s)"
        )

    def currentness(self) -> ScoreLine:
        if self.live:
            line = self._live_currentness()
            if line is not None:
                return line
        stored = self._stored()
        clock: Clock = self.app.clock
        if not stored:
            return ScoreLine("Currentness", 1.0, "no records")
        scores = [
            metrics.currentness_score(s.metadata.age(clock), self.max_age)
            for s in stored
        ]
        score = sum(scores) / len(scores)
        return ScoreLine(
            "Currentness", score, f"max age {self.max_age} ticks"
        )

    def _live_currentness(self) -> Optional[ScoreLine]:
        clock: Clock = self.app.clock

        def read(accumulator):
            count = accumulator.records
            if count == 0:
                return ScoreLine("Currentness", 1.0, "no records")
            total = accumulator.currentness_total(
                clock.peek(), self.max_age
            )
            return ScoreLine(
                "Currentness", total / count,
                f"max age {self.max_age} ticks",
            )

        return self._entity_store().measure_telemetry(read)

    def traceability(self) -> ScoreLine:
        if self.live:
            line = self._live_traceability()
            if line is not None:
                return line
        stored = self._stored()
        if not stored:
            return ScoreLine("Traceability", 1.0, "no records")
        traced = sum(
            1 for s in stored
            if s.metadata.stored_by and s.metadata.stored_date is not None
        )
        return ScoreLine(
            "Traceability", traced / len(stored),
            f"{traced}/{len(stored)} record(s) with provenance",
        )

    def _live_traceability(self) -> Optional[ScoreLine]:
        def read(accumulator):
            count = accumulator.records
            if count == 0:
                return ScoreLine("Traceability", 1.0, "no records")
            traced = accumulator.traced
            return ScoreLine(
                "Traceability", traced / count,
                f"{traced}/{count} record(s) with provenance",
            )

        return self._entity_store().measure_telemetry(read)

    def confidentiality(self) -> ScoreLine:
        if self.live:
            line = self._live_confidentiality()
            if line is not None:
                return line
        stored = self._stored()
        policy = self.app.policies.for_entity(self.entity)
        if policy.security_level == 0:
            return ScoreLine("Confidentiality", 1.0, "entity is unrestricted")
        if not stored:
            return ScoreLine("Confidentiality", 1.0, "no records")
        protected = sum(
            1 for s in stored
            if s.metadata.security_level >= policy.security_level
        )
        return ScoreLine(
            "Confidentiality", protected / len(stored),
            f"policy level {policy.security_level}",
        )

    def _live_confidentiality(self) -> Optional[ScoreLine]:
        policy = self.app.policies.for_entity(self.entity)
        if policy.security_level == 0:
            return ScoreLine("Confidentiality", 1.0, "entity is unrestricted")

        def read(accumulator):
            count = accumulator.records
            if count == 0:
                return ScoreLine("Confidentiality", 1.0, "no records")
            protected = accumulator.protected_count(policy.security_level)
            return ScoreLine(
                "Confidentiality", protected / count,
                f"policy level {policy.security_level}",
            )

        return self._entity_store().measure_telemetry(read)

    def lines(self) -> list[ScoreLine]:
        return [
            self.completeness(),
            self.precision(),
            self.currentness(),
            self.traceability(),
            self.confidentiality(),
        ]

    def overall(self, weights: Optional[Mapping[str, float]] = None) -> float:
        measurements = [
            metrics.Measurement(line.characteristic, line.score)
            for line in self.lines()
        ]
        return metrics.weighted_score(measurements, weights)

    def render(self) -> str:
        lines = [f"DQ scorecard — {self.app.name} / {self.entity}"]
        lines.extend(line.render() for line in self.lines())
        lines.append(f"{'overall':16} {self.overall():7.1%}")
        return "\n".join(lines)

"""Streaming DQ telemetry: mergeable per-field accumulators, O(fields) reads.

The scorecard and profiler rescan every stored record on each evaluation —
O(records) per read, which collapses under the ROADMAP's millions-of-users
target now that writes are batched and validation is compiled.  The DQ
assessment literature the paper builds on (Batini et al. 2009) treats DQ
indicators as *continuously monitored* artifacts, which requires
incremental computation: this module maintains, per entity, a set of
**mergeable streaming accumulators** updated on every store mutation
(create / update / delete / metadata re-stamp) instead of recomputed by
full scan.

What is tracked, per field:

* present / total counts (the Completeness inputs);
* distinct values — exact (hashed counters) until the cardinality passes
  ``spill_threshold``, then an approximate KMV sketch (:class:`KMVSketch`);
* numeric min / max / mean / M2 plus a value→count table that answers
  bounds queries (the Precision inputs) exactly while unspilled;
* pattern-match tallies against the profiler's ``KNOWN_PATTERNS`` (exact
  even after a spill: tallies are running counters, not re-derived);
* and per entity: security-level and provenance counts (Confidentiality,
  Traceability) and a last-modified-timestamp table with running sum/min
  (Currentness in O(1) on the fresh path).

Equivalence contract (pinned by tests and ``cluster-bench
--dqtelemetry``): every live reading matches the full-rescan oracle —
exactly for the integer-ratio lines (Precision, Traceability,
Confidentiality) and all profiler suggestions, and to float tolerance
(``math.isclose``, the two sides sum in different orders) for
Completeness and Currentness.  Two documented degradations: a *spilled*
field answers ``distinct`` approximately and loses its bounds table (the
live Precision path falls back to the rescan oracle), and live
suggestion field *order* assumes records share a consistent key order
(the form-bound case; arbitrary dict-key interleavings may order the
Completeness suggestion differently after deletes).

Lock discipline: accumulators are owned by
:class:`~repro.runtime.storage.EntityStore` and mutated only under the
existing per-entity re-entrant lock, exactly like the field indexes.
Reads either copy under the lock (``telemetry_snapshot``) or compute
under it (``measure_telemetry``); cross-shard merges combine per-shard
snapshots, so a merged view is per-shard consistent (the same contract
scatter-gather listings offer).
"""

from __future__ import annotations

import heapq
import math
from array import array
from collections import Counter
from hashlib import blake2b
from operator import attrgetter, itemgetter, mul
from typing import Iterable, Mapping, Optional, Sequence

from ..colkernels import EXACT_FLOAT_INT, int_column_summary
from .metrics import compiled_pattern
from .profiling import (
    ENUM_MAX_CARDINALITY,
    ENUM_MIN_SUPPORT,
    KNOWN_PATTERNS,
    Suggestion,
    suggest_from_profiles,
)

#: Exact distinct tracking hands over to the KMV sketch past this many
#: distinct values per field (bounds the accumulator's memory at
#: O(spill_threshold) per field no matter how many records stream in).
#: 4096 keeps typical free-text fields (comments, review bodies) on the
#: exact branch — which also skips per-value hashing entirely — at a
#: worst case of a few hundred KB per field; the memo keys are
#: references to strings the store already holds, not copies.
DEFAULT_SPILL_THRESHOLD = 4096

#: KMV sketch size: relative error ~1/sqrt(k) ≈ 6% at 256.
DEFAULT_SKETCH_SIZE = 256

#: After a spill the value→count tables are gone, so every repeat
#: string would pay ``repr`` + blake2b + regex again; a capped
#: value→(hash, pattern-mask) cache keeps the frequent repeats off
#: that path while staying O(1)-bounded like the spill itself.  Pure
#: cache: hashes are deterministic, so hits and misses produce
#: identical accumulator state.
_HASH_MEMO_LIMIT = 4096

_HASH_SPACE = float(2 ** 64)

#: Per-pattern index tuples for every observed mask, precomputed once.
_PATTERN_COUNT = len(KNOWN_PATTERNS)
_COMPILED_PATTERNS = tuple(
    compiled_pattern(pattern) for _, pattern in KNOWN_PATTERNS
)


def _hash64(key: str, _blake2b=blake2b, _from_bytes=int.from_bytes) -> int:
    """A deterministic (unsalted) 64-bit hash, stable across processes.

    The strict default encoder is the fast path (identical bytes for
    every valid string); only a lone surrogate pays the permissive
    re-encode, so both spellings hash equal keys equally.
    """
    try:
        raw = key.encode()
    except UnicodeEncodeError:
        raw = key.encode("utf-8", "surrogatepass")
    return _from_bytes(_blake2b(raw, digest_size=8).digest(), "big")


class KMVSketch:
    """K-minimum-values distinct-count estimator.

    Keeps the ``k`` smallest 64-bit hashes seen; with ``m > k`` distinct
    inputs the k-th smallest hash sits near ``k / m`` of the hash space,
    so ``(k - 1) / kth_smallest`` estimates ``m``.  Merging is the union
    of the kept hashes re-trimmed to ``k`` — order-insensitive and
    idempotent, the property the cluster merge relies on.  Deletions are
    not reflected: after a spill ``distinct`` is an upper-bound estimate.
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int = DEFAULT_SKETCH_SIZE):
        if k < 16:
            raise ValueError("sketch size must be >= 16")
        self.k = k
        self._heap: list[int] = []      # max-heap via negation
        self._members: set[int] = set()

    def add(self, key: str) -> None:
        self.add_hash(_hash64(key))

    def add_keys(self, keys) -> None:
        """Bulk :meth:`add`: hash and fold a whole batch with the loop
        overheads hoisted.  State-identical to adding the keys one by
        one (the saturated reject stays the first test, so a hot
        saturated sketch pays one hash and one compare per key)."""
        heap = self._heap
        members = self._members
        k = self.k
        h64 = _hash64
        push = heapq.heappush
        replace = heapq.heapreplace
        saturated = len(heap) >= k
        largest = -heap[0] if saturated else None
        for key in keys:
            value = h64(key)
            if saturated:
                if value >= largest or value in members:
                    continue
                members.add(value)
                members.discard(largest)
                replace(heap, -value)
                largest = -heap[0]
            elif value not in members:
                members.add(value)
                push(heap, -value)
                if len(heap) >= k:
                    saturated = True
                    largest = -heap[0]

    def add_hashes(self, values) -> None:
        """Bulk :meth:`add_hash`: fold pre-computed hashes with the
        loop overheads hoisted, state-identical to one-by-one adds."""
        heap = self._heap
        members = self._members
        k = self.k
        push = heapq.heappush
        replace = heapq.heapreplace
        saturated = len(heap) >= k
        largest = -heap[0] if saturated else None
        for value in values:
            if saturated:
                if value >= largest or value in members:
                    continue
                members.add(value)
                members.discard(largest)
                replace(heap, -value)
                largest = -heap[0]
            elif value not in members:
                members.add(value)
                push(heap, -value)
                if len(heap) >= k:
                    saturated = True
                    largest = -heap[0]

    def add_hash(self, value: int) -> None:
        heap = self._heap
        if len(heap) >= self.k:
            # saturated: a hash at or above the kept maximum can neither
            # enter nor change state (kept hashes are all <= largest, so
            # a duplicate lands here too) — reject on one compare
            largest = -heap[0]
            if value >= largest:
                return
            members = self._members
            if value in members:
                return
            members.add(value)
            members.discard(largest)
            heapq.heapreplace(heap, -value)
            return
        members = self._members
        if value in members:
            return
        members.add(value)
        heapq.heappush(heap, -value)

    def estimate(self) -> int:
        if len(self._heap) < self.k:
            return len(self._heap)
        kth = -self._heap[0]  # the k-th smallest hash kept
        if kth == 0:
            return len(self._heap)
        return int(round((self.k - 1) * _HASH_SPACE / kth))

    def merge(self, other: "KMVSketch") -> None:
        for value in other._members:
            self.add_hash(value)

    def copy(self) -> "KMVSketch":
        clone = KMVSketch(self.k)
        clone._heap = list(self._heap)
        clone._members = set(self._members)
        return clone


_PATTERN_ENUMERATED = tuple(enumerate(_COMPILED_PATTERNS))


def _pattern_mask(value: str) -> tuple[int, ...]:
    """Indexes of the known patterns ``value`` fully matches.

    No known pattern admits a space (email forbids ``\\s``, the other
    two are strict character classes), so free-text values skip the
    regex engine entirely.
    """
    if " " in value:
        return ()
    mask = []
    for index, compiled in _PATTERN_ENUMERATED:
        if compiled.fullmatch(value):
            mask.append(index)
    return tuple(mask)


class FieldAccumulator:
    """Streaming statistics of one field — the live :class:`FieldProfile`.

    Exposes the same read protocol (``completeness``, ``distinct``,
    ``is_numeric``, ``numeric_range()``, ``matched_pattern()``,
    ``looks_like_enum()``, ``value_domain()``, …) so the suggestion
    heuristics run unchanged over either representation.  ``add`` /
    ``remove`` mirror one record gaining / losing the field; callers
    (the entity store) serialize them under the entity lock.
    """

    __slots__ = (
        "name", "total", "missing", "spilled", "spill_threshold",
        "_other_counts", "_sketch",
        "_numeric_counts", "_num_n", "_num_sum", "_num_sumsq",
        "_num_min", "_num_max",
        "_string_count", "_strings", "_pattern_counts",
        "_hash_memo",
    )

    def __init__(
        self, name: str, spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    ):
        self.name = name
        self.total = 0
        self.missing = 0
        self.spilled = False
        self.spill_threshold = spill_threshold
        # distinct tracking: strings live in the ``_strings`` memo keyed
        # raw (their repr is injective and never collides with another
        # type's repr); exact ``int``s are keyed by themselves (repr is
        # injective on ints and an int key never equals a string key);
        # everything else is keyed by repr — together exactly the
        # oracle's |{repr(v)}|.
        self._other_counts: dict = {}
        self._sketch: Optional[KMVSketch] = None
        # numeric: value→count answers bounds queries exactly; the
        # running sums answer mean/M2 and survive the spill.
        self._numeric_counts: dict = {}
        self._num_n = 0
        self._num_sum = 0.0
        self._num_sumsq = 0.0
        self._num_min: Optional[float] = None
        self._num_max: Optional[float] = None
        # strings: value→[count, pattern-index-tuple] memo doubles as
        # the distinct-string table and keeps repeat strings off the
        # regex path; the tallies are running counters.
        self._string_count = 0
        self._strings: Optional[dict[str, list]] = {}
        self._pattern_counts = [0] * _PATTERN_COUNT
        # post-spill str → (hash64-of-repr, pattern mask) cache; only
        # exact-``str`` paths consult it (a str subclass may repr
        # differently than the equal base string it would collide with)
        self._hash_memo: dict[str, tuple] = {}

    # -- writes (entity lock held) ---------------------------------------

    def add(self, value) -> None:
        # Hot path: exact ``str`` and ``int`` are dispatched on concrete
        # type (no repr, no isinstance chain, spill check only when a
        # new key appears); everything else takes ``_add_other``.
        self.total += 1
        kind = type(value)
        if kind is str:
            if not value or value.isspace():  # == not value.strip()
                self.missing += 1
                return
            self._string_count += 1
            strings = self._strings
            if strings is not None:
                entry = strings.get(value)
                if entry is not None:
                    entry[0] += 1
                    mask = entry[1]
                else:
                    mask = _pattern_mask(value)
                    strings[value] = [1, mask]
                    if (
                        len(strings) + len(self._other_counts)
                        > self.spill_threshold
                    ):
                        self._spill()
            else:
                memo = self._hash_memo
                entry = memo.get(value)
                if entry is None:
                    mask = _pattern_mask(value)
                    digest = _hash64(repr(value))
                    if len(memo) < _HASH_MEMO_LIMIT:
                        memo[value] = (digest, mask)
                else:
                    digest, mask = entry
                self._sketch.add_hash(digest)
            if mask:
                tallies = self._pattern_counts
                for index in mask:
                    tallies[index] += 1
            return
        if kind is int:
            self._num_n += 1
            self._num_sum += value
            self._num_sumsq += value * value
            if self._num_min is None or value < self._num_min:
                self._num_min = value
            if self._num_max is None or value > self._num_max:
                self._num_max = value
            if self.spilled:
                self._sketch.add(repr(value))
                return
            counts = self._other_counts
            seen = counts.get(value)
            if seen is None:
                counts[value] = 1
                if len(counts) + len(self._strings) > self.spill_threshold:
                    self._spill()  # bounds table dropped with the rest
                    return
            else:
                counts[value] = seen + 1
            numeric = self._numeric_counts
            numeric[value] = numeric.get(value, 0) + 1
            return
        self._add_other(value)

    def _add_other(self, value) -> None:
        """``add`` for everything off the str/int fast path (``total``
        already counted): None, bools, floats, str subclasses, objects."""
        if value is None:
            self.missing += 1
            return
        if isinstance(value, str):  # str subclass: the string path
            if not value.strip():
                self.missing += 1
                return
            self._string_count += 1
            strings = self._strings
            if strings is None:
                mask = _pattern_mask(value)
                self._sketch.add(repr(value))
            else:
                entry = strings.get(value)
                if entry is None:
                    mask = _pattern_mask(value)
                    strings[value] = [1, mask]
                    if (
                        len(strings) + len(self._other_counts)
                        > self.spill_threshold
                    ):
                        self._spill()
                else:
                    entry[0] += 1
                    mask = entry[1]
            if mask:
                tallies = self._pattern_counts
                for index in mask:
                    tallies[index] += 1
            return
        key = repr(value)
        if self.spilled:
            self._sketch.add(key)
        else:
            counts = self._other_counts
            counts[key] = counts.get(key, 0) + 1
            if len(counts) + len(self._strings) > self.spill_threshold:
                self._spill()
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._num_n += 1
            self._num_sum += value
            self._num_sumsq += value * value
            if self._num_min is None or value < self._num_min:
                self._num_min = value
            if self._num_max is None or value > self._num_max:
                self._num_max = value
            if not self.spilled:
                numeric = self._numeric_counts
                numeric[value] = numeric.get(value, 0) + 1

    def add_column(self, values: Sequence, hint=None) -> None:
        """Absorb one column chunk — semantically ``for v in values:
        self.add(v)``, with the per-value dispatch hoisted to the chunk.

        Type-homogeneous chunks (the form path's common case: a bound
        column is all-``str`` or all-``int``) take specialized loops —
        attribute loads hoisted into locals, the running numeric sums
        folded with C-level ``sum``/``min``/``max`` in the exact same
        left-to-right addition order ``add`` would use, spill handled
        mid-column.  Mixed chunks fall back to per-value :meth:`add`.
        The per-value path stays the equivalence oracle (the property
        suite pins both to identical accumulator state).  ``hint ==
        "str"`` is capture-side census evidence (the spine's zone map
        proved every cell it ever admitted a ``str``) that skips the
        type walk.
        """
        if not values:
            return
        if hint == "str":
            self.total += len(values)
            self._add_str_column(values)
            return
        if type(values) is array:
            # A typed spine slice (``observe_inserted`` hands promoted
            # columns over as ``array('q'/'d')`` copies): the typecode
            # IS the census, so skip the per-value type walk.  Elements
            # box to plain ``int``/``float`` on access — the same
            # Python numbers the row walk reads from the dicts.
            if values.typecode == "q":
                self.total += len(values)
                self._add_int_column(values)
            else:
                add = self.add
                for value in values:
                    add(value)
            return
        kinds = set(map(type, values))
        if kinds == {str}:
            self.total += len(values)
            self._add_str_column(values)
        elif kinds == {int}:
            self.total += len(values)
            self._add_int_column(values)
        else:
            add = self.add
            for value in values:
                add(value)

    def _add_str_column(self, values: Sequence) -> None:
        # Pre-aggregate the chunk with ``Counter`` (one C pass) and walk
        # *distinct* values: the missing test, pattern mask and memo
        # lookup run once per distinct string instead of once per cell.
        # Exactness: ``Counter`` preserves first-encounter order (dict
        # semantics), so new memo keys are inserted in the same order
        # the per-value loop would insert them; pattern tallies and the
        # missing counter receive the same totals; and the KMV sketch is
        # idempotent per key, so collapsing duplicates cannot change it.
        # The one order-sensitive event is a spill *mid-column* — its
        # trigger point and sketch hand-off depend on arrival order —
        # so a chunk that would cross the threshold replays the exact
        # per-value oracle instead.
        tally = Counter(values)
        missing = 0
        string_count = 0
        tallies = self._pattern_counts
        strings = self._strings
        if strings is not None:
            additions = 0
            for value in tally:
                if value not in strings and value and not value.isspace():
                    additions += 1
            if (
                len(strings) + additions + len(self._other_counts)
                > self.spill_threshold
            ):
                self._add_str_column_slow(values)
                return
            for value, count in tally.items():
                if not value or value.isspace():
                    missing += count
                    continue
                entry = strings.get(value)
                if entry is not None:
                    entry[0] += count
                    mask = entry[1]
                else:
                    mask = _pattern_mask(value)
                    strings[value] = [count, mask]
                if mask:
                    for index in mask:
                        tallies[index] += count
            string_count = len(values) - missing
        else:
            # spilled: one hash per *distinct* string, memo hits paying
            # neither repr, blake2b nor the regex.  The inlined
            # ``_pattern_mask`` space pre-test keeps free-text misses
            # off the regex (no known pattern admits a space).
            memo = self._hash_memo
            digests: list[int] = []
            keep = digests.append
            for value, count in tally.items():
                if not value or value.isspace():
                    missing += count
                    continue
                entry = memo.get(value)
                if entry is None:
                    mask = (
                        _pattern_mask(value) if " " not in value else ()
                    )
                    digest = _hash64(repr(value))
                    if len(memo) < _HASH_MEMO_LIMIT:
                        memo[value] = (digest, mask)
                else:
                    digest, mask = entry
                keep(digest)
                if mask:
                    for index in mask:
                        tallies[index] += count
            if digests:
                self._sketch.add_hashes(digests)
            # tally counts partition the chunk: present = all - missing
            string_count = len(values) - missing
        self.missing += missing
        self._string_count += string_count

    def _add_str_column_slow(self, values: Sequence) -> None:
        """The exact per-value walk, kept for chunks that spill
        mid-column (the spill point is arrival-order-sensitive)."""
        missing = 0
        string_count = 0
        tallies = self._pattern_counts
        threshold = self.spill_threshold
        strings = self._strings
        other_len = len(self._other_counts)
        sketch = self._sketch
        for value in values:
            if not value or value.isspace():
                missing += 1
                continue
            string_count += 1
            if strings is not None:
                entry = strings.get(value)
                if entry is not None:
                    entry[0] += 1
                    mask = entry[1]
                else:
                    mask = _pattern_mask(value)
                    strings[value] = [1, mask]
                    if len(strings) + other_len > threshold:
                        self._spill()
                        strings = None
                        sketch = self._sketch
            else:
                memo = self._hash_memo
                entry = memo.get(value)
                if entry is None:
                    mask = _pattern_mask(value)
                    digest = _hash64(repr(value))
                    if len(memo) < _HASH_MEMO_LIMIT:
                        memo[value] = (digest, mask)
                else:
                    digest, mask = entry
                sketch.add_hash(digest)
            if mask:
                for index in mask:
                    tallies[index] += 1
        self.missing += missing
        self._string_count += string_count

    def _add_int_column(self, values: Sequence) -> None:
        # ``sum(values, start)`` performs the same left-to-right float
        # additions the per-value loop would, so the running sum stays
        # bit-identical to the oracle's — and ``sum(map(mul, v, v))``
        # adds the same squares in the same order for the sumsq.  The
        # bounds come off the tally's key set (the minimum over the
        # support IS the minimum over the multiset, exactly) so the
        # chunk pays two tiny passes instead of two full ones.
        summary = int_column_summary(values)
        if summary is not None and self._add_int_summary(values, summary):
            return
        tally = Counter(values)
        self._num_n += len(values)
        self._num_sum = sum(values, self._num_sum)
        lowest = min(tally)
        highest = max(tally)
        if self._num_min is None or lowest < self._num_min:
            self._num_min = lowest
        if self._num_max is None or highest > self._num_max:
            self._num_max = highest
        self._num_sumsq = sum(map(mul, values, values), self._num_sumsq)
        if self.spilled:
            # sketch adds are idempotent per key: hash each distinct once
            self._sketch.add_hashes(
                [_hash64(repr(value)) for value in tally]
            )
            return
        counts = self._other_counts
        additions = 0
        for value in tally:
            if value not in counts:
                additions += 1
        if (
            len(counts) + additions + len(self._strings)
            > self.spill_threshold
        ):
            self._int_table_slow(values)
            return
        numeric = self._numeric_counts
        for value, count in tally.items():
            seen = counts.get(value)
            counts[value] = count if seen is None else seen + count
            numeric[value] = numeric.get(value, 0) + count

    def _add_int_summary(self, values: Sequence, summary: tuple) -> bool:
        """Fold a vectorized all-int census (``colkernels.
        int_column_summary``) into the numeric state, **iff** the result
        is provably bit-identical to the sequential fold; ``False``
        sends the caller down the exact scalar path.

        Exactness argument: when the running sum is an ``int``, integer
        addition is associative, so ``current + total`` equals the
        left-to-right fold for any order.  When it is a ``float``, the
        fold is exact (hence order-free) as long as every partial sum
        is an integer-valued float within ±2**53 — guaranteed when the
        running value is integer-valued and ``abs(current) + n *
        magnitude`` stays under that bound.  Anything else falls back.
        """
        lowest, highest, magnitude, total, sumsq, pairs = summary
        count = len(values)
        current = self._num_sum
        if type(current) is int:
            if total is None:
                return False
        elif (
            total is None
            or type(current) is not float
            or not current.is_integer()
            or abs(current) + count * magnitude > EXACT_FLOAT_INT
        ):
            return False
        current_sq = self._num_sumsq
        if type(current_sq) is int:
            if sumsq is None:
                return False
        elif (
            sumsq is None
            or type(current_sq) is not float
            or not current_sq.is_integer()
            or abs(current_sq) + count * magnitude * magnitude
            > EXACT_FLOAT_INT
        ):
            return False
        self._num_n += count
        self._num_sum = current + total
        self._num_sumsq = current_sq + sumsq
        if self._num_min is None or lowest < self._num_min:
            self._num_min = lowest
        if self._num_max is None or highest > self._num_max:
            self._num_max = highest
        if self.spilled:
            # distinct values straight into the sketch — final KMV
            # state is order-insensitive (min-k of the same hash set)
            add_hash = self._sketch.add_hash
            h64 = _hash64
            for value, _ in pairs:
                add_hash(h64(repr(value)))
            return True
        counts = self._other_counts
        additions = 0
        for value, _ in pairs:
            if value not in counts:
                additions += 1
        if (
            len(counts) + additions + len(self._strings)
            > self.spill_threshold
        ):
            # numeric sums/min/max are already folded — exactly like
            # the scalar path — and the order-sensitive mid-chunk spill
            # replays the per-value oracle over the original sequence
            self._int_table_slow(values)
            return True
        numeric = self._numeric_counts
        for value, count in pairs:
            seen = counts.get(value)
            counts[value] = count if seen is None else seen + count
            numeric[value] = numeric.get(value, 0) + count
        return True

    def _int_table_slow(self, values: Sequence) -> None:
        """Exact per-value distinct-table walk for a chunk that spills
        mid-column (numeric sums/min/max were already folded): the
        triggering value enters the sketch via ``_spill`` and — like
        ``add`` — skips the bounds table; the remainder is sketch-only.
        """
        counts = self._other_counts
        numeric = self._numeric_counts
        strings_len = len(self._strings)
        threshold = self.spill_threshold
        for position, value in enumerate(values):
            seen = counts.get(value)
            if seen is None:
                counts[value] = 1
                if len(counts) + strings_len > threshold:
                    self._spill()
                    sketch_add = self._sketch.add
                    for rest in values[position + 1:]:
                        sketch_add(repr(rest))
                    return
            else:
                counts[value] = seen + 1
            numeric[value] = numeric.get(value, 0) + 1

    def remove(self, value) -> None:
        self.total -= 1
        kind = type(value)
        if kind is str:
            if not value or value.isspace():
                self.missing -= 1
                return
            self._remove_text(value)
            return
        if kind is int:
            if not self.spilled:
                counts = self._other_counts
                remaining = counts.get(value, 0) - 1
                if remaining > 0:
                    counts[value] = remaining
                else:
                    counts.pop(value, None)
            self._remove_numeric(value)
            return
        if value is None:
            self.missing -= 1
            return
        if isinstance(value, str):  # str subclass
            if not value.strip():
                self.missing -= 1
            else:
                self._remove_text(value)
            return
        if not self.spilled:
            counts = self._other_counts
            key = repr(value)
            remaining = counts.get(key, 0) - 1
            if remaining > 0:
                counts[key] = remaining
            else:
                counts.pop(key, None)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._remove_numeric(value)

    def _remove_text(self, value: str) -> None:
        """Drop one non-missing string occurrence (``total``/``missing``
        already adjusted by :meth:`remove`)."""
        self._string_count -= 1
        strings = self._strings
        if strings is None:
            mask = _pattern_mask(value)
        else:
            entry = strings.get(value)
            if entry is None:  # pragma: no cover - unseen removal
                mask = _pattern_mask(value)
            else:
                entry[0] -= 1
                mask = entry[1]
                if entry[0] <= 0:
                    del strings[value]
        if mask:
            tallies = self._pattern_counts
            for index in mask:
                tallies[index] -= 1

    def _remove_numeric(self, value) -> None:
        self._num_n -= 1
        self._num_sum -= value
        self._num_sumsq -= value * value
        if self._num_n == 0:
            self._num_sum = 0.0
            self._num_sumsq = 0.0
        if not self.spilled:
            numeric = self._numeric_counts
            remaining = numeric.get(value, 0) - 1
            if remaining > 0:
                numeric[value] = remaining
            else:
                numeric.pop(value, None)
                if value == self._num_min or value == self._num_max:
                    self._refresh_extremes()
        # spilled: min/max stay monotone (deletes not reflected)

    def _refresh_extremes(self) -> None:
        if self._numeric_counts:
            self._num_min = min(self._numeric_counts)
            self._num_max = max(self._numeric_counts)
        else:
            self._num_min = None
            self._num_max = None

    def _spill(self) -> None:
        """Hand exact distinct tracking over to the sketch.

        The value→count tables are dropped (that is the point: memory
        stays O(threshold)); the running numeric sums, min/max and
        pattern tallies survive, so only ``distinct`` turns approximate
        and the bounds table / value domain become unavailable.
        """
        sketch = KMVSketch()
        # hashing the memoized strings anyway: seed the post-spill
        # hash/mask cache with them (they are the hot repeats by
        # construction — they arrived before the spill)
        memo = self._hash_memo
        add_hash = sketch.add_hash
        for value, (count, mask) in self._strings.items():
            digest = _hash64(repr(value))
            if len(memo) < _HASH_MEMO_LIMIT:
                memo[value] = (digest, mask)
            add_hash(digest)
        sketch.add_keys([
            key if type(key) is str else repr(key)
            for key in self._other_counts
        ])
        self._sketch = sketch
        self.spilled = True
        self._other_counts = {}
        self._numeric_counts = {}
        self._strings = None

    # -- the FieldProfile read protocol ----------------------------------

    @property
    def present(self) -> int:
        return self.total - self.missing

    @property
    def completeness(self) -> float:
        if self.total == 0:
            return 1.0
        return self.present / self.total

    @property
    def distinct(self) -> int:
        if self.spilled:
            return self._sketch.estimate()
        return len(self._strings) + len(self._other_counts)

    @property
    def is_numeric(self) -> bool:
        return self.present > 0 and self._num_n == self.present

    def numeric_range(self) -> Optional[tuple[float, float]]:
        if self._num_n == 0:
            return None
        return (self._num_min, self._num_max)

    @property
    def is_textual(self) -> bool:
        return self.present > 0 and self._string_count == self.present

    def matched_pattern(self) -> Optional[tuple[str, str]]:
        """The first known pattern every present value matches — running
        tallies make this exact even after a spill."""
        if self._string_count == 0 or self._string_count != self.present:
            return None
        tallies = self._pattern_counts
        for index, (label, pattern) in enumerate(KNOWN_PATTERNS):
            if tallies[index] == self._string_count:
                return (label, pattern)
        return None

    def looks_like_enum(self) -> bool:
        if self.spilled:  # >= threshold distinct values: never enum-like
            return False
        if not self.is_textual or self.present == 0:
            return False
        distinct = self.distinct
        if distinct > ENUM_MAX_CARDINALITY or distinct < 2:
            return False
        return self.present / distinct >= ENUM_MIN_SUPPORT

    def value_domain(self) -> list[str]:
        if self._strings is None:
            return []  # spilled: the domain table was dropped
        return sorted(self._strings)

    def has_duplicates(self) -> bool:
        return self.distinct < self.present

    # -- beyond the profile protocol -------------------------------------

    @property
    def mean(self) -> Optional[float]:
        if self._num_n == 0:
            return None
        return self._num_sum / self._num_n

    @property
    def m2(self) -> float:
        """Sum of squared deviations from the mean (Welford's M2)."""
        if self._num_n == 0:
            return 0.0
        m2 = self._num_sumsq - (self._num_sum * self._num_sum) / self._num_n
        return max(0.0, m2)

    @property
    def variance(self) -> float:
        return self.m2 / self._num_n if self._num_n else 0.0

    def count_in_bounds(self, lower, upper) -> Optional[int]:
        """How many present values satisfy ``lower <= v <= upper`` —
        exact while unspilled, ``None`` after (caller must fall back)."""
        if self.spilled:
            return None
        return sum(
            count for value, count in self._numeric_counts.items()
            if lower <= value <= upper
        )

    # -- lifecycle --------------------------------------------------------

    def merge(self, other: "FieldAccumulator") -> None:
        self.total += other.total
        self.missing += other.missing
        self._num_n += other._num_n
        self._num_sum += other._num_sum
        self._num_sumsq += other._num_sumsq
        if other._num_min is not None and (
            self._num_min is None or other._num_min < self._num_min
        ):
            self._num_min = other._num_min
        if other._num_max is not None and (
            self._num_max is None or other._num_max > self._num_max
        ):
            self._num_max = other._num_max
        self._string_count += other._string_count
        for index in range(_PATTERN_COUNT):
            self._pattern_counts[index] += other._pattern_counts[index]
        if self.spilled or other.spilled:
            if not self.spilled:
                self._spill()
            if other.spilled:
                self._sketch.merge(other._sketch)
            else:
                sketch = self._sketch
                for value in other._strings:
                    sketch.add(repr(value))
                for key in other._other_counts:
                    sketch.add(key if type(key) is str else repr(key))
            return
        for key, count in other._other_counts.items():
            self._other_counts[key] = self._other_counts.get(key, 0) + count
        for value, count in other._numeric_counts.items():
            self._numeric_counts[value] = (
                self._numeric_counts.get(value, 0) + count
            )
        for value, (count, mask) in other._strings.items():
            entry = self._strings.get(value)
            if entry is None:
                self._strings[value] = [count, mask]
            else:
                entry[0] += count
        if (
            len(self._strings) + len(self._other_counts)
            > self.spill_threshold
        ):
            self._spill()

    def copy(self) -> "FieldAccumulator":
        clone = FieldAccumulator(self.name, self.spill_threshold)
        clone.total = self.total
        clone.missing = self.missing
        clone.spilled = self.spilled
        clone._other_counts = dict(self._other_counts)
        clone._sketch = self._sketch.copy() if self._sketch else None
        clone._numeric_counts = dict(self._numeric_counts)
        clone._num_n = self._num_n
        clone._num_sum = self._num_sum
        clone._num_sumsq = self._num_sumsq
        clone._num_min = self._num_min
        clone._num_max = self._num_max
        clone._string_count = self._string_count
        clone._strings = (
            {value: list(entry) for value, entry in self._strings.items()}
            if self._strings is not None else None
        )
        clone._pattern_counts = list(self._pattern_counts)
        clone._hash_memo = dict(self._hash_memo)
        return clone

    def __repr__(self) -> str:
        return (
            f"<FieldAccumulator {self.name!r} {self.present}/{self.total} "
            f"present, {self.distinct} distinct"
            f"{' (spilled)' if self.spilled else ''}>"
        )


class EntityAccumulator:
    """All streaming telemetry of one entity, updated per mutation.

    Field accumulators mirror :class:`~repro.dq.profiling.DataProfiler`
    semantics (a field's ``total`` counts the records carrying the key);
    the metadata side tracks the scorecard inputs — provenance count,
    security-level counts, and the last-modified-timestamp table with a
    running sum and minimum so the common all-fresh Currentness read is
    O(1).  ``_meta_state`` remembers each record's last observed metadata
    so re-stamps apply as deltas (and is the one O(records) structure —
    small constants, the same trade the confidentiality index makes).
    """

    def __init__(
        self,
        entity: str,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    ):
        self.entity = entity
        self.spill_threshold = spill_threshold
        self.records = 0
        self.updates = 0  # observe calls absorbed (telemetry_stats)
        self._fields: dict[str, FieldAccumulator] = {}
        # Counters (not plain dicts) so the batched metadata register
        # folds a whole chunk with one C-level ``update`` per table
        self._levels: Counter = Counter()
        self._traced = 0
        self._timestamps: Counter = Counter()
        self._ts_sum = 0
        self._ts_count = 0
        self._ts_min: Optional[int] = None
        self._meta_state: dict[int, tuple] = {}

    # -- mutation observers (entity lock held) ---------------------------

    def _field(self, name: str) -> FieldAccumulator:
        accumulator = self._fields.get(name)
        if accumulator is None:
            accumulator = FieldAccumulator(name, self.spill_threshold)
            self._fields[name] = accumulator
        return accumulator

    def observe_row(self, record_id: int, data: Mapping, metadata) -> None:
        """One record entered the store (``data`` is the published dict
        captured at mutation time; ``metadata`` may still be stamped
        later — :meth:`observe_metadata` applies the delta)."""
        self.updates += 1
        self.records += 1
        fields = self._fields
        for name, value in data.items():
            accumulator = fields.get(name)
            if accumulator is None:
                accumulator = self._field(name)
            accumulator.add(value)
        self._register_metadata(record_id, metadata)

    def observe_insert(self, stored) -> None:
        self.observe_row(stored.record_id, stored.data, stored.metadata)

    def observe_rows(self, rows: Iterable[tuple]) -> None:
        """A whole already-stamped chunk of ``(record_id, data,
        metadata)`` triples in one call — the batched write path's single
        telemetry update per chunk (loop overheads hoisted, one
        ``updates`` tick per chunk)."""
        self.updates += 1
        fields = self._fields
        new_field = self._field
        register = self._register_metadata
        count = 0
        for record_id, data, metadata in rows:
            count += 1
            for name, value in data.items():
                accumulator = fields.get(name)
                if accumulator is None:
                    accumulator = new_field(name)
                accumulator.add(value)
            register(record_id, metadata)
        self.records += count

    def observe_columns(
        self,
        fields: Sequence[str],
        columns: Sequence[Sequence],
        rows_meta: Sequence[tuple],
        hints: Optional[Sequence] = None,
    ) -> None:
        """A whole already-stamped chunk, transposed: ``columns[i]``
        holds every record's value for ``fields[i]`` and ``rows_meta``
        the ``(record_id, metadata)`` pairs.  One ``updates`` tick and
        one bulk :meth:`FieldAccumulator.add_column` per field —
        equivalent to :meth:`observe_rows` over the same chunk (field
        accumulators are independent, so absorbing a field's values
        contiguously instead of row-interleaved reaches the same state).
        ``hints``, when given, is layout-aligned census evidence from
        the capture side (``"str"`` = proven all-``str``).
        """
        self.updates += 1
        accumulators = self._fields
        new_field = self._field
        if hints is None:
            hints = (None,) * len(fields)
        for name, column, hint in zip(fields, columns, hints):
            accumulator = accumulators.get(name)
            if accumulator is None:
                accumulator = new_field(name)
            accumulator.add_column(column, hint)
        self._register_metadata_many(rows_meta)
        self.records += len(rows_meta)

    def observe_insert_many(self, stored_list: Sequence) -> None:
        self.observe_rows(
            (stored.record_id, stored.data, stored.metadata)
            for stored in stored_list
        )

    def observe_update(self, old_data: Mapping, new_data: Mapping) -> None:
        """A record's published dict was replaced (copy-on-write: the new
        dict's keys are a superset of the old one's)."""
        self.updates += 1
        fields = self._fields
        for name, new_value in new_data.items():
            if name in old_data:
                old_value = old_data[name]
                if old_value is new_value:
                    continue
                accumulator = fields[name]
                accumulator.remove(old_value)
                accumulator.add(new_value)
            else:
                accumulator = fields.get(name)
                if accumulator is None:
                    accumulator = self._field(name)
                accumulator.add(new_value)

    def observe_delete_row(self, record_id: int, data: Mapping) -> None:
        self.updates += 1
        self.records -= 1
        fields = self._fields
        for name, value in data.items():
            fields[name].remove(value)
        state = self._meta_state.pop(record_id, None)
        if state is not None:
            self._retire_metadata(state)

    def observe_delete(self, stored) -> None:
        self.observe_delete_row(stored.record_id, stored.data)

    def absorb(self, ops: Sequence[tuple]) -> None:
        """Replay a store's deferred mutation queue, in order.

        The write path enqueues compact op tuples (captured dict refs —
        published dicts are copy-on-write, so they are frozen the moment
        they are captured) and pays nothing else; the accumulator
        absorbs the queue on the next telemetry read.  Each mutation is
        absorbed exactly once, and ``updates`` ticks exactly as the
        synchronous observers would have.  Metadata objects are read at
        absorb time: every re-stamp also enqueued a ``meta`` op, so the
        replay converges on the sidecar's final state.
        """
        for op in ops:
            kind = op[0]
            if kind == "cols":
                self.observe_columns(
                    op[1], op[2], op[3], op[4] if len(op) > 4 else None
                )
            elif kind == "rows":
                rows = op[1]
                # A layout-uniform chunk (the batched form path always
                # is) transposes here — on the read side of the queue —
                # and absorbs column-at-a-time.  Small or ragged chunks
                # keep the row walk; both reach identical state (field
                # accumulators are independent, so per-field contiguous
                # absorption commutes with row interleaving).
                # Uniformity proof: equal widths plus every layout key
                # present (``itemgetter`` raises otherwise) pins each
                # row's key *set* to the layout's; extraction is by
                # name, so reordered rows transpose correctly too.
                if len(rows) >= 8:
                    first = rows[0][1]
                    width = len(first)
                    if width > 1 and all(
                        len(row[1]) == width for row in rows
                    ):
                        layout = tuple(first)
                        getter = itemgetter(*layout)
                        try:
                            columns = tuple(
                                zip(*[getter(row[1]) for row in rows])
                            )
                        except KeyError:
                            columns = None
                        if columns is not None:
                            self.observe_columns(
                                layout,
                                columns,
                                [(row[0], row[2]) for row in rows],
                            )
                            continue
                self.observe_rows(rows)
            elif kind == "meta":
                self.observe_metadata(op[1], op[2])
            elif kind == "update":
                self.observe_update(op[1], op[2])
            elif kind == "row":
                self.observe_row(op[1], op[2], op[3])
            else:  # "delete"
                self.observe_delete_row(op[1], op[2])

    def observe_metadata(self, record_id: int, metadata) -> None:
        """A record's sidecar was re-stamped; apply the delta.

        Unregistered ids are skipped silently — mid-batch records are
        registered once, already stamped, by :meth:`observe_insert_many`.
        """
        old = self._meta_state.get(record_id)
        if old is None:
            return
        self.updates += 1
        new = (
            bool(metadata.stored_by) and metadata.stored_date is not None,
            metadata.security_level,
            metadata.last_modified_date,
        )
        if new == old:
            return
        self._retire_metadata(old)
        self._meta_state[record_id] = new
        self._admit_metadata(new)

    def _register_metadata(self, record_id: int, metadata) -> None:
        state = (
            bool(metadata.stored_by) and metadata.stored_date is not None,
            metadata.security_level,
            metadata.last_modified_date,
        )
        self._meta_state[record_id] = state
        self._admit_metadata(state)

    def _register_metadata_many(self, rows_meta: Sequence[tuple]) -> None:
        """Batched :meth:`_register_metadata` over ``(record_id,
        metadata)`` pairs — identical final state, with the counters
        folded into locals and committed once.  Exactness: clock ticks
        are integers, so the timestamp sums are order-free, and a
        ``None`` running minimum (invalidated, recomputed lazily) stays
        ``None`` exactly as the per-record admit would leave it.
        """
        levels = self._levels
        table = self._timestamps
        metas = list(map(itemgetter(1), rows_meta))
        traced_list = [
            bool(meta.stored_by) and meta.stored_date is not None
            for meta in metas
        ]
        level_list = list(map(attrgetter("security_level"), metas))
        ts_list = list(map(attrgetter("last_modified_date"), metas))
        self._meta_state.update(zip(
            map(itemgetter(0), rows_meta),
            zip(traced_list, level_list, ts_list),
        ))
        self._traced += sum(traced_list)
        levels.update(level_list)
        stamps = (
            ts_list if None not in ts_list
            else [ts for ts in ts_list if ts is not None]
        )
        if stamps:
            table.update(stamps)
            self._ts_sum += sum(stamps)
            self._ts_count += len(stamps)
            minimum = self._ts_min
            if minimum is not None:
                lowest = min(stamps)
                if lowest < minimum:
                    self._ts_min = lowest

    def _admit_metadata(self, state: tuple) -> None:
        traced, level, timestamp = state
        if traced:
            self._traced += 1
        self._levels[level] = self._levels.get(level, 0) + 1
        if timestamp is not None:
            table = self._timestamps
            table[timestamp] = table.get(timestamp, 0) + 1
            self._ts_sum += timestamp
            self._ts_count += 1
            # ``None`` means "invalidated, recompute lazily" — admitting
            # over it must NOT claim this timestamp is the minimum (the
            # table may still hold older entries).
            minimum = self._ts_min
            if minimum is not None and timestamp < minimum:
                self._ts_min = timestamp

    def _retire_metadata(self, state: tuple) -> None:
        traced, level, timestamp = state
        if traced:
            self._traced -= 1
        remaining = self._levels.get(level, 0) - 1
        if remaining > 0:
            self._levels[level] = remaining
        else:
            self._levels.pop(level, None)
        if timestamp is not None:
            table = self._timestamps
            remaining = table.get(timestamp, 0) - 1
            if remaining > 0:
                table[timestamp] = remaining
            else:
                table.pop(timestamp, None)
                if timestamp == self._ts_min:
                    self._ts_min = None  # recomputed lazily on next read
            self._ts_sum -= timestamp
            self._ts_count -= 1

    # -- reads ------------------------------------------------------------

    @property
    def fields(self) -> list[FieldAccumulator]:
        return list(self._fields.values())

    def field(self, name: str) -> FieldAccumulator:
        return self._fields[name]

    def field_or_none(self, name: str) -> Optional[FieldAccumulator]:
        return self._fields.get(name)

    @property
    def traced(self) -> int:
        return self._traced

    def present_of(self, name: str) -> int:
        accumulator = self._fields.get(name)
        return accumulator.present if accumulator is not None else 0

    def protected_count(self, minimum_level: int) -> int:
        """Records whose security level reaches ``minimum_level``."""
        return sum(
            count for level, count in self._levels.items()
            if level >= minimum_level
        )

    def currentness_total(self, now: int, max_age: int) -> float:
        """Sum of per-record linear-decay scores at tick ``now``.

        O(1) while no record is older than ``max_age`` (the running
        sum/min answer it algebraically); O(distinct timestamps) once any
        record clamps to zero.  Records never stamped score 0.0, exactly
        like the oracle's ``currentness_score(None, …)``.
        """
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        count = self._ts_count
        if count == 0:
            return 0.0
        minimum = self._ts_min
        if minimum is None:
            minimum = min(self._timestamps)
            self._ts_min = minimum
        if now - minimum <= max_age:
            return count - (now * count - self._ts_sum) / max_age
        return sum(
            bucket * (1.0 - (now - timestamp) / max_age)
            for timestamp, bucket in self._timestamps.items()
            if now - timestamp < max_age
        )

    @property
    def spilled_fields(self) -> int:
        return sum(
            1 for accumulator in self._fields.values() if accumulator.spilled
        )

    def stats(self) -> dict:
        """Deterministic counters for metrics / the chaos report."""
        return {
            "records": self.records,
            "updates": self.updates,
            "tracked_fields": len(self._fields),
            "spilled_fields": self.spilled_fields,
        }

    # -- lifecycle --------------------------------------------------------

    def merge(self, other: "EntityAccumulator") -> None:
        """Fold another shard's accumulator in (count-based stats only
        meaningfully compare when both sides share a clock for the
        timestamp table — the cluster scorecard composes Currentness
        per shard instead of reading the merged table)."""
        self.records += other.records
        self.updates += other.updates
        for name, accumulator in other._fields.items():
            mine = self._fields.get(name)
            if mine is None:
                self._fields[name] = accumulator.copy()
            else:
                mine.merge(accumulator)
        self._levels.update(other._levels)  # Counter: adds counts
        self._traced += other._traced
        self._timestamps.update(other._timestamps)
        self._ts_sum += other._ts_sum
        self._ts_count += other._ts_count
        # A ``None`` minimum on either side means "invalidated" — the
        # merged minimum is then unknown too (recomputed lazily on the
        # next Currentness read); only two known minima combine eagerly.
        if self._ts_min is None or other._ts_min is None:
            self._ts_min = None
        elif other._ts_min < self._ts_min:
            self._ts_min = other._ts_min

    def snapshot(self) -> "EntityAccumulator":
        """A mergeable copy, minus the per-record ``_meta_state`` map
        (a snapshot serves reads and merges, never deltas)."""
        clone = EntityAccumulator(self.entity, self.spill_threshold)
        clone.records = self.records
        clone.updates = self.updates
        clone._fields = {
            name: accumulator.copy()
            for name, accumulator in self._fields.items()
        }
        clone._levels = Counter(self._levels)
        clone._traced = self._traced
        clone._timestamps = Counter(self._timestamps)
        clone._ts_sum = self._ts_sum
        clone._ts_count = self._ts_count
        clone._ts_min = self._ts_min
        return clone

    def __repr__(self) -> str:
        return (
            f"<EntityAccumulator {self.entity!r} {self.records} record(s), "
            f"{len(self._fields)} field(s)>"
        )


class LiveProfile:
    """A :class:`~repro.dq.profiling.DataProfiler`-compatible view over an
    entity accumulator: same ``records_seen`` / ``field`` / ``fields`` /
    ``suggest`` / ``report`` surface, O(fields) instead of O(records)."""

    def __init__(self, accumulator: EntityAccumulator):
        self._accumulator = accumulator

    @property
    def records_seen(self) -> int:
        return self._accumulator.records

    def field(self, name: str) -> FieldAccumulator:
        return self._accumulator.field(name)

    @property
    def fields(self) -> list[FieldAccumulator]:
        return self._accumulator.fields

    def suggest(self, min_sample: int = 5) -> list[Suggestion]:
        return suggest_from_profiles(
            self._accumulator.fields,
            self._accumulator.records,
            min_sample,
        )

    def report(self) -> str:
        lines = [f"profiled {self.records_seen} record(s)"]
        for profile in sorted(self.fields, key=lambda p: p.name):
            extras = []
            if profile.is_numeric and profile.numeric_range():
                lo, hi = profile.numeric_range()
                extras.append(f"range [{lo}, {hi}]")
            matched = profile.matched_pattern()
            if matched:
                extras.append(f"pattern {matched[0]}")
            if profile.looks_like_enum():
                extras.append(f"domain {profile.value_domain()}")
            suffix = f" — {', '.join(extras)}" if extras else ""
            lines.append(
                f"  {profile.name}: {profile.completeness:.0%} complete, "
                f"{profile.distinct} distinct{suffix}"
            )
        for suggestion in self.suggest():
            lines.append(f"  -> suggest {suggestion.describe()}")
        return "\n".join(lines)


def merge_accumulators(
    accumulators: Iterable[Optional[EntityAccumulator]],
) -> Optional[EntityAccumulator]:
    """Fold per-shard snapshots, first shard's field order winning (the
    order the concatenated-records oracle would discover fields in).
    ``None`` if any side has telemetry disabled — a partial merge would
    silently under-count, violating Completeness."""
    merged: Optional[EntityAccumulator] = None
    for accumulator in accumulators:
        if accumulator is None:
            return None
        if merged is None:
            merged = accumulator.snapshot()
        else:
            merged.merge(accumulator)
    return merged


def scores_close(left: float, right: float) -> bool:
    """The equivalence tolerance for the float-summation lines
    (Completeness, Currentness); integer-ratio lines compare exactly."""
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)

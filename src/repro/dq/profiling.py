"""Data profiling: inspect real records and *suggest* DQ requirements.

The paper's §1 lists data profiling among the reactive DQ tooling
organizations reach for after quality problems surface.  This module turns
that reactive instrument into a proactive one in the spirit of DQ_WebRE:
profile a sample of the data a web application will manage, and derive
*candidate* :class:`~repro.dq.requirements.DataQualityRequirement` objects
an analyst can review and adopt into the requirements model — closing the
loop between observed data and captured requirements.

Heuristics (each cites the characteristic it evidences):

* fields that are always populated in the sample → a **Completeness**
  candidate (the application should keep them populated);
* numeric fields with a tight observed range → a **Precision** candidate
  with suggested ``DQConstraint`` bounds (observed min/max, padded);
* fields whose values all match a recognizable pattern (email, date,
  identifier) → an **Accuracy** (format) candidate;
* low-cardinality string fields → a **Consistency** candidate with the
  observed value domain (enum);
* fields named like identifiers with no duplicates → a uniqueness note.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from . import iso25012
from .metrics import _is_missing, compiled_pattern
from .requirements import DataQualityRequirement

#: Recognizable value patterns, tried in order.
KNOWN_PATTERNS: tuple[tuple[str, str], ...] = (
    ("email", r"[^@\s]+@[^@\s]+\.[A-Za-z]{2,}"),
    ("iso-date", r"\d{4}-\d{2}-\d{2}"),
    ("identifier", r"[A-Za-z]+[-_]?\d+"),
)

#: A field counts as enum-like when it has at most this many distinct values
#: and at least this many observations per value on average.
ENUM_MAX_CARDINALITY = 8
ENUM_MIN_SUPPORT = 3


@dataclass
class FieldProfile:
    """Statistics of one field across the sample.

    The derived views (``distinct``, ``numeric_values``,
    ``string_values``, ``matched_pattern``) are cached keyed by the
    length of ``values``: any append — via :meth:`add` or directly —
    invalidates the whole cache on the next read, so repeated property
    access during :meth:`DataProfiler.suggest` costs O(N) once instead
    of once per access.
    """

    name: str
    total: int = 0
    missing: int = 0
    values: list = field(default_factory=list)
    _cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    _cache_len: int = field(default=-1, repr=False, compare=False)

    def add(self, value) -> None:
        """Record one observation (missing values tracked, not stored)."""
        self.total += 1
        if _is_missing(value):
            self.missing += 1
        else:
            self.values.append(value)

    def add_missing(self) -> None:
        self.total += 1
        self.missing += 1

    def _cached(self, key: str, compute):
        if self._cache_len != len(self.values):
            self._cache.clear()
            self._cache_len = len(self.values)
        try:
            return self._cache[key]
        except KeyError:
            result = self._cache[key] = compute()
            return result

    @property
    def present(self) -> int:
        return self.total - self.missing

    @property
    def completeness(self) -> float:
        if self.total == 0:
            return 1.0
        return self.present / self.total

    @property
    def distinct(self) -> int:
        return self._cached(
            "distinct", lambda: len({repr(v) for v in self.values})
        )

    def numeric_values(self) -> list[float]:
        return self._cached("numeric_values", self._numeric_values)

    def _numeric_values(self) -> list[float]:
        return [
            v for v in self.values
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]

    @property
    def is_numeric(self) -> bool:
        return bool(self.values) and len(self.numeric_values()) == len(
            self.values
        )

    def numeric_range(self) -> Optional[tuple[float, float]]:
        numbers = self.numeric_values()
        if not numbers:
            return None
        return (min(numbers), max(numbers))

    def string_values(self) -> list[str]:
        return self._cached("string_values", self._string_values)

    def _string_values(self) -> list[str]:
        return [v for v in self.values if isinstance(v, str)]

    @property
    def is_textual(self) -> bool:
        return bool(self.values) and len(self.string_values()) == len(
            self.values
        )

    def matched_pattern(self) -> Optional[tuple[str, str]]:
        """The first known pattern every present value matches."""
        return self._cached("matched_pattern", self._matched_pattern)

    def _matched_pattern(self) -> Optional[tuple[str, str]]:
        strings = self.string_values()
        if not strings or len(strings) != len(self.values):
            return None
        for label, pattern in KNOWN_PATTERNS:
            compiled = compiled_pattern(pattern)
            if all(compiled.fullmatch(s) for s in strings):
                return (label, pattern)
        return None

    def looks_like_enum(self) -> bool:
        if not self.is_textual or not self.values:
            return False
        distinct = self.distinct
        if distinct > ENUM_MAX_CARDINALITY or distinct < 2:
            return False
        return len(self.values) / distinct >= ENUM_MIN_SUPPORT

    def value_domain(self) -> list[str]:
        return sorted({v for v in self.string_values()})

    def has_duplicates(self) -> bool:
        return self.distinct < len(self.values)


@dataclass(frozen=True)
class Suggestion:
    """A candidate DQ requirement with the evidence that produced it."""

    characteristic: iso25012.Characteristic
    fields: tuple[str, ...]
    rationale: str
    bounds: Optional[dict] = None
    patterns: Optional[dict] = None
    domains: Optional[dict] = None

    def to_requirement(self, task: str, user_role: str) -> DataQualityRequirement:
        """Adopt this suggestion as a first-class DQR."""
        return DataQualityRequirement(
            task=task,
            user_role=user_role,
            data_items=self.fields,
            characteristic=self.characteristic,
            statement=self.rationale,
        )

    def describe(self) -> str:
        return (
            f"{self.characteristic.name} on ({', '.join(self.fields)}): "
            f"{self.rationale}"
        )


class DataProfiler:
    """Profiles record samples and proposes DQ requirements."""

    def __init__(self, fields: Optional[Sequence[str]] = None):
        self._declared_fields = tuple(fields) if fields else None
        self._profiles: dict[str, FieldProfile] = {}
        self._records_seen = 0

    def add_records(self, records: Iterable[Mapping]) -> "DataProfiler":
        for record in records:
            self._records_seen += 1
            names = self._declared_fields or record.keys()
            for name in names:
                profile = self._profiles.setdefault(name, FieldProfile(name))
                profile.add(record.get(name))
        return self

    @property
    def records_seen(self) -> int:
        return self._records_seen

    def field(self, name: str) -> FieldProfile:
        return self._profiles[name]

    @property
    def fields(self) -> list[FieldProfile]:
        return list(self._profiles.values())

    # -- suggestion heuristics ------------------------------------------------

    def suggest(self, min_sample: int = 5) -> list[Suggestion]:
        """Candidate DQ requirements; empty when the sample is too small."""
        return suggest_from_profiles(
            self._profiles.values(), self._records_seen, min_sample
        )

    @staticmethod
    def live(source):
        """A :class:`~repro.dq.streaming.LiveProfile` over streaming
        telemetry — the same ``suggest``/``report`` surface in O(fields).

        ``source`` is either an entity store (anything exposing
        ``telemetry_snapshot()``) or an
        :class:`~repro.dq.streaming.EntityAccumulator` directly.
        """
        from .streaming import LiveProfile

        snapshot = getattr(source, "telemetry_snapshot", None)
        if callable(snapshot):
            accumulator = snapshot()
            if accumulator is None:
                raise ValueError(
                    "streaming telemetry is disabled for this entity; "
                    "re-enable it or use DataProfiler.add_records"
                )
            return LiveProfile(accumulator)
        return LiveProfile(source)

    def report(self) -> str:
        """A human-readable profiling summary."""
        lines = [f"profiled {self._records_seen} record(s)"]
        for profile in sorted(self._profiles.values(), key=lambda p: p.name):
            extras = []
            if profile.is_numeric and profile.numeric_range():
                lo, hi = profile.numeric_range()
                extras.append(f"range [{lo}, {hi}]")
            matched = profile.matched_pattern()
            if matched:
                extras.append(f"pattern {matched[0]}")
            if profile.looks_like_enum():
                extras.append(f"domain {profile.value_domain()}")
            suffix = f" — {', '.join(extras)}" if extras else ""
            lines.append(
                f"  {profile.name}: {profile.completeness:.0%} complete, "
                f"{profile.distinct} distinct{suffix}"
            )
        for suggestion in self.suggest():
            lines.append(f"  -> suggest {suggestion.describe()}")
        return "\n".join(lines)


def suggest_from_profiles(
    profiles, records_seen: int, min_sample: int = 5
) -> list[Suggestion]:
    """The suggestion heuristics over any field-profile protocol.

    ``profiles`` is an iterable of objects exposing the
    :class:`FieldProfile` read surface — the profiler's sampled profiles
    or streaming :class:`~repro.dq.streaming.FieldAccumulator` objects;
    both representations must yield identical suggestions (pinned by the
    live-vs-oracle equivalence tests).  Iteration order decides the
    Completeness field tuple, so pass profiles in first-seen order.
    """
    if records_seen < min_sample:
        return []
    profiles = list(profiles)
    suggestions: list[Suggestion] = []
    always_present = [
        p.name for p in profiles if p.total and p.completeness == 1.0
    ]
    if always_present:
        suggestions.append(
            Suggestion(
                iso25012.COMPLETENESS,
                tuple(always_present),
                "these fields were populated in every sampled record; "
                "the application should require them",
            )
        )
    bounds = {}
    for profile in profiles:
        if not profile.is_numeric or profile.present < min_sample:
            continue
        observed = profile.numeric_range()
        if observed is None:
            continue
        bounds[profile.name] = _padded_bounds(*observed)
    if bounds:
        suggestions.append(
            Suggestion(
                iso25012.PRECISION,
                tuple(sorted(bounds)),
                "numeric fields with a stable observed range; suggested "
                "DQConstraint bounds derived from the sample",
                bounds=bounds,
            )
        )
    patterns = {}
    for profile in profiles:
        if profile.present < min_sample:
            continue
        matched = profile.matched_pattern()
        if matched is not None:
            patterns[profile.name] = matched[1]
    if patterns:
        suggestions.append(
            Suggestion(
                iso25012.ACCURACY,
                tuple(sorted(patterns)),
                "every sampled value matches a recognizable format; the "
                "application should validate it",
                patterns=patterns,
            )
        )
    domains = {
        profile.name: profile.value_domain()
        for profile in profiles
        if profile.looks_like_enum()
    }
    if domains:
        suggestions.append(
            Suggestion(
                iso25012.CONSISTENCY,
                tuple(sorted(domains)),
                "low-cardinality fields with a closed value domain; "
                "values outside it are likely inconsistencies",
                domains=domains,
            )
        )
    return suggestions


def _padded_bounds(low: float, high: float) -> tuple[int, int]:
    """Integer bounds padded ~10% beyond the observed range."""
    span = max(high - low, 1.0)
    pad = span * 0.1
    return (math.floor(low - pad), math.ceil(high + pad))

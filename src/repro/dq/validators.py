"""Runtime DQ validators — the executable form of ``DQ_Validator`` classes.

In the paper, each validator-mechanism DQSR becomes an operation of a class
stereotyped ``DQ_Validator`` (e.g. ``check_completeness()``,
``check_precision()``) that validates the data entered through a ``WebUI``
element (§4, Fig. 7).  Here those operations are first-class
:class:`Validator` objects that the simulated runtime invokes before every
write.

Validators examine plain record dicts and return :class:`Finding` lists;
:class:`ValidatorSuite` composes them and produces a :class:`SuiteReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from .metrics import _is_missing, compiled_pattern, in_bounds


@dataclass(frozen=True)
class Finding:
    """One defect detected in one record."""

    code: str
    field: str
    message: str

    def render(self) -> str:
        return f"[{self.code}] {self.field}: {self.message}"


class Validator:
    """Base class: subclasses implement :meth:`check`.

    ``name`` doubles as the generated operation name (``check_completeness``
    style), keeping the link to the paper's DQ_Validator operations visible
    in reports and generated code.
    """

    code = "dq"

    def __init__(self, name: str):
        self.name = name

    def check(self, record: Mapping) -> list[Finding]:
        raise NotImplementedError

    def is_valid(self, record: Mapping) -> bool:
        """``not check(record)``, but allowed to stop at the first defect.

        Subclasses override this with a short-circuiting test that
        allocates no :class:`Finding` objects — admission paths that only
        need the boolean (``Form.admit``, the fused plans' fail-fast
        lane) call this instead of materializing every finding.  The
        contract is exact: ``is_valid(r) == (not check(r))`` always.
        """
        return not self.check(record)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CompletenessValidator(Validator):
    """"verify that all data have been completed" (paper §4, requirement 2)."""

    code = "completeness"

    def __init__(self, required_fields: Sequence[str], name: str = "check_completeness"):
        super().__init__(name)
        if not required_fields:
            raise ValueError("CompletenessValidator needs required_fields")
        self.required_fields = tuple(required_fields)

    def check(self, record: Mapping) -> list[Finding]:
        return [
            Finding(self.code, field, "required field is missing or blank")
            for field in self.required_fields
            if _is_missing(record.get(field))
        ]

    def is_valid(self, record: Mapping) -> bool:
        get = record.get
        return not any(_is_missing(get(f)) for f in self.required_fields)


class PrecisionValidator(Validator):
    """"validate the score assigned to each topic" (paper §4, requirement 4).

    Enforces the ``DQConstraint`` bounds (``lower_bound``/``upper_bound``)
    on numeric fields.
    """

    code = "precision"

    def __init__(
        self,
        bounds: Mapping[str, tuple],
        name: str = "check_precision",
    ):
        super().__init__(name)
        if not bounds:
            raise ValueError("PrecisionValidator needs at least one bound")
        for field_name, (lower, upper) in bounds.items():
            if lower > upper:
                raise ValueError(
                    f"{field_name}: lower bound {lower} exceeds upper {upper}"
                )
        self.bounds = dict(bounds)

    def check(self, record: Mapping) -> list[Finding]:
        findings = []
        for field_name, (lower, upper) in self.bounds.items():
            value = record.get(field_name)
            if not in_bounds(value, lower, upper):
                findings.append(
                    Finding(
                        self.code,
                        field_name,
                        f"value {value!r} outside [{lower}, {upper}]",
                    )
                )
        return findings

    def is_valid(self, record: Mapping) -> bool:
        get = record.get
        return all(
            in_bounds(get(field_name), lower, upper)
            for field_name, (lower, upper) in self.bounds.items()
        )


class FormatValidator(Validator):
    """Syntactic accuracy: fields must fully match a regular expression."""

    code = "format"

    def __init__(
        self,
        patterns: Mapping[str, str],
        name: str = "check_format",
        allow_missing: bool = True,
    ):
        super().__init__(name)
        if not patterns:
            raise ValueError("FormatValidator needs at least one pattern")
        # compile once at construction, through the process-wide shared
        # cache: N validators over the same pattern share one regex object
        self.patterns = {f: compiled_pattern(p) for f, p in patterns.items()}
        self.allow_missing = allow_missing

    def check(self, record: Mapping) -> list[Finding]:
        findings = []
        for field_name, pattern in self.patterns.items():
            value = record.get(field_name)
            if _is_missing(value):
                if not self.allow_missing:
                    findings.append(
                        Finding(self.code, field_name, "value is missing")
                    )
                continue
            if not isinstance(value, str) or not pattern.fullmatch(value):
                findings.append(
                    Finding(
                        self.code,
                        field_name,
                        f"value {value!r} does not match "
                        f"{pattern.pattern!r}",
                    )
                )
        return findings

    def is_valid(self, record: Mapping) -> bool:
        for field_name, pattern in self.patterns.items():
            value = record.get(field_name)
            if _is_missing(value):
                if not self.allow_missing:
                    return False
                continue
            if not isinstance(value, str) or not pattern.fullmatch(value):
                return False
        return True


class EnumValidator(Validator):
    """Fields must take one of an allowed set of values."""

    code = "enum"

    def __init__(
        self,
        allowed: Mapping[str, Sequence],
        name: str = "check_enum",
        allow_missing: bool = True,
    ):
        super().__init__(name)
        if not allowed:
            raise ValueError("EnumValidator needs at least one field")
        self.allowed = {f: tuple(vals) for f, vals in allowed.items()}
        self.allow_missing = allow_missing

    def check(self, record: Mapping) -> list[Finding]:
        findings = []
        for field_name, values in self.allowed.items():
            value = record.get(field_name)
            if _is_missing(value):
                if not self.allow_missing:
                    findings.append(
                        Finding(self.code, field_name, "value is missing")
                    )
                continue
            if value not in values:
                findings.append(
                    Finding(
                        self.code,
                        field_name,
                        f"value {value!r} not in {list(values)!r}",
                    )
                )
        return findings

    def is_valid(self, record: Mapping) -> bool:
        for field_name, values in self.allowed.items():
            value = record.get(field_name)
            if _is_missing(value):
                if not self.allow_missing:
                    return False
                continue
            if value not in values:
                return False
        return True


class ConsistencyValidator(Validator):
    """Cross-field rules: each rule is ``(description, predicate)``."""

    code = "consistency"

    def __init__(
        self,
        rules: Sequence[tuple[str, Callable[[Mapping], bool]]],
        name: str = "check_consistency",
    ):
        super().__init__(name)
        if not rules:
            raise ValueError("ConsistencyValidator needs at least one rule")
        self.rules = list(rules)

    def check(self, record: Mapping) -> list[Finding]:
        findings = []
        for description, predicate in self.rules:
            try:
                ok = predicate(record)
            except Exception:
                ok = False
            if not ok:
                findings.append(Finding(self.code, "<record>", description))
        return findings

    def is_valid(self, record: Mapping) -> bool:
        for _description, predicate in self.rules:
            try:
                ok = predicate(record)
            except Exception:
                ok = False
            if not ok:
                return False
        return True


class OclConsistencyValidator(Validator):
    """Cross-field rules stated declaratively in OCL-lite.

    Each rule is an expression over the record (``self`` is the record
    dict; absent fields read as ``null``), e.g.::

        OclConsistencyValidator(
            ["self.total_cents = self.quantity * self.unit_price_cents"]
        )

    A rule that evaluates to anything but ``true`` — including failing to
    evaluate — counts as violated.  Because the rules are plain text they
    travel inside the design model (``ValidatorSpec.rules``), so the
    Consistency DQSR is fully declarative end to end.
    """

    code = "consistency"

    def __init__(self, rules, name: str = "check_consistency"):
        super().__init__(name)
        from repro.core.ocl import OclExpression  # core is the base layer

        rules = list(rules)
        if not rules:
            raise ValueError("OclConsistencyValidator needs at least one rule")
        self.rules = [(text, OclExpression(text)) for text in rules]

    def check(self, record: Mapping) -> list[Finding]:
        from repro.core.errors import OclError

        findings = []
        for text, expression in self.rules:
            try:
                ok = expression.evaluate(dict(record)) is True
            except OclError:
                ok = False
            if not ok:
                findings.append(Finding(self.code, "<record>", text))
        return findings

    def is_valid(self, record: Mapping) -> bool:
        from repro.core.errors import OclError

        for _text, expression in self.rules:
            try:
                if expression.evaluate(dict(record)) is not True:
                    return False
            except OclError:
                return False
        return True


class CurrentnessValidator(Validator):
    """Data must not be older than ``max_age`` ticks at check time."""

    code = "currentness"

    def __init__(
        self,
        age_field: str,
        max_age: int,
        name: str = "check_currentness",
    ):
        super().__init__(name)
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        self.age_field = age_field
        self.max_age = max_age

    def check(self, record: Mapping) -> list[Finding]:
        age = record.get(self.age_field)
        if age is None or not isinstance(age, (int, float)) or age > self.max_age:
            return [
                Finding(
                    self.code,
                    self.age_field,
                    f"age {age!r} exceeds maximum {self.max_age}",
                )
            ]
        return []

    def is_valid(self, record: Mapping) -> bool:
        age = record.get(self.age_field)
        return (
            age is not None
            and isinstance(age, (int, float))
            and age <= self.max_age
        )


class CredibilityValidator(Validator):
    """The record's source must be one of the trusted sources."""

    code = "credibility"

    def __init__(
        self,
        source_field: str,
        trusted_sources: Iterable[str],
        name: str = "check_credibility",
    ):
        super().__init__(name)
        self.source_field = source_field
        self.trusted_sources = frozenset(trusted_sources)
        if not self.trusted_sources:
            raise ValueError("CredibilityValidator needs trusted sources")

    def check(self, record: Mapping) -> list[Finding]:
        source = record.get(self.source_field)
        if source not in self.trusted_sources:
            return [
                Finding(
                    self.code,
                    self.source_field,
                    f"source {source!r} is not trusted",
                )
            ]
        return []

    def is_valid(self, record: Mapping) -> bool:
        return record.get(self.source_field) in self.trusted_sources


class UniquenessValidator(Validator):
    """Stateful: rejects a key tuple already seen by this validator."""

    code = "uniqueness"

    def __init__(self, key_fields: Sequence[str], name: str = "check_uniqueness"):
        super().__init__(name)
        if not key_fields:
            raise ValueError("UniquenessValidator needs key fields")
        self.key_fields = tuple(key_fields)
        self._seen: set[tuple] = set()

    def check(self, record: Mapping) -> list[Finding]:
        key = tuple(record.get(f) for f in self.key_fields)
        if key in self._seen:
            return [
                Finding(
                    self.code,
                    ", ".join(self.key_fields),
                    f"duplicate key {key!r}",
                )
            ]
        return []

    def is_valid(self, record: Mapping) -> bool:
        return tuple(record.get(f) for f in self.key_fields) not in self._seen

    def commit(self, record: Mapping) -> None:
        """Remember an accepted record's key (call after a successful write)."""
        self._seen.add(tuple(record.get(f) for f in self.key_fields))

    def reset(self) -> None:
        self._seen.clear()


@dataclass
class SuiteReport:
    """Aggregate outcome of running a suite over one or many records."""

    records_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    findings_per_validator: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def count(self, code: str) -> int:
        return sum(1 for f in self.findings if f.code == code)

    def render(self) -> str:
        if self.ok:
            return f"OK — {self.records_checked} record(s), no findings"
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) over "
            f"{self.records_checked} record(s)"
        )
        return "\n".join(lines)


class ValidatorSuite:
    """A ``DQ_Validator`` class at runtime: an ordered set of operations."""

    def __init__(self, name: str, validators: Optional[Sequence[Validator]] = None):
        self.name = name
        self._validators: list[Validator] = list(validators or [])

    def add(self, validator: Validator) -> "ValidatorSuite":
        self._validators.append(validator)
        return self

    @property
    def validators(self) -> list[Validator]:
        return list(self._validators)

    @property
    def operation_names(self) -> list[str]:
        """The DQ_Validator operation names, e.g. ``check_completeness``."""
        return [v.name for v in self._validators]

    def check_record(self, record: Mapping) -> list[Finding]:
        findings: list[Finding] = []
        for validator in self._validators:
            findings.extend(validator.check(record))
        return findings

    def run(self, records: Iterable[Mapping]) -> SuiteReport:
        report = SuiteReport()
        for record in records:
            report.records_checked += 1
            for validator in self._validators:
                found = validator.check(record)
                if found:
                    report.findings.extend(found)
                    bucket = report.findings_per_validator.setdefault(
                        validator.name, []
                    )
                    bucket.extend(found)
        return report

    def __len__(self) -> int:
        return len(self._validators)

    def __repr__(self) -> str:
        return f"<ValidatorSuite {self.name!r} ({len(self)} validators)>"

"""Data quality measurement functions.

Each ISO/IEC 25012 characteristic used by the library gets a measurement
over plain record dicts (the representation the simulated web runtime
stores).  Ratios are in ``[0, 1]``; ``1.0`` is perfect quality.  The
functions are deliberately total: empty inputs measure as perfect (nothing
to violate), matching the usual convention in DQ assessment frameworks
(Batini et al. 2009, which the paper builds on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Mapping, Optional, Sequence


@lru_cache(maxsize=512)
def compiled_pattern(pattern: str) -> re.Pattern:
    """One shared compiled regex per pattern string, process-wide.

    Every consumer of a DQ format pattern — :class:`FormatValidator`
    construction, the measurement functions below, the profiler's known
    patterns — funnels through this cache, so a pattern is parsed once no
    matter how many validators, shards or scorecards reference it.
    """
    return re.compile(pattern)


def _is_missing(value) -> bool:
    """The DQ notion of a missing value: None or blank/whitespace text."""
    if value is None:
        return True
    if isinstance(value, str) and not value.strip():
        return True
    return False


# ---------------------------------------------------------------------------
# Completeness
# ---------------------------------------------------------------------------


def completeness_ratio(record: Mapping, expected_fields: Sequence[str]) -> float:
    """Fraction of expected fields populated in one record."""
    if not expected_fields:
        return 1.0
    populated = sum(
        1 for field in expected_fields if not _is_missing(record.get(field))
    )
    return populated / len(expected_fields)


def missing_fields(record: Mapping, expected_fields: Sequence[str]) -> list[str]:
    """The expected fields that are absent or blank."""
    return [f for f in expected_fields if _is_missing(record.get(f))]


def dataset_completeness(
    records: Iterable[Mapping], expected_fields: Sequence[str]
) -> float:
    """Mean per-record completeness across a dataset."""
    ratios = [completeness_ratio(r, expected_fields) for r in records]
    if not ratios:
        return 1.0
    return sum(ratios) / len(ratios)


# ---------------------------------------------------------------------------
# Precision
# ---------------------------------------------------------------------------


def in_bounds(value, lower, upper) -> bool:
    """The paper's DQConstraint semantics: ``lower_bound <= v <= upper_bound``."""
    if _is_missing(value):
        return False
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    return lower <= value <= upper


def precision_ratio(
    records: Iterable[Mapping], field: str, lower, upper
) -> float:
    """Fraction of records whose ``field`` lies within the declared bounds."""
    records = list(records)
    if not records:
        return 1.0
    valid = sum(1 for r in records if in_bounds(r.get(field), lower, upper))
    return valid / len(records)


# ---------------------------------------------------------------------------
# Consistency
# ---------------------------------------------------------------------------


def consistency_violations(
    record: Mapping, rules: Sequence[Callable[[Mapping], bool]]
) -> int:
    """Number of cross-field rules the record violates (rule True = ok)."""
    return sum(1 for rule in rules if not rule(record))


def consistency_ratio(
    records: Iterable[Mapping], rules: Sequence[Callable[[Mapping], bool]]
) -> float:
    """Fraction of (record, rule) pairs that hold."""
    records = list(records)
    if not records or not rules:
        return 1.0
    total = len(records) * len(rules)
    violations = sum(consistency_violations(r, rules) for r in records)
    return (total - violations) / total


# ---------------------------------------------------------------------------
# Format validity (syntactic accuracy)
# ---------------------------------------------------------------------------


def format_valid(value, pattern: str) -> bool:
    """True when the value is a string fully matching ``pattern``."""
    if not isinstance(value, str):
        return False
    return compiled_pattern(pattern).fullmatch(value) is not None


def format_validity_ratio(
    records: Iterable[Mapping], field: str, pattern: str
) -> float:
    records = list(records)
    if not records:
        return 1.0
    compiled = compiled_pattern(pattern)
    valid = sum(
        1
        for r in records
        if isinstance(r.get(field), str) and compiled.fullmatch(r[field])
    )
    return valid / len(records)


# ---------------------------------------------------------------------------
# Currentness
# ---------------------------------------------------------------------------


def currentness_score(age, max_age) -> float:
    """Linear decay from 1.0 (fresh) to 0.0 (older than ``max_age``)."""
    if max_age <= 0:
        raise ValueError("max_age must be positive")
    if age is None:
        return 0.0
    if age < 0:
        raise ValueError("age cannot be negative")
    return max(0.0, 1.0 - age / max_age)


def is_current(age, max_age) -> bool:
    return age is not None and 0 <= age <= max_age


# ---------------------------------------------------------------------------
# Uniqueness / duplication
# ---------------------------------------------------------------------------


def uniqueness_ratio(records: Iterable[Mapping], key_fields: Sequence[str]) -> float:
    """Distinct key tuples over total records (1.0 = no duplicates)."""
    records = list(records)
    if not records:
        return 1.0
    keys = [tuple(r.get(f) for f in key_fields) for r in records]
    return len(set(keys)) / len(keys)


def duplicates(
    records: Sequence[Mapping], key_fields: Sequence[str]
) -> list[tuple[int, int]]:
    """Index pairs of records sharing the same key tuple (first occurrence wins)."""
    seen: dict[tuple, int] = {}
    pairs: list[tuple[int, int]] = []
    for index, record in enumerate(records):
        key = tuple(record.get(f) for f in key_fields)
        if key in seen:
            pairs.append((seen[key], index))
        else:
            seen[key] = index
    return pairs


# ---------------------------------------------------------------------------
# Accuracy against a reference (gold) dataset
# ---------------------------------------------------------------------------


def accuracy_ratio(
    records: Sequence[Mapping],
    reference: Sequence[Mapping],
    fields: Sequence[str],
) -> float:
    """Fraction of (record, field) cells agreeing with the reference.

    Records are matched positionally; shorter side truncates the comparison.
    """
    if not records or not reference or not fields:
        return 1.0
    paired = list(zip(records, reference))
    total = len(paired) * len(fields)
    agree = sum(
        1
        for record, truth in paired
        for field in fields
        if record.get(field) == truth.get(field)
    )
    return agree / total


# ---------------------------------------------------------------------------
# Aggregate assessment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Measurement:
    """One named measurement of one characteristic."""

    characteristic: str
    value: float
    detail: str = ""

    def __post_init__(self):
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(
                f"measurement {self.characteristic} out of [0,1]: {self.value}"
            )


def weighted_score(
    measurements: Sequence[Measurement],
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """Weighted mean of measurements; uniform weights by default."""
    if not measurements:
        return 1.0
    if weights is None:
        return sum(m.value for m in measurements) / len(measurements)
    total_weight = sum(weights.get(m.characteristic, 1.0) for m in measurements)
    if total_weight == 0:
        raise ValueError("weights sum to zero")
    return (
        sum(m.value * weights.get(m.characteristic, 1.0) for m in measurements)
        / total_weight
    )

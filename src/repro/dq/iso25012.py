"""The ISO/IEC 25012 data quality model — the paper's Table 1.

Fifteen data quality characteristics in three groups:

* **inherent** — intrinsic potential of the data to satisfy needs;
* **inherent and system dependent** — both facets;
* **system dependent** — obtained and preserved through the computer system.

Definitions are reproduced verbatim from the paper's Table 1 (which quotes
ISO/IEC 25012:2008).  The DQ_WebRE case study (§4) uses Confidentiality,
Completeness, Traceability and Precision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Category(enum.Enum):
    """The grouping used by ISO/IEC 25012 and the paper's Table 1."""

    INHERENT = "Inherent"
    INHERENT_AND_SYSTEM_DEPENDENT = "Inherent and System dependent"
    SYSTEM_DEPENDENT = "System dependent"


@dataclass(frozen=True)
class Characteristic:
    """One ISO/IEC 25012 data quality characteristic."""

    name: str
    category: Category
    definition: str

    def __str__(self) -> str:
        return self.name


def _inherent(name: str, definition: str) -> Characteristic:
    return Characteristic(name, Category.INHERENT, definition)


def _both(name: str, definition: str) -> Characteristic:
    return Characteristic(
        name, Category.INHERENT_AND_SYSTEM_DEPENDENT, definition
    )


def _system(name: str, definition: str) -> Characteristic:
    return Characteristic(name, Category.SYSTEM_DEPENDENT, definition)


ACCURACY = _inherent(
    "Accuracy",
    "The degree to which data have attributes that correctly represent the "
    "true value of the intended attribute of a concept or event in a "
    "specific context of use.",
)
COMPLETENESS = _inherent(
    "Completeness",
    "The degree to which subject data associated with an entity have values "
    "for all expected attributes and related entity instances in a specific "
    "context of use.",
)
CONSISTENCY = _inherent(
    "Consistency",
    "The degree to which data have attributes that are free from "
    "contradiction and are coherent with other data in a specific context "
    "of use.",
)
CREDIBILITY = _inherent(
    "Credibility",
    "The degree to which data have attributes that are regarded as true and "
    "believable by users in a specific context of use.",
)
CURRENTNESS = _inherent(
    "Currentness",
    "The degree to which data have attributes that are of the right age in "
    "a specific context of use.",
)
ACCESSIBILITY = _both(
    "Accessibility",
    "The degree to which data can be accessed in a specific context of use, "
    "particularly by people who need supporting technology or special "
    "configuration because of some disability.",
)
COMPLIANCE = _both(
    "Compliance",
    "The degree to which data have attributes that adhere to standards, "
    "conventions or regulations in force and similar rules relating to data "
    "quality in a specific context of use.",
)
CONFIDENTIALITY = _both(
    "Confidentiality",
    "The degree to which data have attributes that ensure that they are "
    "only accessible and interpretable by authorized users in a specific "
    "context of use.",
)
EFFICIENCY = _both(
    "Efficiency",
    "The degree to which data have attributes that can be processed and "
    "provide the expected levels of performance by using the appropriate "
    "amounts and types of resources in a specific context of use.",
)
PRECISION = _both(
    "Precision",
    "The degree to which data have attributes that are exact or that "
    "provide discrimination in a specific context of use.",
)
TRACEABILITY = _both(
    "Traceability",
    "The degree to which data have attributes that provide an audit trail "
    "of access to the data and of any changes made to the data in a "
    "specific context of use.",
)
UNDERSTANDABILITY = _both(
    "Understandability",
    "The degree to which data have attributes that enable it to be read and "
    "interpreted by users, and are expressed in appropriate languages, "
    "symbols and units in a specific context of use.",
)
AVAILABILITY = _system(
    "Availability",
    "The degree to which data have attributes that enable them to be "
    "retrieved by authorized users and/or applications in a specific "
    "context.",
)
PORTABILITY = _system(
    "Portability",
    "The degree to which data have attributes that enable them to be "
    "installed, replaced or moved from one system to another while "
    "preserving the existing quality in a specific context of use.",
)
RECOVERABILITY = _system(
    "Recoverability",
    "The degree to which data have attributes that enable them to maintain "
    "and preserve a specified level of operations and quality, even in the "
    "event of failure, in a specific context of use.",
)

#: All fifteen characteristics in the paper's Table 1 order.
ALL_CHARACTERISTICS: tuple[Characteristic, ...] = (
    ACCURACY,
    COMPLETENESS,
    CONSISTENCY,
    CREDIBILITY,
    CURRENTNESS,
    ACCESSIBILITY,
    COMPLIANCE,
    CONFIDENTIALITY,
    EFFICIENCY,
    PRECISION,
    TRACEABILITY,
    UNDERSTANDABILITY,
    AVAILABILITY,
    PORTABILITY,
    RECOVERABILITY,
)

_BY_NAME = {c.name.lower(): c for c in ALL_CHARACTERISTICS}

#: Characteristic names, used as the enum for model attributes.
CHARACTERISTIC_NAMES: tuple[str, ...] = tuple(
    c.name for c in ALL_CHARACTERISTICS
)


def by_name(name: str) -> Characteristic:
    """Look a characteristic up case-insensitively; raises KeyError."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown ISO/IEC 25012 characteristic {name!r}; "
            f"expected one of {', '.join(CHARACTERISTIC_NAMES)}"
        ) from None


def find(name: str) -> Optional[Characteristic]:
    """Like :func:`by_name` but returns ``None`` instead of raising."""
    return _BY_NAME.get(name.lower())


def by_category(category: Category) -> tuple[Characteristic, ...]:
    """The characteristics of one Table 1 group, in table order."""
    return tuple(c for c in ALL_CHARACTERISTICS if c.category is category)


def is_inherent(characteristic: Characteristic) -> bool:
    """True for characteristics with an inherent facet."""
    return characteristic.category in (
        Category.INHERENT,
        Category.INHERENT_AND_SYSTEM_DEPENDENT,
    )


def is_system_dependent(characteristic: Characteristic) -> bool:
    """True for characteristics with a system-dependent facet."""
    return characteristic.category in (
        Category.SYSTEM_DEPENDENT,
        Category.INHERENT_AND_SYSTEM_DEPENDENT,
    )

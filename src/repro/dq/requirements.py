"""DQR and DQSR: the requirement concepts at the heart of the paper.

A **Data Quality Requirement (DQR)** is *"the specification of a set of
dimensions of Data Quality that a set of data should meet for a specific task
performed by a given user"* (§1, quoting Guerra-García et al. 2011).

Each DQR is *"collected, managed, and later transformed into the
corresponding Data Quality Software Requirements (DQSR)"*, which are
functional requirements the web application must implement: metadata to
capture, validator operations to run, constraints to enforce.

This module provides the plain data model (and a catalogue) for both levels;
the model-driven derivation rules live in :mod:`repro.dqwebre.derivation`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from . import iso25012
from .dimensions import Dimension
from .iso25012 import Characteristic

_dqr_ids = itertools.count(1)
_dqsr_ids = itertools.count(1)


class Mechanism(enum.Enum):
    """How a DQSR is realized in the application (paper §4).

    * ``METADATA`` — capture and store DQ metadata alongside the data
      (Traceability's ``stored_by``/``stored_date``, Confidentiality's
      ``security_level``/``available_to``);
    * ``VALIDATOR`` — implement a checking operation in a DQ_Validator class
      (``check_completeness()``, ``check_precision()``);
    * ``CONSTRAINT`` — declare value bounds in a DQConstraint element
      (``lower_bound``/``upper_bound``).
    """

    METADATA = "metadata"
    VALIDATOR = "validator"
    CONSTRAINT = "constraint"


@dataclass
class DataQualityRequirement:
    """A user-level DQR: dimensions/characteristics a task's data must meet."""

    task: str
    user_role: str
    data_items: tuple[str, ...]
    characteristic: Characteristic
    statement: str = ""
    dimensions: tuple[Dimension, ...] = ()
    req_id: str = ""

    def __post_init__(self):
        if not self.req_id:
            self.req_id = f"DQR-{next(_dqr_ids)}"
        if not self.task:
            raise ValueError("a DQR needs the task it applies to")
        if not self.user_role:
            raise ValueError("a DQR needs the user role stating it")
        self.data_items = tuple(self.data_items)
        if not self.data_items:
            raise ValueError("a DQR needs at least one data item")

    def describe(self) -> str:
        items = ", ".join(self.data_items)
        return (
            f"[{self.req_id}] {self.characteristic.name} of ({items}) for "
            f"task {self.task!r} as {self.user_role}: "
            f"{self.statement or self.characteristic.definition}"
        )


@dataclass
class DataQualitySoftwareRequirement:
    """A DQSR: the functional requirement derived from a DQR.

    ``functional_statement`` mirrors the paper's phrasing, e.g. *"check that
    data will be accessed only by authorized users"*; the remaining fields
    carry the implementation payload for code generation.
    """

    derived_from: str
    characteristic: Characteristic
    functional_statement: str
    mechanism: Mechanism
    metadata_attributes: tuple[str, ...] = ()
    operations: tuple[str, ...] = ()
    constraints: dict = field(default_factory=dict)
    target_fields: tuple[str, ...] = ()
    req_id: str = ""

    def __post_init__(self):
        if not self.req_id:
            self.req_id = f"DQSR-{next(_dqsr_ids)}"
        self.metadata_attributes = tuple(self.metadata_attributes)
        self.operations = tuple(self.operations)
        self.target_fields = tuple(self.target_fields)
        if self.mechanism is Mechanism.METADATA and not self.metadata_attributes:
            raise ValueError(
                f"{self.req_id}: METADATA mechanism needs metadata_attributes"
            )
        if self.mechanism is Mechanism.VALIDATOR and not self.operations:
            raise ValueError(
                f"{self.req_id}: VALIDATOR mechanism needs operations"
            )
        if self.mechanism is Mechanism.CONSTRAINT and not self.constraints:
            raise ValueError(
                f"{self.req_id}: CONSTRAINT mechanism needs constraints"
            )

    def describe(self) -> str:
        return (
            f"[{self.req_id} <- {self.derived_from}] "
            f"{self.characteristic.name} via {self.mechanism.value}: "
            f"{self.functional_statement}"
        )


class RequirementsCatalog:
    """An in-memory catalogue of DQRs and their derived DQSRs."""

    def __init__(self):
        self._dqrs: dict[str, DataQualityRequirement] = {}
        self._dqsrs: dict[str, DataQualitySoftwareRequirement] = {}

    # -- DQR level -------------------------------------------------------

    def add_requirement(self, dqr: DataQualityRequirement) -> DataQualityRequirement:
        if dqr.req_id in self._dqrs:
            raise ValueError(f"duplicate DQR id {dqr.req_id!r}")
        self._dqrs[dqr.req_id] = dqr
        return dqr

    def requirement(self, req_id: str) -> DataQualityRequirement:
        return self._dqrs[req_id]

    @property
    def requirements(self) -> list[DataQualityRequirement]:
        return list(self._dqrs.values())

    def requirements_for_task(self, task: str) -> list[DataQualityRequirement]:
        return [d for d in self._dqrs.values() if d.task == task]

    def requirements_for_role(self, role: str) -> list[DataQualityRequirement]:
        return [d for d in self._dqrs.values() if d.user_role == role]

    def by_characteristic(
        self, characteristic: Characteristic
    ) -> list[DataQualityRequirement]:
        return [
            d for d in self._dqrs.values()
            if d.characteristic == characteristic
        ]

    # -- DQSR level -------------------------------------------------------

    def add_software_requirement(
        self, dqsr: DataQualitySoftwareRequirement
    ) -> DataQualitySoftwareRequirement:
        if dqsr.req_id in self._dqsrs:
            raise ValueError(f"duplicate DQSR id {dqsr.req_id!r}")
        if dqsr.derived_from and dqsr.derived_from not in self._dqrs:
            raise ValueError(
                f"{dqsr.req_id} derives from unknown DQR {dqsr.derived_from!r}"
            )
        self._dqsrs[dqsr.req_id] = dqsr
        return dqsr

    def software_requirement(self, req_id: str) -> DataQualitySoftwareRequirement:
        return self._dqsrs[req_id]

    @property
    def software_requirements(self) -> list[DataQualitySoftwareRequirement]:
        return list(self._dqsrs.values())

    def derived_from(self, dqr_id: str) -> list[DataQualitySoftwareRequirement]:
        return [
            s for s in self._dqsrs.values() if s.derived_from == dqr_id
        ]

    def by_mechanism(
        self, mechanism: Mechanism
    ) -> list[DataQualitySoftwareRequirement]:
        return [s for s in self._dqsrs.values() if s.mechanism is mechanism]

    # -- analysis -------------------------------------------------------------

    def untranslated_requirements(self) -> list[DataQualityRequirement]:
        """DQRs without any derived DQSR — a gap the analyst must close."""
        covered = {s.derived_from for s in self._dqsrs.values()}
        return [d for d in self._dqrs.values() if d.req_id not in covered]

    def characteristics_in_use(self) -> list[Characteristic]:
        """The distinct ISO characteristics the catalogue touches."""
        seen: list[Characteristic] = []
        for dqr in self._dqrs.values():
            if dqr.characteristic not in seen:
                seen.append(dqr.characteristic)
        return seen

    def summary(self) -> str:
        lines = [
            f"{len(self._dqrs)} DQR(s), {len(self._dqsrs)} DQSR(s), "
            f"{len(self.untranslated_requirements())} untranslated"
        ]
        for dqr in self._dqrs.values():
            lines.append(dqr.describe())
            for dqsr in self.derived_from(dqr.req_id):
                lines.append(f"  -> {dqsr.describe()}")
        return "\n".join(lines)


def requirement_for(
    task: str,
    user_role: str,
    data_items: Iterable[str],
    characteristic_name: str,
    statement: str = "",
) -> DataQualityRequirement:
    """Convenience constructor resolving the characteristic by name."""
    return DataQualityRequirement(
        task=task,
        user_role=user_role,
        data_items=tuple(data_items),
        characteristic=iso25012.by_name(characteristic_name),
        statement=statement,
    )

"""Mermaid emitters — a second diagram syntax for web-friendly rendering.

Covers the diagram kinds the reproduction needs: metamodel/class diagrams
(``classDiagram``), use case diagrams (``graph``, as Mermaid has no native
use case syntax) and activity diagrams (``flowchart``).
"""

from __future__ import annotations

from typing import Iterable

from repro.core import MObject
from repro.core.meta import MANY, MetaPackage
from repro.uml import metamodel as U
from repro.uml.profiles import stereotype_names


def _identifier(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"e_{cleaned}"
    return cleaned


def metamodel_diagram(package: MetaPackage, highlight: Iterable[str] = ()) -> str:
    """A metamodel as a Mermaid classDiagram."""
    highlight = set(highlight)
    lines = ["classDiagram"]
    classes = list(package.all_classes())
    for metaclass in classes:
        identifier = _identifier(metaclass.name)
        lines.append(f"class {identifier}")
        if metaclass.abstract:
            lines.append(f"<<abstract>> {identifier}")
        elif metaclass.name in highlight:
            lines.append(f"<<DQ>> {identifier}")
        for attribute in metaclass.attributes.values():
            lines.append(
                f"{identifier} : {attribute.name} {attribute.type.name}"
            )
    for metaclass in classes:
        identifier = _identifier(metaclass.name)
        for superclass in metaclass.superclasses:
            lines.append(f"{_identifier(superclass.name)} <|-- {identifier}")
        for reference in metaclass.references.values():
            if not reference.resolved:
                continue
            upper = "*" if reference.upper == MANY else str(reference.upper)
            link = "*--" if reference.containment else "-->"
            lines.append(
                f'{identifier} {link} "{reference.lower}..{upper}" '
                f"{_identifier(reference.target.name)} : {reference.name}"
            )
    return "\n".join(lines)


def usecase_diagram(package: MObject) -> str:
    """Actors and use cases as a Mermaid graph (ellipses for use cases)."""
    lines = ["graph LR"]
    for element in package.packagedElements:
        if element.is_instance_of(U.Actor):
            lines.append(
                f'{_identifier(element.name)}["{_label(element)}"]'
            )
        elif element.is_instance_of(U.UseCase):
            lines.append(
                f'{_identifier(element.name)}(["{_label(element)}"])'
            )
    for element in package.packagedElements:
        if not element.is_instance_of(U.UseCase):
            continue
        identifier = _identifier(element.name)
        for actor in element.actors:
            lines.append(f"{_identifier(actor.name)} --- {identifier}")
        for link in element.includes:
            lines.append(
                f"{identifier} -.->|include| "
                f"{_identifier(link.addition.name)}"
            )
        for link in element.extends:
            lines.append(
                f"{identifier} -.->|extend| "
                f"{_identifier(link.extendedCase.name)}"
            )
    return "\n".join(lines)


def _label(element: MObject) -> str:
    names = stereotype_names(element)
    prefix = "".join(f"«{n}» " for n in names)
    return f"{prefix}{element.name}"


def activity_diagram(activity: MObject) -> str:
    """An activity as a Mermaid flowchart."""
    lines = ["flowchart TD"]
    for node in activity.nodes:
        identifier = _identifier(node.name or node.id)
        if node.is_instance_of(U.InitialNode):
            lines.append(f"{identifier}((start))")
        elif node.is_instance_of(U.ActivityFinalNode) or node.is_instance_of(
            U.FlowFinalNode
        ):
            lines.append(f"{identifier}(((end)))")
        elif node.is_instance_of(U.DecisionNode) or node.is_instance_of(
            U.MergeNode
        ):
            lines.append(f'{identifier}{{"{_label(node)}"}}')
        elif node.is_instance_of(U.ObjectNode):
            lines.append(f'{identifier}[/"{_label(node)}"/]')
        else:
            lines.append(f'{identifier}["{_label(node)}"]')
    for edge in activity.edges:
        source = _identifier(edge.source.name or edge.source.id)
        target = _identifier(edge.target.name or edge.target.id)
        if edge.is_instance_of(U.ObjectFlow):
            arrow = "-.->"
        else:
            arrow = "-->"
        guard = f"|{edge.guard}|" if edge.guard else ""
        lines.append(f"{source} {arrow}{guard} {target}")
    return "\n".join(lines)

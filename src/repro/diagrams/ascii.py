"""Plain-text renderings for terminals, logs and documentation."""

from __future__ import annotations

from repro.core import MObject, Slot
from repro.core.meta import MetaPackage


def containment_tree(root: MObject, indent: str = "") -> str:
    """The containment tree of a model, one element per line."""
    lines = [f"{indent}{root.metaclass.name}: {root.label()}"]
    for child in root.owned_elements():
        lines.append(containment_tree(child, indent + "  "))
    return "\n".join(lines)


def metamodel_summary(package: MetaPackage) -> str:
    """Classes, features and inheritance of a metamodel, as text."""
    lines = [f"package {package.qualified_name()} <{package.uri}>"]
    for sub in package.subpackages.values():
        lines.append(metamodel_summary(sub))
    for metaclass in package.classes.values():
        flags = " (abstract)" if metaclass.abstract else ""
        supers = ", ".join(s.name for s in metaclass.superclasses)
        extends = f" extends {supers}" if supers else ""
        lines.append(f"  class {metaclass.name}{flags}{extends}")
        for attribute in metaclass.attributes.values():
            lines.append(
                f"    {attribute.name}: {attribute.type.name} "
                f"[{attribute.multiplicity()}]"
            )
        for reference in metaclass.references.values():
            kind = "contains" if reference.containment else "refs"
            target = (
                reference.target.name
                if reference.resolved
                else repr(reference._target)
            )
            lines.append(
                f"    {reference.name} {kind} {target} "
                f"[{reference.multiplicity()}]"
            )
    return "\n".join(lines)


def table(headers: list[str], rows: list[list[str]], max_width: int = 40) -> str:
    """A monospace table with simple column sizing and cell truncation."""
    def clip(text: str) -> str:
        text = str(text)
        if len(text) <= max_width:
            return text
        return text[: max_width - 1] + "…"

    clipped = [[clip(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in clipped:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: list[str]) -> str:
        return " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in clipped)
    return "\n".join(out)


def object_card(obj: MObject) -> str:
    """One element with its feature values, card style."""
    lines = [f"[{obj.metaclass.name}] {obj.label()}"]
    for name in obj.metaclass.all_attributes():
        value = obj.get(name)
        if isinstance(value, Slot):
            if len(value):
                lines.append(f"  {name} = {list(value)!r}")
        elif value is not None:
            lines.append(f"  {name} = {value!r}")
    for name, reference in obj.metaclass.all_references().items():
        if reference.containment:
            continue
        value = obj.get(name)
        if isinstance(value, Slot):
            if len(value):
                labels = ", ".join(item.label() for item in value)
                lines.append(f"  {name} -> {labels}")
        elif value is not None:
            lines.append(f"  {name} -> {value.label()}")
    return "\n".join(lines)

"""``repro.diagrams`` — diagram source emitters (PlantUML, Mermaid, ASCII)."""

from . import ascii, mermaid, plantuml

__all__ = ["plantuml", "mermaid", "ascii"]

"""PlantUML emitters: render models and metamodels as diagram sources.

The paper's figures are Enterprise Architect diagrams; we regenerate each as
PlantUML text — machine-readable, diffable, and renderable with any PlantUML
toolchain.  Emitters:

* :func:`metamodel_diagram` — a :class:`MetaPackage` as a class diagram
  (Fig. 1 flavour);
* :func:`usecase_diagram` — a UML package as a use case diagram with
  stereotypes and include/extend (Fig. 6 flavour);
* :func:`activity_diagram` — a UML activity as an activity diagram
  (Fig. 7 flavour);
* :func:`class_diagram` — UML classes/associations with stereotypes
  (Fig. 4 flavour);
* :func:`profile_diagram` — a UML profile's stereotypes, tags and
  constraints (Figs. 2-5 flavour);
* :func:`requirement_diagram` — SysML-ish requirements and their links.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core import MObject
from repro.core.meta import MANY, MetaClass, MetaPackage
from repro.uml import metamodel as U
from repro.uml.profiles import stereotype_names


def _identifier(name: str) -> str:
    """A PlantUML-safe alias for an element name."""
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"e_{cleaned}"
    return cleaned


def _stereo_prefix(element: MObject) -> str:
    names = stereotype_names(element)
    return "".join(f"<<{name}>> " for name in names)


# ---------------------------------------------------------------------------
# Metamodel (MetaPackage) -> class diagram
# ---------------------------------------------------------------------------


def metamodel_diagram(
    package: MetaPackage,
    title: str = "",
    highlight: Iterable[str] = (),
) -> str:
    """Render a metamodel as a PlantUML class diagram.

    ``highlight`` names metaclasses to tint (used to mark the DQ additions
    of Fig. 1 against the WebRE base).
    """
    highlight = set(highlight)
    lines = ["@startuml"]
    if title:
        lines.append(f"title {title}")
    lines.append("skinparam classAttributeIconSize 0")
    classes = list(package.all_classes())
    for metaclass in classes:
        lines.extend(_metaclass_block(metaclass, metaclass.name in highlight))
    for metaclass in classes:
        for superclass in metaclass.superclasses:
            lines.append(
                f"{_identifier(superclass.name)} <|-- "
                f"{_identifier(metaclass.name)}"
            )
        for reference in metaclass.references.values():
            if not reference.resolved:
                continue
            arrow = "*--" if reference.containment else "-->"
            upper = "*" if reference.upper == MANY else str(reference.upper)
            label = f"{reference.name} [{reference.lower}..{upper}]"
            lines.append(
                f"{_identifier(metaclass.name)} {arrow} "
                f"{_identifier(reference.target.name)} : {label}"
            )
    lines.append("@enduml")
    return "\n".join(lines)


def _metaclass_block(metaclass: MetaClass, highlighted: bool) -> list[str]:
    color = " #D5E8D4" if highlighted else ""
    kind = "abstract class" if metaclass.abstract else "class"
    header = f'{kind} "{metaclass.name}" as {_identifier(metaclass.name)}{color} {{'
    lines = [header]
    for attribute in metaclass.attributes.values():
        upper = "*" if attribute.upper == MANY else str(attribute.upper)
        suffix = f" [{attribute.lower}..{upper}]" if attribute.many else ""
        lines.append(f"  {attribute.name} : {attribute.type.name}{suffix}")
    lines.append("}")
    return lines


# ---------------------------------------------------------------------------
# UML use case diagram
# ---------------------------------------------------------------------------


def usecase_diagram(package: MObject, title: str = "") -> str:
    """Render a UML package's actors/use cases as a use case diagram."""
    lines = ["@startuml"]
    if title:
        lines.append(f"title {title}")
    actors = _packaged(package, U.Actor)
    cases = _packaged(package, U.UseCase)
    for actor in actors:
        stereo = _stereo_text(actor)
        lines.append(f'actor "{actor.name}" as {_identifier(actor.name)}{stereo}')
    for case in cases:
        stereo = _stereo_text(case)
        lines.append(
            f'usecase "{case.name}" as {_identifier(case.name)}{stereo}'
        )
    for case in cases:
        for actor in case.actors:
            lines.append(
                f"{_identifier(actor.name)} -- {_identifier(case.name)}"
            )
        for link in case.includes:
            lines.append(
                f"{_identifier(case.name)} ..> "
                f"{_identifier(link.addition.name)} : <<include>>"
            )
        for link in case.extends:
            lines.append(
                f"{_identifier(case.name)} ..> "
                f"{_identifier(link.extendedCase.name)} : <<extend>>"
            )
    lines.extend(_comment_lines(cases))
    lines.append("@enduml")
    return "\n".join(lines)


def _stereo_text(element: MObject) -> str:
    names = stereotype_names(element)
    if not names:
        return ""
    inner = ", ".join(names)
    return f" <<{inner}>>"


def _comment_lines(elements: Iterable[MObject]) -> list[str]:
    lines: list[str] = []
    for element in elements:
        for index, comment in enumerate(element.ownedComments):
            note_id = f"N_{_identifier(element.name)}_{index}"
            body = comment.body.replace("\n", "\\n")
            lines.append(f'note "{body}" as {note_id}')
            lines.append(f"{note_id} .. {_identifier(element.name)}")
    return lines


def _packaged(package: MObject, metaclass) -> list[MObject]:
    found = []
    for element in package.packagedElements:
        if element.is_instance_of(metaclass):
            found.append(element)
        if element.is_instance_of(U.Package):
            found.extend(_packaged(element, metaclass))
    return found


# ---------------------------------------------------------------------------
# UML activity diagram
# ---------------------------------------------------------------------------


def activity_diagram(activity: MObject, title: str = "") -> str:
    """Render a UML Activity (graph form, explicit nodes and edges)."""
    lines = ["@startuml"]
    lines.append(f"title {title or activity.name}")
    for node in activity.nodes:
        lines.extend(_activity_node(node))
    for edge in activity.edges:
        arrow = "-->" if edge.is_instance_of(U.ControlFlow) else "..>"
        guard = f" : [{edge.guard}]" if edge.guard else ""
        lines.append(
            f"{_node_id(edge.source)} {arrow} {_node_id(edge.target)}{guard}"
        )
    lines.append("@enduml")
    return "\n".join(lines)


def _node_id(node: MObject) -> str:
    return _identifier(node.name or node.id)


def _activity_node(node: MObject) -> list[str]:
    identifier = _node_id(node)
    stereo = _stereo_text(node)
    if node.is_instance_of(U.InitialNode):
        return [f'circle " " as {identifier}']
    if node.is_instance_of(U.ActivityFinalNode) or node.is_instance_of(
        U.FlowFinalNode
    ):
        return [f'circle "(end)" as {identifier}']
    if node.is_instance_of(U.DecisionNode) or node.is_instance_of(U.MergeNode):
        return [f'hexagon "{node.name}" as {identifier}']
    if node.is_instance_of(U.ForkNode) or node.is_instance_of(U.JoinNode):
        return [f'rectangle "{node.name}" as {identifier} <<fork>>']
    if node.is_instance_of(U.ObjectNode):
        type_suffix = f" : {node.type}" if node.type else ""
        return [
            f'card "{node.name}{type_suffix}" as {identifier}{stereo}'
        ]
    # actions
    return [f'rectangle "{node.name}" as {identifier}{stereo}']


# ---------------------------------------------------------------------------
# UML class diagram
# ---------------------------------------------------------------------------


def class_diagram(package: MObject, title: str = "") -> str:
    """Render a UML package's classes and associations."""
    lines = ["@startuml"]
    if title:
        lines.append(f"title {title}")
    lines.append("skinparam classAttributeIconSize 0")
    classes = _packaged(package, U.Class)
    for cls in classes:
        stereo = _stereo_text(cls)
        lines.append(f'class "{cls.name}" as {_identifier(cls.name)}{stereo} {{')
        for prop in cls.ownedAttributes:
            type_text = f" : {prop.type}" if prop.type else ""
            lines.append(f"  {prop.name}{type_text}")
        for op in cls.ownedOperations:
            return_text = f" : {op.returnType}" if op.returnType else ""
            lines.append(f"  {op.name}(){return_text}")
        lines.append("}")
    for cls in classes:
        for superclass in cls.superClasses:
            lines.append(
                f"{_identifier(superclass.name)} <|-- {_identifier(cls.name)}"
            )
    for assoc in _packaged(package, U.Association):
        label = f" : {assoc.name}" if assoc.name else ""
        lines.append(
            f"{_identifier(assoc.source.name)} --> "
            f"{_identifier(assoc.target.name)}{label}"
        )
    lines.extend(_comment_lines(classes))
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Profile diagram
# ---------------------------------------------------------------------------


def profile_diagram(
    profile: MObject,
    title: str = "",
    only: Optional[Iterable[str]] = None,
) -> str:
    """Render a profile's stereotypes (optionally a subset) as Figs. 2-5 do."""
    wanted = set(only) if only is not None else None
    lines = ["@startuml"]
    lines.append(f"title {title or profile.name}")
    lines.append("skinparam classAttributeIconSize 0")
    base_classes: set[str] = set()
    for stereotype in profile.ownedStereotypes:
        if wanted is not None and stereotype.name not in wanted:
            continue
        identifier = _identifier(stereotype.name)
        lines.append(
            f'class "{stereotype.name}" as {identifier} <<stereotype>> {{'
        )
        for tag in stereotype.tagDefinitions:
            lines.append(f"  {tag.name} : {tag.type}")
        lines.append("}")
        for base in stereotype.baseClasses:
            base_classes.add(base)
            lines.append(
                f"M_{_identifier(base)} <|-- {identifier} : <<extends>>"
            )
        for index, constraint in enumerate(stereotype.constraints):
            note_id = f"C_{identifier}_{index}"
            body = (constraint.description or constraint.name).replace(
                "\n", "\\n"
            )
            lines.append(f'note "{body}" as {note_id}')
            lines.append(f"{note_id} .. {identifier}")
    for base in sorted(base_classes):
        lines.insert(
            3, f'class "{base}" as M_{_identifier(base)} <<metaclass>>'
        )
    lines.append("@enduml")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Requirement diagram
# ---------------------------------------------------------------------------


def requirement_diagram(package: MObject, title: str = "") -> str:
    """Render a package's requirements and their relationships."""
    lines = ["@startuml"]
    if title:
        lines.append(f"title {title}")
    requirements = _packaged(package, U.Requirement)
    for req in requirements:
        identifier = _identifier(req.name)
        req_id = req.reqId or "-"
        text = (req.text or "").replace("\n", "\\n")
        lines.append(
            f'card "<<requirement>>\\n{req.name}\\nid = {req_id}\\n{text}" '
            f"as {identifier}"
        )
    for req in requirements:
        identifier = _identifier(req.name)
        for source in req.derivedFrom:
            lines.append(
                f"{_identifier(source.name)} <.. {identifier} : "
                "<<deriveReqt>>"
            )
        for element in req.satisfiedBy:
            lines.append(
                f"{identifier} <.. {_identifier(element.name)} : <<satisfy>>"
            )
        for element in req.verifiedBy:
            lines.append(
                f"{identifier} <.. {_identifier(element.name)} : <<verify>>"
            )
        for element in req.refinedBy:
            lines.append(
                f"{identifier} <.. {_identifier(element.name)} : <<refine>>"
            )
    lines.append("@enduml")
    return "\n".join(lines)

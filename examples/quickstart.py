"""Quickstart: capture DQ requirements for a web app and run them.

Authors a minimal DQ_WebRE requirements model (a task-tracker web app),
validates it, derives the DQ software requirements, transforms to design,
and exercises the generated application — the whole pipeline in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro.dq.metadata import Clock
from repro.dqwebre import DQWebREBuilder, derive_from_model, validate
from repro.runtime.dqengine import build_app
from repro.transform.req2design import transform


def main() -> None:
    # 1. Capture the requirements (what an analyst would draw in Fig. 6).
    builder = DQWebREBuilder("TaskTracker")
    manager = builder.web_user("Project manager")
    task = builder.content("task", ["title", "owner", "estimate_hours"])
    page = builder.web_ui("task form", ["title", "owner", "estimate_hours"])
    process = builder.web_process("Plan project work", user=manager)
    builder.user_transaction(process, "create task", [task])

    case = builder.information_case(
        "Manage task data", [process], [task], user=manager
    )
    builder.dq_requirement(
        "Complete tasks", case, "Completeness",
        "every task needs a title, an owner and an estimate",
    )
    builder.dq_requirement(
        "Sane estimates", case, "Precision",
        "estimates must stay within the sprint budget",
    )
    validator = builder.dq_validator(
        "TaskValidator", ["check_completeness", "check_precision"], [page]
    )
    builder.dq_constraint(
        "estimate bounds", validator, ["estimate_hours"], 1, 80
    )
    builder.dq_metadata(
        "task provenance", ["stored_by", "stored_date"], [task]
    )

    # 2. Validate well-formedness (the Table 3 constraints, machine-checked).
    report = validate(builder.model)
    print(f"validation: {report.render()}\n")

    # 3. Derive DQR -> DQSR (the paper's central translation).
    catalog = derive_from_model(builder.model)
    print(catalog.summary(), "\n")

    # 4. Transform to design and build the running application.
    design = transform(builder.model).primary
    app = build_app(design, Clock())
    print(app.describe(), "\n")

    # 5. The DQ requirements are now *enforced*:
    good = app.post(
        "/manage-task-data",
        {"title": "Ship v1", "owner": "ada", "estimate_hours": 16},
    )
    print("complete, precise task  ->", good.status)
    incomplete = app.post("/manage-task-data", {"title": "???"})
    print("incomplete task         ->", incomplete.status,
          incomplete.body["dq_findings"])
    imprecise = app.post(
        "/manage-task-data",
        {"title": "Epic", "owner": "ada", "estimate_hours": 400},
    )
    print("imprecise estimate      ->", imprecise.status,
          imprecise.body["dq_findings"])


if __name__ == "__main__":
    main()

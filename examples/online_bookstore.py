"""A BI-flavoured scenario: an online bookstore's customer data.

The paper's introduction motivates DQ_WebRE with business-intelligence web
applications managing customer data.  This example models such an app and
exercises DQ characteristics *beyond* the case study's four: Accuracy
(format validity of emails), Credibility (trusted data sources),
Currentness (stale records) and Consistency — showing the derivation
templates and validator kinds the EasyChair study does not touch.

Run:  python examples/online_bookstore.py
"""

from repro.dq import metrics
from repro.dq.validators import (
    ConsistencyValidator,
    CredibilityValidator,
    CurrentnessValidator,
    FormatValidator,
    ValidatorSuite,
)
from repro.dqwebre import DQWebREBuilder, derive_from_model, validate


def build_model():
    builder = DQWebREBuilder("BookstoreBI")
    analyst = builder.web_user("Marketing analyst")
    customer = builder.content(
        "customer profile",
        ["customer_id", "email", "segment", "last_purchase_age",
         "source", "lifetime_value", "discount_rate"],
    )
    page = builder.web_ui("customer import form", ["customer_id", "email"])
    process = builder.web_process("Import customer data", user=analyst)
    builder.user_transaction(process, "load CRM extract", [customer])
    case = builder.information_case(
        "Manage imported customer data", [process], [customer], user=analyst
    )
    for name, characteristic, statement in (
        ("Valid contact data", "Accuracy",
         "emails must be syntactically valid before campaigns run"),
        ("Trusted sources only", "Credibility",
         "only CRM and web-shop extracts may feed the warehouse"),
        ("Fresh purchase data", "Currentness",
         "records older than 90 days must be re-synced, not analysed"),
        ("Coherent pricing", "Consistency",
         "discount_rate must never exceed lifetime-value tier rules"),
    ):
        builder.dq_requirement(name, case, characteristic, statement)
    builder.dq_validator(
        "CustomerValidator",
        ["check_format", "check_credibility", "check_currentness",
         "check_consistency"],
        [page],
    )
    builder.dq_metadata(
        "import provenance", ["stored_by", "stored_date"], [customer]
    )
    return builder.model


def build_validator_suite() -> ValidatorSuite:
    """The runtime DQ_Validator the derivation implies, hand-assembled."""
    return ValidatorSuite(
        "CustomerValidator",
        [
            FormatValidator({"email": r"[^@\s]+@[^@\s]+\.[a-z]{2,}"}),
            CredibilityValidator("source", ["crm", "webshop"]),
            CurrentnessValidator("last_purchase_age", max_age=90),
            ConsistencyValidator(
                [
                    (
                        "discount only for positive lifetime value",
                        lambda r: r.get("discount_rate", 0) == 0
                        or r.get("lifetime_value", 0) > 0,
                    )
                ]
            ),
        ],
    )


SAMPLE_EXTRACT = [
    {"customer_id": "C1", "email": "ana@example.org", "segment": "gold",
     "last_purchase_age": 12, "source": "crm", "lifetime_value": 820,
     "discount_rate": 10},
    {"customer_id": "C2", "email": "not-an-email", "segment": "silver",
     "last_purchase_age": 3, "source": "crm", "lifetime_value": 120,
     "discount_rate": 0},
    {"customer_id": "C3", "email": "bo@example.org", "segment": "gold",
     "last_purchase_age": 200, "source": "webshop", "lifetime_value": 310,
     "discount_rate": 5},
    {"customer_id": "C4", "email": "cy@example.org", "segment": "bronze",
     "last_purchase_age": 40, "source": "bought-list", "lifetime_value": 0,
     "discount_rate": 15},
]


def main() -> None:
    model = build_model()
    print("== Well-formedness ==")
    print(validate(model).render(), "\n")

    print("== Derived DQ software requirements ==")
    print(derive_from_model(model).summary(), "\n")

    print("== Screening a CRM extract with the DQ_Validator ==")
    suite = build_validator_suite()
    report = suite.run(SAMPLE_EXTRACT)
    print(report.render(), "\n")

    print("== Data quality measurements over the extract ==")
    email_validity = metrics.format_validity_ratio(
        SAMPLE_EXTRACT, "email", r"[^@\s]+@[^@\s]+\.[a-z]{2,}"
    )
    completeness = metrics.dataset_completeness(
        SAMPLE_EXTRACT, ["customer_id", "email", "segment"]
    )
    uniqueness = metrics.uniqueness_ratio(SAMPLE_EXTRACT, ["customer_id"])
    print(f"  email format validity : {email_validity:.0%}")
    print(f"  field completeness    : {completeness:.0%}")
    print(f"  customer_id uniqueness: {uniqueness:.0%}")
    score = metrics.weighted_score(
        [
            metrics.Measurement("Accuracy", email_validity),
            metrics.Measurement("Completeness", completeness),
        ],
        {"Accuracy": 2.0, "Completeness": 1.0},
    )
    print(f"  weighted DQ score     : {score:.0%}")


if __name__ == "__main__":
    main()

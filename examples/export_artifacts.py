"""Export every reproduction artifact to an ``artifacts/`` directory.

Writes, for archival or inspection:

* ``tables/table{1,2,3}.txt`` — the paper's tables;
* ``figures/fig{1..7}.puml`` (+ mermaid variants) — the paper's figures;
* ``models/easychair.{xmi,json}`` — the case study requirements model;
* ``models/easychair_design.json`` — the transformed design model;
* ``generated/easychair_app.py`` — the generated application module;
* ``generated/easychair_srs.md`` — the requirements specification;
* ``generated/easychair_form.html`` — the review form as a web page;
* ``experiments.txt`` — the measured comparison (deterministic).

Run:  python examples/export_artifacts.py [output-dir]
"""

import sys
from pathlib import Path

from repro.casestudy import easychair
from repro.core.serialization import jsonio, xmi
from repro.dq.metadata import Clock
from repro.reports import figures, tables
from repro.reports.experiments import full_report
from repro.runtime.html import render_form, render_page
from repro.transform.codegen import generate_app_module
from repro.transform.docgen import generate_srs
from repro.transform.req2design import transform


def write(path: Path, content: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    print(f"wrote {path}")


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "artifacts")

    write(out / "tables" / "table1.txt", tables.table1())
    write(out / "tables" / "table2.txt", tables.table2())
    write(out / "tables" / "table3.txt", tables.table3())

    for number, source in figures.all_figures().items():
        write(out / "figures" / f"fig{number}.puml", source)
    write(out / "figures" / "fig1.mmd", figures.figure1_mermaid())
    write(out / "figures" / "fig6.mmd", figures.figure6_mermaid())
    write(out / "figures" / "fig7.mmd", figures.figure7_mermaid())

    model = easychair.build_requirements_model()
    write(out / "models" / "easychair.xmi", xmi.dumps(model))
    write(out / "models" / "easychair.json", jsonio.dumps(model))

    design = transform(model).primary
    write(out / "models" / "easychair_design.json", jsonio.dumps(design))
    write(out / "generated" / "easychair_app.py",
          generate_app_module(design))
    write(out / "generated" / "easychair_srs.md", generate_srs(model))

    app = easychair.build_app(Clock())
    write(
        out / "generated" / "easychair_form.html",
        render_page(
            "Add new review to submission",
            render_form(app.forms[0], action=easychair.REVIEW_PATH),
        ),
    )

    # the second case study's generated (uml_sync) diagrams
    from repro.casestudy.webshop import build_requirements_model
    from repro.diagrams import plantuml
    from repro.dqwebre.uml_sync import to_uml

    webshop_uml = to_uml(build_requirements_model())
    write(
        out / "figures" / "webshop_usecases.puml",
        plantuml.usecase_diagram(
            webshop_uml["usecases_package"], title="WebShop use cases"
        ),
    )
    for name, activity in webshop_uml["activities"].items():
        slug = name.lower().replace(" ", "_")
        write(
            out / "figures" / f"webshop_{slug}.puml",
            plantuml.activity_diagram(activity),
        )

    write(out / "experiments.txt", full_report(count=300, seed=42))
    print("\nall artifacts exported to", out.resolve())


if __name__ == "__main__":
    main()

"""The paper's case study, end to end (EasyChair, §4, Figs. 6-7).

Builds the EasyChair requirements model, regenerates the paper's two case
study figures, transforms to design, runs a 300-submission workload through
both the DQ-aware application and the no-DQ baseline, and prints the
comparison plus the traceability audit — everything §4 promises, executed.

Run:  python examples/easychair_review.py
"""

from repro.casestudy import easychair
from repro.casestudy.workloads import ReviewWorkload, compare_dq_vs_baseline
from repro.dq.metadata import Clock
from repro.dqwebre import derive_from_model, validate
from repro.reports import figures


def main() -> None:
    model = easychair.build_requirements_model()
    report = validate(model)
    print("== Well-formedness (Table 3 constraints) ==")
    print(report.render(), "\n")

    print("== DQR -> DQSR derivation (paper §4) ==")
    print(derive_from_model(model).summary(), "\n")

    print("== Fig. 6 (use case diagram, PlantUML) ==")
    print(figures.figure6(), "\n")

    print("== Fig. 7 (activity diagram, PlantUML) ==")
    print(figures.figure7(), "\n")

    print("== Running the generated application ==")
    app = easychair.build_app(Clock())
    baseline = easychair.build_baseline(Clock())
    comparison = compare_dq_vs_baseline(app, baseline, count=300, seed=42)
    print("DQ-aware :", comparison["dq"].render())
    print("baseline :", comparison["baseline"].render())
    print(
        f"\nThe baseline silently stored "
        f"{comparison['defects_stored_by_baseline']} defective reviews; "
        f"the DQ-aware app stored {comparison['defects_stored_by_dq']}.\n"
    )

    print("== Traceability: the audit trail (last 10 events) ==")
    print(app.audit.render(limit=10))

    print("\n== Confidentiality: who sees the reviews? ==")
    for user in ("chair", "pc_member_1", "author_1", "outsider"):
        visible = app.get(easychair.REVIEW_LIST_PATH, user=user).body
        print(f"  {user:12} sees {len(visible):4d} review(s)")


if __name__ == "__main__":
    main()

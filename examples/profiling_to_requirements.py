"""From observed data to captured requirements (profiling-driven elicitation).

The paper's §1 lists data profiling among the *reactive* DQ instruments.
This example flips it proactive, in DQ_WebRE's spirit: profile a legacy
extract, let the profiler *suggest* DQ requirements, adopt them into a
DQ_WebRE model, and generate the application that enforces them — plus an
HTML rendering of the generated form.

Run:  python examples/profiling_to_requirements.py
"""

from repro.dq.iso25012 import COMPLETENESS, PRECISION
from repro.dq.metadata import Clock
from repro.dq.profiling import DataProfiler
from repro.dqwebre import DQWebREBuilder, validate
from repro.runtime.dqengine import build_app
from repro.runtime.html import render_form, render_page
from repro.transform.req2design import transform

#: A legacy extract of hotel bookings (what the old system accumulated).
LEGACY_BOOKINGS = [
    {"booking_id": "B-101", "guest_email": "kim@example.org",
     "nights": 2, "room_type": "double"},
    {"booking_id": "B-102", "guest_email": "lee@example.org",
     "nights": 1, "room_type": "single"},
    {"booking_id": "B-103", "guest_email": "maya@example.org",
     "nights": 7, "room_type": "double"},
    {"booking_id": "B-104", "guest_email": "noor@example.org",
     "nights": 3, "room_type": "suite"},
    {"booking_id": "B-105", "guest_email": "omar@example.org",
     "nights": 2, "room_type": "single"},
    {"booking_id": "B-106", "guest_email": "pia@example.org",
     "nights": 4, "room_type": "double"},
]


def main() -> None:
    # 1. Profile the legacy data.
    profiler = DataProfiler().add_records(LEGACY_BOOKINGS)
    print("== Profiling report ==")
    print(profiler.report(), "\n")

    # 2. Adopt the suggestions into a DQ_WebRE requirements model.
    builder = DQWebREBuilder("HotelBookings")
    clerk = builder.web_user("Front-desk clerk")
    fields = sorted({k for record in LEGACY_BOOKINGS for k in record})
    booking = builder.content("booking", fields)
    page = builder.web_ui("booking form", fields)
    process = builder.web_process("Register booking", user=clerk)
    builder.user_transaction(process, "enter booking", [booking])
    case = builder.information_case(
        "Manage booking data", [process], [booking], user=clerk
    )

    validator = builder.dq_validator(
        "BookingValidator", ["check_completeness", "check_precision"], [page]
    )
    for suggestion in profiler.suggest():
        print(f"adopting suggestion: {suggestion.describe()}")
        builder.dq_requirement(
            f"{suggestion.characteristic.name} of bookings",
            case,
            suggestion.characteristic.name,
            suggestion.rationale,
        )
        if suggestion.characteristic is PRECISION and suggestion.bounds:
            for field, (lower, upper) in suggestion.bounds.items():
                builder.dq_constraint(
                    f"{field} bounds", validator, [field], lower, upper
                )
    builder.dq_metadata(
        "booking provenance", ["stored_by", "stored_date"], [booking]
    )
    report = validate(builder.model)
    print(f"\nmodel validation: {report.render()}\n")

    # 3. Generate and drive the enforcing application.
    app = build_app(transform(builder.model).primary, Clock())
    form_path = "/manage-booking-data"
    good = app.post(form_path, LEGACY_BOOKINGS[0])
    print("legacy-shaped booking      ->", good.status)
    absurd = dict(LEGACY_BOOKINGS[0], nights=5000)
    print("5000-night booking         ->", app.post(form_path, absurd).status)
    partial = {"booking_id": "B-999"}
    print("booking without guest data ->", app.post(form_path, partial).status)

    # 4. Render the generated form as a web page.
    html = render_page(
        "Register booking",
        render_form(app.forms[0], action=form_path),
    )
    print(f"\n== Generated HTML form ({len(html.splitlines())} lines) ==")
    print("\n".join(html.splitlines()[:14]), "\n...")


if __name__ == "__main__":
    main()

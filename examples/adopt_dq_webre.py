"""Adopting DQ_WebRE on an existing WebRE project, step by step.

A team already models its web requirements with plain WebRE.  This example
shows the adoption path the reproduction adds on top of the paper:

1. **promote** the existing model into the extended metamodel (lossless);
2. **assess** it against the methodology — the report lists the gaps;
3. fill the gaps (information case, DQ requirements, realization elements);
4. assess again — 100% — then validate, derive, and run.

Run:  python examples/adopt_dq_webre.py
"""

from repro.dq.metadata import Clock
from repro.dqwebre import assess, metamodel as DQ, promote, validate
from repro.runtime.dqengine import build_app
from repro.transform.req2design import transform
from repro.webre import metamodel as W


def build_legacy_model():
    """What the team has today: a plain WebRE model, no DQ anywhere."""
    model = W.WebREModel.create(name="EventTickets")
    visitor = W.WebUser.create(name="Visitor")
    model.users.append(visitor)
    ticket = W.Content.create(name="ticket order")
    ticket.set("attributes", ["event", "buyer_email", "seats"])
    model.contents.append(ticket)
    page = W.WebUI.create(name="checkout page")
    page.set("fields", ["event", "buyer_email", "seats"])
    model.uis.append(page)
    process = W.WebProcess.create(name="Buy tickets", user=visitor)
    transaction = W.UserTransaction.create(name="enter order")
    transaction.data.append(ticket)
    process.activities.append(transaction)
    model.processes.append(process)
    return model


def main() -> None:
    legacy = build_legacy_model()

    # 1. Promote: same content, DQ-capable metamodel, original untouched.
    model = promote(legacy)
    print("== Methodology assessment right after promotion ==")
    print(assess(model).render(), "\n")

    # 2. Fill the gaps the assessment listed.
    process = model.processes[0]
    ticket = model.contents[0]
    page = model.uis[0]
    case = DQ.InformationCase.create(name="Manage ticket order data")
    case.web_processes.append(process)
    case.contents.append(ticket)
    model.information_cases.append(case)

    for name, characteristic, statement, spec_id in (
        ("Complete orders", "Completeness",
         "verify that all order fields have been completed", 1),
        ("Plausible seat counts", "Precision",
         "validate the number of seats requested", 2),
    ):
        requirement = DQ.DQRequirement.create(
            name=name, characteristic=characteristic, statement=statement
        )
        requirement.information_cases.append(case)
        requirement.specification = DQ.DQReqSpecification.create(
            ID=spec_id, Text=statement
        )
        model.dq_requirements.append(requirement)

    validator = DQ.DQValidator.create(name="TicketValidator")
    validator.set("operations", ["check_completeness", "check_precision"])
    validator.validates.append(page)
    model.dq_validators.append(validator)
    bounds = DQ.DQConstraint.create(
        name="seat bounds", validator=validator, lower_bound=1, upper_bound=8
    )
    bounds.set("dq_constraint", ["seats"])
    model.dq_constraints.append(bounds)
    metadata = DQ.DQMetadata.create(name="order provenance")
    metadata.set("dq_metadata", ["stored_by", "stored_date"])
    metadata.contents.append(ticket)
    model.dq_metadata_classes.append(metadata)
    capture = DQ.AddDQMetadata.create(
        name="store order provenance", metadata=metadata
    )
    capture.set("captures", ["stored_by", "stored_date"])
    capture.user_transactions.append(process.activities[0])
    model.add_dq_metadata_activities.append(capture)

    print("== Assessment after filling the gaps ==")
    report = assess(model)
    print(report.render(), "\n")
    assert report.complete

    # 3. Validate, derive, run — the usual pipeline from here on.
    assert validate(model).ok
    app = build_app(transform(model).primary, Clock())
    print("== The promoted project now enforces its DQ requirements ==")
    good = app.post(
        "/manage-ticket-order-data",
        {"event": "ReConf 2026", "buyer_email": "kim@example.org",
         "seats": 2},
    )
    greedy = app.post(
        "/manage-ticket-order-data",
        {"event": "ReConf 2026", "buyer_email": "kim@example.org",
         "seats": 500},
    )
    print("normal order  ->", good.status)
    print("500-seat order->", greedy.status)


if __name__ == "__main__":
    main()

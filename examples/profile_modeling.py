"""Working at the UML level: profiles, stereotypes and diagrams.

The paper's second artifact is a *UML profile* analysts use inside their
IDE.  This example plays the analyst: it draws a use case diagram for a
patient portal with WebRE + DQ_WebRE stereotypes, lets the profile
validation catch a Table 3 violation, fixes it, and renders the diagrams
as PlantUML and Mermaid.

Run:  python examples/profile_modeling.py
"""

from repro.diagrams import mermaid, plantuml
from repro.dqwebre.profile import build_dqwebre_profile
from repro.uml import classes, elements, profiles, usecases
from repro.webre.profile import build_webre_profile


def main() -> None:
    webre = build_webre_profile()
    dqwebre = build_dqwebre_profile()

    model = elements.model("PatientPortal")
    elements.apply_profile(model, webre)
    elements.apply_profile(model, dqwebre)
    diagram = elements.package(model, "Use cases")

    patient = usecases.actor(diagram, "Patient")
    profiles.apply_stereotype(
        patient, profiles.find_stereotype(webre, "WebUser")
    )
    book_visit = usecases.use_case(diagram, "Book a visit")
    profiles.apply_stereotype(
        book_visit, profiles.find_stereotype(webre, "WebProcess")
    )
    usecases.communicates(patient, book_visit)

    manage_data = usecases.use_case(diagram, "Manage booking data")
    profiles.apply_stereotype(
        manage_data, profiles.find_stereotype(dqwebre, "InformationCase")
    )
    requirement = usecases.use_case(
        diagram, "Verify insurance number format"
    )
    profiles.apply_stereotype(
        requirement,
        profiles.find_stereotype(dqwebre, "DQ_Requirement"),
        characteristic="Accuracy",
    )
    usecases.include(requirement, manage_data)

    # Deliberately wrong at first: the InformationCase is not yet related
    # to any WebProcess (the Table 3 constraint).
    print("== First validation: the profile catches the Table 3 violation ==")
    for diagnostic in profiles.validate_applications(model):
        print(" ", diagnostic.render())

    # The fix: the WebProcess includes the InformationCase (as in Fig. 6).
    usecases.include(book_visit, manage_data)
    print("\n== After adding the include, the model is clean ==")
    diagnostics = profiles.validate_applications(model)
    print("  diagnostics:", diagnostics or "none")

    # Structural side: DQConstraint must attach to a DQ_Validator.
    structure = elements.package(model, "Structure")
    validator = classes.class_(structure, "BookingValidator")
    profiles.apply_stereotype(
        validator, profiles.find_stereotype(dqwebre, "DQ_Validator")
    )
    classes.operation(validator, "check_format", "Boolean")
    bounds = classes.class_(structure, "visit horizon")
    profiles.apply_stereotype(
        bounds,
        profiles.find_stereotype(dqwebre, "DQConstraint"),
        DQConstraint=["days_ahead"],
        lower_bound=0,
        upper_bound=180,
    )
    classes.associate(structure, bounds, validator, name="restricts")
    assert profiles.validate_applications(model) == []

    print("\n== Use case diagram (PlantUML) ==")
    print(plantuml.usecase_diagram(diagram, title="Patient portal"))

    print("\n== Class diagram (PlantUML) ==")
    print(plantuml.class_diagram(structure, title="DQ structure"))

    print("\n== Use case diagram (Mermaid) ==")
    print(mermaid.usecase_diagram(diagram))


if __name__ == "__main__":
    main()

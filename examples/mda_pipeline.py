"""The full MDA pipeline with artifacts on disk (the paper's §5 vision).

CIM → PIM → code, with every intermediate saved:

1. author the requirements model and save it as **XMI** (tool exchange);
2. reload the XMI (as a second tool would) and validate it;
3. run the QVT-lite **req2design** transformation; print the trace;
4. save the design model as JSON;
5. **generate Python source** for the application and write it next to the
   models;
6. import the generated module and prove the app enforces the DQ
   requirements.

Run:  python examples/mda_pipeline.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import global_registry
from repro.core.serialization import jsonio, xmi
from repro.dq.metadata import Clock
from repro.dqwebre import DQWebREBuilder, validate
from repro.transform.codegen import (
    generate_app_module,
    generate_validator_summary,
)
from repro.transform.req2design import transform


def author_model():
    """A small expense-report web app with two DQ requirements."""
    builder = DQWebREBuilder("ExpenseReports")
    employee = builder.web_user("Employee")
    expense = builder.content(
        "expense", ["description", "amount_cents", "cost_center"]
    )
    page = builder.web_ui(
        "expense form", ["description", "amount_cents", "cost_center"]
    )
    process = builder.web_process("File an expense report", user=employee)
    builder.user_transaction(process, "enter expense", [expense])
    case = builder.information_case(
        "Manage expense data", [process], [expense], user=employee
    )
    builder.dq_requirement(
        "No half-filled expenses", case, "Completeness",
        "every expense field is mandatory",
    )
    builder.dq_requirement(
        "Amounts within policy", case, "Precision",
        "amounts must stay within the per-item policy limit",
    )
    validator = builder.dq_validator(
        "ExpenseValidator", ["check_completeness", "check_precision"], [page]
    )
    builder.dq_constraint(
        "policy limit", validator, ["amount_cents"], 1, 500_00
    )
    builder.dq_metadata(
        "expense provenance", ["stored_by", "stored_date"], [expense]
    )
    return builder.model


def main() -> None:
    out_dir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="mda-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1-2: author, save as XMI, reload, validate.
    model = author_model()
    requirements_path = out_dir / "expense_requirements.xmi"
    xmi.dump(model, str(requirements_path))
    print(f"wrote requirements model: {requirements_path}")
    reloaded = xmi.load(str(requirements_path), global_registry)
    report = validate(reloaded)
    print(f"reloaded + validated: {report.render()}\n")

    # 3: transform, show the trace.
    result = transform(reloaded)
    design = result.primary
    print("== Transformation trace (QVT-lite) ==")
    print(result.trace.render(), "\n")

    # 4: persist the design model.
    design_path = out_dir / "expense_design.json"
    jsonio.dump(design, str(design_path))
    print(f"wrote design model: {design_path}")
    print(generate_validator_summary(design), "\n")

    # 5: generate the application module.
    source = generate_app_module(design)
    module_path = out_dir / "expense_app_generated.py"
    module_path.write_text(source, encoding="utf-8")
    print(f"wrote generated application: {module_path} "
          f"({len(source.splitlines())} lines)\n")

    # 6: execute the generated module and drive the app.
    namespace = {}
    exec(compile(source, str(module_path), "exec"), namespace)
    app = namespace["build_app"](Clock())
    print("== Driving the generated application ==")
    good = app.post(
        "/manage-expense-data",
        {"description": "Train ticket", "amount_cents": 4550,
         "cost_center": "R&D"},
    )
    print("valid expense            ->", good.status)
    too_big = app.post(
        "/manage-expense-data",
        {"description": "Yacht", "amount_cents": 999_999_99,
         "cost_center": "R&D"},
    )
    print("over the policy limit    ->", too_big.status)
    partial = app.post("/manage-expense-data", {"description": "?"})
    print("half-filled expense      ->", partial.status)


if __name__ == "__main__":
    main()

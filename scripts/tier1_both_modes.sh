#!/usr/bin/env sh
# Tier-1 verify, four times: the full 2x2 matrix of
#
#   REPRO_NO_NUMPY        x  REPRO_NO_INTERCHANGE
#   (typed column kernels)   (typed-buffer interchange)
#
# Both layers are caches/codecs over authoritative list-and-dict
# state, never authorities themselves — the kernel layer in
# src/repro/colkernels.py accelerates column scans, the interchange
# layer in src/repro/interchange.py batches replication, telemetry
# and scorecard shipping — so no answer may depend on which cell of
# the matrix is active.  All four runs must be green.
#
# Usage: scripts/tier1_both_modes.sh [extra pytest args...]
#   e.g. scripts/tier1_both_modes.sh -m columnar

set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 (numpy kernels, interchange on) =="
python -m pytest -x -q "$@"

echo "== tier-1 (stdlib kernels: REPRO_NO_NUMPY=1, interchange on) =="
REPRO_NO_NUMPY=1 python -m pytest -x -q "$@"

echo "== tier-1 (numpy kernels, interchange off: REPRO_NO_INTERCHANGE=1) =="
REPRO_NO_INTERCHANGE=1 python -m pytest -x -q "$@"

echo "== tier-1 (stdlib kernels + interchange off) =="
REPRO_NO_NUMPY=1 REPRO_NO_INTERCHANGE=1 python -m pytest -x -q "$@"

echo "== tier-1 green in all four kernel/interchange modes =="

#!/usr/bin/env sh
# Tier-1 verify, twice: once with numpy visible (the typed column
# kernels take their vector lanes) and once with REPRO_NO_NUMPY=1 (the
# pure-stdlib array fallback).  Both runs must be green — the kernel
# layer in src/repro/colkernels.py is a cache over the list columns,
# never an authority, so no answer may depend on which mode is active.
#
# Usage: scripts/tier1_both_modes.sh [extra pytest args...]
#   e.g. scripts/tier1_both_modes.sh -m columnar

set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 (numpy mode) =="
python -m pytest -x -q "$@"

echo "== tier-1 (forced stdlib fallback: REPRO_NO_NUMPY=1) =="
REPRO_NO_NUMPY=1 python -m pytest -x -q "$@"

echo "== tier-1 green in both kernel modes =="

"""Setuptools shim so ``pip install -e .`` works offline (no wheel package)."""

from setuptools import setup

setup()
